//! Asynchronous agreement — the paper's §6 future-work direction.
//!
//! "We currently seek schemes to alleviate the need of the assumption
//! of synchronous nodes." This example runs Ben-Or randomized binary
//! consensus on the event-driven asynchronous network: no rounds, no
//! clocks, messages delivered in adversarially scrambled order — and
//! agreement still holds, whatever the delay bound.
//!
//! Run with: `cargo run --release --example async_agreement`

use now_bft::agreement::{run_ben_or, ByzPlan};
use now_bft::net::{DetRng, Ledger};
use std::collections::BTreeSet;

fn main() {
    let n = 11usize;
    let f = 2usize;
    let byz: BTreeSet<usize> = [3, 8].into_iter().collect();
    println!("Ben-Or async consensus: n = {n}, f = {f}, byzantine = {byz:?}\n");

    // Case 1: unanimous honest inputs — the validity fast path.
    let inputs = vec![1u64; n];
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(1);
    let report = run_ben_or(
        n,
        &inputs,
        &byz,
        f,
        ByzPlan::ConstantValue(0), // the adversary pushes the other value
        20,
        400,
        &mut ledger,
        &mut rng,
    );
    let decision = report.result.unanimous().copied().expect("agreement");
    println!("unanimous inputs (all 1), adversary pushes 0:");
    println!(
        "  decided {decision} in ≤{} phases, {} messages, virtual time {}\n",
        report.decision_phases.values().max().unwrap(),
        report.result.messages,
        report.virtual_time
    );
    assert_eq!(decision, 1, "validity: the honest value wins");

    // Case 2: split inputs under an equivocating adversary — the coin
    // breaks the symmetry.
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(2);
    let report = run_ben_or(
        n,
        &inputs,
        &byz,
        f,
        ByzPlan::Equivocate(0, 1),
        20,
        400,
        &mut ledger,
        &mut rng,
    );
    let decision = report.result.unanimous().copied().expect("agreement");
    println!("split inputs (alternating), equivocating adversary:");
    println!(
        "  decided {decision} in ≤{} phases, {} messages",
        report.decision_phases.values().max().unwrap(),
        report.result.messages,
    );

    // Case 3: stretch the delay bound 25× — phases don't move, only
    // virtual time does. Asynchrony costs wall-clock, not correctness.
    println!("\ndelay-bound sweep (same seed, same adversary):");
    for max_delay in [4u64, 20, 100] {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(3);
        let report = run_ben_or(
            n,
            &inputs,
            &byz,
            f,
            ByzPlan::Equivocate(0, 1),
            max_delay,
            400,
            &mut ledger,
            &mut rng,
        );
        assert!(report.all_decided);
        println!(
            "  max_delay {max_delay:>3}: phases ≤{}, virtual time {:>5}, agreement {}",
            report.decision_phases.values().max().unwrap(),
            report.virtual_time,
            report.result.unanimous().is_some(),
        );
    }
    println!("\nsafety never read the clock — the property a NOW deployment needs");
    println!("to swap its synchronous agreement substrate for an asynchronous one.");
}
