//! Quickstart: boot a NOW system, churn it, audit the invariants.
//!
//! Run with: `cargo run --release --example quickstart`

use now_bft::adversary::RandomChurn;
use now_bft::core::{NowParams, NowSystem};
use now_bft::net::CostKind;
use now_bft::sim::{run, RunConfig};

fn main() {
    // A deployment sized for at most N = 2^12 nodes, with clusters of
    // k·logN = 4·12 = 48 members, τ = 0.15 corruption.
    let params = NowParams::new(1 << 12, 4, 1.5, 0.15, 0.05).expect("valid parameters");
    let mut sys = NowSystem::init_fast(params, 480, 0.15, 42);
    println!("booted: {sys:?}");
    println!(
        "cluster size band: [{}, {}] (target {})",
        params.min_cluster_size(),
        params.max_cluster_size(),
        params.target_cluster_size()
    );

    // 400 time steps of balanced churn; every arrival the adversary can
    // afford is corrupted.
    let mut churn = RandomChurn::balanced(0.15);
    let report = run(
        &mut sys,
        &mut churn,
        RunConfig {
            steps: 400,
            audit_every: 1,
            seed: 7,
        },
    );

    println!(
        "\nafter {} steps ({} joins, {} leaves):",
        report.steps, report.joins, report.leaves
    );
    let audit = &report.final_audit;
    println!("  population            : {}", audit.population);
    println!("  byzantine             : {}", audit.byz_population);
    println!("  clusters              : {}", audit.cluster_count);
    println!(
        "  cluster sizes         : {}..{} (mean {:.1})",
        audit.min_cluster_size, audit.max_cluster_size, audit.mean_cluster_size
    );
    println!(
        "  worst byz fraction    : {:.3} (peak over run: {:.3})",
        audit.worst_byz_fraction, report.peak_byz_fraction
    );
    println!(
        "  all clusters > 2/3 honest: {}",
        audit.all_two_thirds_honest()
    );
    println!("  invariant violations  : {}", report.violations.len());

    let overlay = sys.overlay_audit();
    println!("\noverlay (OVER):");
    println!(
        "  {} clusters, {} edges, degree {}..{}",
        overlay.vertex_count, overlay.edge_count, overlay.min_degree, overlay.max_degree
    );
    println!(
        "  connected: {}, λ₂ = {:.3}, expansion ∈ [{:.3}, {:.3}]",
        overlay.connected, overlay.lambda2, overlay.cheeger_lower, overlay.sweep_upper
    );
    println!(
        "  Property 2 (degree ≤ {}) holds: {}",
        params.over().degree_cap(),
        overlay.degree_bound_holds
    );

    println!("\nper-operation costs (messages, mean):");
    for kind in [
        CostKind::Join,
        CostKind::Leave,
        CostKind::Split,
        CostKind::Merge,
        CostKind::Exchange,
        CostKind::RandCl,
        CostKind::RandNum,
    ] {
        let s = sys.ledger().stats(kind);
        if s.count > 0 {
            println!(
                "  {:<9} ×{:<6} mean {:>12.0} max {:>12}",
                kind.name(),
                s.count,
                s.mean_messages(),
                s.max_messages
            );
        }
    }
    sys.check_consistency().expect("system is consistent");
    println!("\nconsistency check: ok");
}
