//! The headline capability: polynomial size variation.
//!
//! The population swings from near √N up toward N and back, twice, while
//! the paper's invariants (cluster honesty, size band, overlay degree +
//! expansion) are audited continuously and the per-operation cost is
//! shown to stay polylogarithmic — the regime where prior work (static
//! cluster counts) degrades into near-linear cluster sizes.
//!
//! Run with: `cargo run --release --example polynomial_growth`

use now_bft::core::{NowParams, NowSystem};
use now_bft::net::CostKind;
use now_bft::sim::{run, RunConfig, Sawtooth};

fn main() {
    let capacity = 1u64 << 12; // N = 4096, √N = 64
    let params = NowParams::new(capacity, 3, 1.5, 0.10, 0.05).expect("valid parameters");
    let low = 2 * params.min_population(); // stay clear of the hard floor
    let high = 1200u64;
    let mut sys = NowSystem::init_fast(params, low as usize, 0.10, 21);

    println!(
        "N = {capacity}, population will oscillate in [{low}, {high}] (√N = {})",
        params.min_population()
    );

    let mut driver = Sawtooth::new(low, high, 0.10);
    // Enough steps for two full up-down sweeps.
    let steps = 2 * 2 * (high - low) + 200;
    let report = run(
        &mut sys,
        &mut driver,
        RunConfig {
            steps,
            audit_every: 16,
            seed: 5,
        },
    );

    println!(
        "\n{} steps: {} joins, {} leaves, {} splits, {} merges",
        report.steps,
        report.joins,
        report.leaves,
        sys.op_counts().2,
        sys.op_counts().3
    );
    let pop = report.population.summary();
    println!(
        "population range observed: {:.0}..{:.0} (×{:.1} swing)",
        pop.min,
        pop.max,
        pop.max / pop.min.max(1.0)
    );
    let cc = report.cluster_count.summary();
    println!(
        "cluster count adapted: {:.0}..{:.0} — the dynamic-#clusters departure from prior work",
        cc.min, cc.max
    );
    println!(
        "worst byz fraction over whole run: {:.3} (1/3 threshold crossings: {})",
        report.peak_byz_fraction,
        report.count(now_bft::sim::ViolationKind::RandNumCompromised)
    );
    println!(
        "cluster size stayed in [{}, {}]: {}",
        params.min_cluster_size(),
        params.max_cluster_size(),
        report.count(now_bft::sim::ViolationKind::SizeBounds) == 0
    );

    // Per-op cost: polylog(N), independent of where n currently sits.
    println!("\nper-operation mean message costs over the run:");
    for kind in [
        CostKind::Join,
        CostKind::Leave,
        CostKind::Split,
        CostKind::Merge,
    ] {
        let s = sys.ledger().stats(kind);
        if s.count > 0 {
            let log_n = params.log_n();
            println!(
                "  {:<6} ×{:<6} mean {:>12.0}  (= {:>6.1} × log⁴N)",
                kind.name(),
                s.count,
                s.mean_messages(),
                s.mean_messages() / log_n.powi(4)
            );
        }
    }

    let overlay = sys.overlay_audit();
    println!(
        "\noverlay after the swings: {} clusters, degree ≤ {} (cap {}), connected: {}, λ₂ = {:.2}",
        overlay.vertex_count,
        overlay.max_degree,
        params.over().degree_cap(),
        overlay.connected,
        overlay.lambda2
    );
    sys.check_consistency().expect("consistent");
    println!("consistency check: ok");
}
