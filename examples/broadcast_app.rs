//! The §6 applications: broadcast, sampling, aggregation, agreement —
//! with their costs against the naive baselines.
//!
//! Run with: `cargo run --release --example broadcast_app`

use now_bft::apps::{aggregate_count, broadcast, cluster_agreement, sample_node};
use now_bft::core::{NowParams, NowSystem};
use now_bft::sim::baselines::{
    naive_broadcast_cost, naive_sampling_cost, single_cluster_round_cost,
};
use std::collections::BTreeMap;

fn main() {
    let params = NowParams::new(1 << 12, 3, 1.5, 0.10, 0.05).expect("valid parameters");
    let mut sys = NowSystem::init_fast(params, 900, 0.10, 33);
    let n = sys.population();
    let origin = sys.cluster_ids()[0];
    println!(
        "system: n = {n}, {} clusters, overlay connected: {}",
        sys.cluster_count(),
        sys.overlay_audit().connected
    );

    // Broadcast: Õ(n) vs O(n²).
    let bc = broadcast(&mut sys, origin);
    println!("\nbroadcast from {origin}:");
    println!(
        "  reached {} clusters / {} nodes in {} rounds — complete: {}",
        bc.clusters_reached, bc.nodes_reached, bc.rounds, bc.complete
    );
    println!(
        "  cost {} messages vs naive full-mesh {} (×{:.1} cheaper)",
        bc.messages,
        naive_broadcast_cost(n),
        naive_broadcast_cost(n) as f64 / bc.messages.max(1) as f64
    );

    // Sampling: polylog(n) per draw.
    let mut sample_cost = 0u64;
    let trials = 20;
    print!("\nsampling {trials} nodes:");
    for i in 0..trials {
        let s = sample_node(&mut sys, origin);
        if i < 5 {
            print!(" {}", s.node);
        }
        sample_cost += s.messages;
    }
    println!(" …");
    println!(
        "  mean cost {} messages/sample vs naive flood {} — polylog beats linear as n grows",
        sample_cost / trials,
        naive_sampling_cost(n)
    );

    // Aggregation: exact count over the overlay tree.
    let agg = aggregate_count(&mut sys, origin);
    println!("\naggregation (count) from {origin}:");
    println!(
        "  total {} (true population {n}) in {} rounds, {} messages — exact: {}",
        agg.total,
        agg.rounds,
        agg.messages,
        agg.total == n
    );

    // System-wide agreement through the leader cluster.
    let proposals: BTreeMap<_, _> = sys
        .cluster_ids()
        .into_iter()
        .map(|c| (c, c.raw() + 100))
        .collect();
    let ag = cluster_agreement(&mut sys, &proposals).expect("proposals non-empty");
    println!("\ncluster agreement:");
    println!(
        "  leader {} decided {} — complete: {}, cost {} messages vs single-cluster BFT {}",
        ag.leader,
        ag.decided,
        ag.complete,
        ag.messages,
        single_cluster_round_cost(n, 3)
    );

    sys.check_consistency().expect("consistent");
    println!("\nconsistency check: ok");
}
