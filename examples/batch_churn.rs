//! Parallel join/leave batches — the paper's §2 footnote, live.
//!
//! "The analysis can be generalized to several parallel join and leave
//! operations." One call to `step_parallel` executes a whole batch as a
//! single time step; messages match the serial execution, but the round
//! complexity of the step is the *maximum* over the batch instead of
//! the sum.
//!
//! Run with: `cargo run --release --example batch_churn`

use now_bft::core::{NowParams, NowSystem};
use now_bft::sim::{run_batched, BatchRandomChurn};

fn main() {
    let params = NowParams::new(1 << 12, 4, 1.5, 0.15, 0.05).expect("valid parameters");

    println!("batch width sweep (400 operations each, τ = 0.15):\n");
    println!(
        "{:>6} {:>7} {:>14} {:>16} {:>9}",
        "width", "steps", "rounds serial", "rounds parallel", "speedup"
    );
    for width in [1usize, 4, 8, 16] {
        let mut sys = NowSystem::init_fast(params, 600, 0.15, 99);
        let mut driver = BatchRandomChurn::balanced(width, 0.15);
        let steps = 400 / width as u64;
        let report = run_batched(&mut sys, &mut driver, steps, 7 + width as u64);
        println!(
            "{:>6} {:>7} {:>14} {:>16} {:>8.1}x",
            width,
            report.steps,
            report.rounds_serial,
            report.rounds_parallel,
            report.parallel_speedup()
        );
        sys.check_consistency().expect("system is consistent");
    }

    // And the invariants don't care about the batching:
    let mut sys = NowSystem::init_fast(params, 600, 0.15, 100);
    let mut driver = BatchRandomChurn::balanced(8, 0.15);
    let report = run_batched(&mut sys, &mut driver, 50, 11);
    let audit = &report.final_audit;
    println!(
        "\nafter 50 batched steps ({} joins, {} leaves in parallel batches of 8):",
        report.joins, report.leaves
    );
    println!(
        "  population {}, clusters {}, worst byzantine fraction {:.3}",
        audit.population, audit.cluster_count, audit.worst_byz_fraction
    );
    println!(
        "  all clusters > 2/3 honest: {}",
        audit.all_two_thirds_honest()
    );
    println!("\nparallelism saves rounds, not messages — and Theorem 3 survives it.");
}
