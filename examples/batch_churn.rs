//! Parallel join/leave batches — the paper's §2 footnote, live.
//!
//! "The analysis can be generalized to several parallel join and leave
//! operations." One call to `step_parallel` executes a whole batch as a
//! single time step: the batch is scheduled into conflict-free waves by
//! cluster-footprint disjointness, messages match the serial execution
//! exactly, and the round complexity of the step is the sum of per-wave
//! maxima instead of the serial sum.
//!
//! Run with: `cargo run --release --example batch_churn`

use now_bft::core::{NowParams, NowSystem};
use now_bft::sim::{run_batched, BatchRandomChurn};

fn main() {
    // Cluster count ≫ overlay degree is what gives the scheduler room:
    // capacity 16 ⇒ overlay target degree 5, and we run 64 clusters.
    let params = NowParams::for_capacity(16).expect("valid parameters");
    let n0 = 64 * params.target_cluster_size();

    println!("batch width sweep (400 operations each, τ = 0.1, 64 clusters):\n");
    println!(
        "{:>6} {:>7} {:>14} {:>16} {:>7} {:>10} {:>9}",
        "width", "steps", "rounds serial", "rounds parallel", "waves", "max width", "speedup"
    );
    for width in [1usize, 4, 8, 16] {
        let mut sys = NowSystem::init_fast(params, n0, 0.1, 99);
        let mut driver = BatchRandomChurn::balanced(width, 0.1);
        let steps = 400 / width as u64;
        let report = run_batched(&mut sys, &mut driver, steps, 7 + width as u64);
        println!(
            "{:>6} {:>7} {:>14} {:>16} {:>7} {:>10} {:>8.1}x",
            width,
            report.steps,
            report.rounds_serial,
            report.rounds_parallel,
            report.waves,
            report.max_wave_width,
            report.parallel_speedup()
        );
        sys.check_consistency().expect("system is consistent");
    }

    // And the invariants don't care about the batching:
    let mut sys = NowSystem::init_fast(params, n0, 0.1, 100);
    let mut driver = BatchRandomChurn::balanced(8, 0.1);
    let report = run_batched(&mut sys, &mut driver, 50, 11);
    let audit = &report.final_audit;
    println!(
        "\nafter 50 batched steps ({} joins, {} leaves in parallel batches of 8,",
        report.joins, report.leaves
    );
    println!(
        "  scheduled into {} conflict-free waves, ≈{:.1} per step):",
        report.waves,
        report.mean_waves_per_step()
    );
    println!(
        "  population {}, clusters {}, worst byzantine fraction {:.3}",
        audit.population, audit.cluster_count, audit.worst_byz_fraction
    );
    println!(
        "  all clusters > 2/3 honest: {}",
        audit.all_two_thirds_honest()
    );
    println!("\nparallelism saves rounds, not messages — and Theorem 3 survives it.");
}
