//! Parallel join/leave batches — the paper's §2 footnote, driven by the
//! campaign engine.
//!
//! "The analysis can be generalized to several parallel join and leave
//! operations." Instead of hand-rolling a width sweep, this example
//! declares one [`Campaign`] whose phases re-run balanced churn at
//! growing batch widths on the *same* system: each phase's report
//! carries the wave schedule (counts, widths, slack), so the sweep
//! falls out of the per-phase table. A second, text-defined campaign
//! shows the `scenarios/*.campaign` file format end to end.
//!
//! Run with: `cargo run --release --example batch_churn`

use now_bft::campaign::{Campaign, Phase, PhaseStyle, Trigger};

fn main() {
    // Cluster count ≫ overlay degree is what gives the scheduler room:
    // capacity 16 ⇒ overlay target degree 5, and we run ~64 clusters.
    let mut sweep = Campaign::new("width-sweep", 16);
    sweep.tau = 0.10;
    sweep.initial_population = 512;
    sweep.seed = 99;
    for width in [1usize, 4, 8, 16] {
        sweep = sweep.phase(
            Phase::new(
                format!("width-{width}"),
                PhaseStyle::Balanced,
                Trigger::Steps(400 / width as u64),
            )
            .width(width),
        );
    }

    let (report, sys) = sweep.run(4).expect("valid campaign");
    println!("batch width sweep (400 operations per phase, τ = 0.1, ~64 clusters):\n");
    println!(
        "{:>10} {:>7} {:>14} {:>16} {:>7} {:>10} {:>11}",
        "phase", "steps", "rounds serial", "rounds parallel", "waves", "max width", "wave slack"
    );
    for p in &report.phases {
        println!(
            "{:>10} {:>7} {:>14} {:>16} {:>7} {:>10} {:>11}",
            p.name,
            p.steps,
            p.rounds_serial,
            p.rounds_parallel,
            p.waves,
            p.max_wave_width,
            p.wave_slack_rounds
        );
    }
    sys.check_consistency().expect("system is consistent");

    // The same engine reads the declarative text format — this is what
    // the scenarios/ corpus and the x_campaign binary run.
    let text = "
campaign mixed-regimes
capacity 16
tau 0.10
initial-population 512
seed 100
width 8

phase churn
  style balanced
  steps 50

phase flood
  style join-leave
  target largest
  steps 30

phase quiesce
  style quiet
  steps 10
";
    let campaign = Campaign::parse(text).expect("well-formed campaign text");
    let (report, sys) = campaign.run(4).expect("campaign runs");
    println!("\ndeclarative campaign `{}`:", report.campaign);
    for p in &report.phases {
        println!(
            "  {:>8} ({}): {} steps, {} joins, {} leaves, {} waves (≤ {} wide), pop {}→{}",
            p.name,
            p.style,
            p.steps,
            p.joins,
            p.leaves,
            p.waves,
            p.max_wave_width,
            p.pop_start,
            p.pop_end
        );
    }
    sys.check_consistency().expect("system is consistent");

    println!("\nparallelism saves rounds, not messages — and Theorem 3 survives it.");
}
