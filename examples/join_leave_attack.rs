//! The §3.3 join–leave attack: NOW's shuffling vs the no-shuffle
//! baseline — plus a hardened-adversary extension.
//!
//! The adversary fixates on one cluster and cycles its Byzantine nodes
//! out of the network and back in, always contacting the target. Without
//! `exchange` shuffling the Byzantine mass only ever accumulates in the
//! target until it is captured; with NOW, every join scatters the host
//! cluster's whole membership and the target hovers at the global
//! corruption rate.
//!
//! Three runs:
//! 1. **baseline, paper adversary** — static clustering falls to the
//!    attack;
//! 2. **NOW, paper adversary** — the same attack is absorbed;
//! 3. **NOW, hardened adversary** (beyond the paper's analysis): if any
//!    cluster *transiently* reaches the 1/3 `randNum`-compromise
//!    threshold, the adversary immediately exploits it — stalling walks
//!    at its target, steering hops, and draining honest members. This
//!    exhibits the *sticky-threshold* effect the reproduction surfaced:
//!    the 1/3 line, once touched, can be held. The defense is Lemma 1's
//!    "k large enough" — see EXPERIMENTS.md (X-JLA) for the k/τ sweep.
//!
//! Run with: `cargo run --release --example join_leave_attack`

use now_bft::adversary::{Adversary, JoinLeaveAttack, TargetedMalice};
use now_bft::core::{NowParams, NowSystem};
use now_bft::net::DetRng;
use now_bft::sim::baselines::no_shuffle_params;

fn attack_run(label: &str, params: NowParams, steps: u64, hardened: bool) {
    let tau = 0.12;
    let mut sys = NowSystem::init_fast(params, 560, tau, 11);
    let target = sys.cluster_ids()[0];
    if hardened {
        sys.set_malice(Box::new(TargetedMalice::new(target)));
    }
    let mut adv = JoinLeaveAttack::new(target, tau);
    let mut rng = DetRng::new(13);

    println!("\n=== {label} ===");
    println!(
        "target {target}, τ = {tau}, initial byz fraction {:.3}",
        sys.cluster(target).map(|c| c.byz_fraction()).unwrap_or(0.0)
    );

    let mut captured_at = None;
    let mut peak = 0.0f64;
    for step in 0..steps {
        match adv.decide(&sys, &mut rng) {
            now_bft::adversary::Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                    _ => sys.join(honest),
                };
            }
            now_bft::adversary::Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            now_bft::adversary::Action::Idle => {}
        }
        // The target may have merged away; follow the adversary's aim.
        let aim = adv.target;
        let frac = sys.cluster(aim).map(|c| c.byz_fraction()).unwrap_or(0.0);
        peak = peak.max(frac);
        if step % (steps / 10).max(1) == 0 {
            println!(
                "  step {step:>5}: target byz fraction {frac:.3}, worst anywhere {:.3}",
                sys.audit().worst_byz_fraction
            );
        }
        if frac >= 0.5 && captured_at.is_none() {
            captured_at = Some(step);
        }
    }
    match captured_at {
        Some(step) => println!("  CAPTURED: adversary reached 1/2 of the target at step {step}"),
        None => {
            println!("  never captured (target peaked at {peak:.3}, honest majority throughout)")
        }
    }
    sys.check_consistency().expect("consistent");
}

fn main() {
    // k = 4, l = 2.0: clusters of ~48–96 at N = 2^12. At τ = 0.12 the
    // Chernoff tail from the mean Byzantine share (~12%) to the 1/3
    // threshold is ≈ 4.7σ, so the paper-model runs stay clear of
    // compromise, while the baseline's target has enough size headroom
    // to be captured before a split re-randomizes it.
    let params = NowParams::new(1 << 12, 4, 2.0, 0.12, 0.05).expect("valid parameters");
    let steps = 2500;
    attack_run(
        "baseline: no shuffling, paper adversary",
        no_shuffle_params(params),
        steps,
        false,
    );
    attack_run("NOW: shuffling on, paper adversary", params, steps, false);
    attack_run(
        "NOW: shuffling on, HARDENED adversary (beyond-paper extension)",
        params,
        steps,
        true,
    );
}
