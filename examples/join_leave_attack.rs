//! The §3.3 join–leave attack as a campaign: NOW's shuffling vs the
//! no-shuffle baseline — plus a hardened-adversary extension.
//!
//! The adversary fixates on one cluster and cycles its Byzantine nodes
//! out of the network and back in, always contacting the target — here
//! at batch rate through the campaign engine's [`PhaseStyle::JoinLeave`]
//! driver. Without `exchange` shuffling the Byzantine mass accumulates
//! in the target until it is captured; with NOW, every join scatters
//! the host cluster's whole membership and the target hovers near the
//! global corruption rate.
//!
//! Three runs of the *same* campaign (warmup → sustained flood →
//! quiesce), differing only in the system they run on:
//! 1. **baseline** — `shuffle off`: static clustering falls to the
//!    attack;
//! 2. **NOW** — the full protocol absorbs it;
//! 3. **NOW, hardened adversary** (beyond the paper's analysis) — the
//!    campaign runs on a pre-built system carrying a strategic
//!    [`TargetedMalice`] oracle ([`Campaign::run_on`]): if any cluster
//!    transiently reaches the 1/3 `randNum`-compromise threshold, the
//!    adversary exploits it — stalling walks, steering hops, draining
//!    honest members. The defense is Lemma 1's "k large enough"; see
//!    EXPERIMENTS.md (X-JLA) for the k/τ sweep.
//!
//! Run with: `cargo run --release --example join_leave_attack`

use now_bft::adversary::TargetedMalice;
use now_bft::campaign::{Campaign, Phase, PhaseStyle, Trigger};
use now_bft::core::SecurityMode;

fn campaign(shuffle: bool) -> Campaign {
    let mut c = Campaign::new("join-leave-attack", 1 << 12);
    c.k = 4;
    c.l = 2.0;
    c.tau = 0.12;
    c.epsilon = 0.05;
    c.initial_population = 560;
    c.seed = 11;
    c.width = 4;
    c.shuffle = shuffle;
    c.phase(Phase::new(
        "warmup",
        PhaseStyle::Balanced,
        Trigger::Steps(50),
    ))
    .phase(
        Phase::new("flood", PhaseStyle::JoinLeave, Trigger::Steps(500))
            .target(now_bft::adversary::ClusterPick::First),
    )
    .phase(Phase::new("quiesce", PhaseStyle::Quiet, Trigger::Steps(20)))
}

fn summarize(label: &str, report: &now_bft::campaign::CampaignReport) {
    println!("\n=== {label} ===");
    for p in &report.phases {
        println!(
            "  {:>8}: {:>4} steps, peak byz fraction {:.3}, {} binding violations",
            p.name, p.steps, p.peak_byz_fraction, p.binding_violations
        );
    }
    let flood = &report.phases[1];
    if flood.peak_byz_fraction >= 0.5 {
        println!("  CAPTURED: some cluster reached 1/2 Byzantine during the flood");
    } else {
        println!(
            "  never captured (flood peaked at {:.3}, honest majority throughout)",
            flood.peak_byz_fraction
        );
    }
}

fn main() {
    // k = 4, l = 2.0: clusters of ~48–96 at N = 2^12. At τ = 0.12 the
    // Chernoff tail from the mean Byzantine share (~12%) to the 1/3
    // threshold is ≈ 4.7σ, so the paper-model runs stay clear of
    // compromise, while the baseline's target accumulates Byzantine
    // mass monotonically until capture.
    let baseline = campaign(false);
    let (report, sys) = baseline.run(1).expect("baseline campaign runs");
    summarize("baseline: no shuffling, batched §3.3 adversary", &report);
    sys.check_consistency().expect("consistent");

    let now = campaign(true);
    let (report, sys) = now.run(1).expect("NOW campaign runs");
    summarize("NOW: shuffling on, batched §3.3 adversary", &report);
    sys.check_consistency().expect("consistent");

    // The hardened run pre-builds the system, installs the strategic
    // in-protocol oracle aimed at the flood's target, then hands the
    // system to the same campaign.
    let hardened = campaign(true);
    let mut sys = hardened.build_system().expect("valid parameters");
    let target = sys.cluster_ids()[0];
    sys.set_malice(Box::new(TargetedMalice::new(target)));
    let report = hardened
        .run_on(&mut sys, 1)
        .expect("hardened campaign runs");
    summarize(
        "NOW: shuffling on, HARDENED adversary (beyond-paper)",
        &report,
    );
    sys.check_consistency().expect("consistent");

    assert_eq!(report.security, SecurityMode::Plain);
    println!("\nshuffling is the defense: the baseline's flood concentrates, NOW's scatters.");
}
