//! Secure polling under churn — the application of the paper's
//! reference [12] (Gambs et al., SRDS 2012), built on the NOW clusters.
//!
//! A binary poll runs over the cluster overlay while the network churns
//! and the adversary ballots as a bloc. The clustering bounds the
//! adversary's distortion by the number of ballots it actually owns —
//! no tally stuffing, no cluster-level misreporting (the quorum rule
//! blocks it while every cluster keeps its honest majority).
//!
//! Run with: `cargo run --release --example secure_polling`

use now_bft::adversary::RandomChurn;
use now_bft::apps::poll;
use now_bft::core::{NowParams, NowSystem};
use now_bft::sim::{run, RunConfig};

fn main() {
    let params = NowParams::new(1 << 12, 4, 1.5, 0.15, 0.05).expect("valid parameters");
    let mut sys = NowSystem::init_fast(params, 600, 0.15, 2024);
    println!(
        "network: {} nodes ({} Byzantine), {} clusters\n",
        sys.population(),
        sys.byz_population(),
        sys.cluster_count()
    );

    // The question: honest nodes split ~60/40 (even ids lean yes);
    // the adversary wants "yes" to win and ballots as a bloc.
    let intent = |n: now_bft::net::NodeId| n.raw() % 5 < 3;

    for round in 0..4 {
        // Poll, then churn, then poll again — the guarantee is per-poll,
        // whatever the interleaving.
        let root = sys.cluster_ids()[0];
        let report = poll(&mut sys, root, intent, true);
        let n = report.yes + report.no;
        println!(
            "poll #{round}: {} ballots over {} clusters",
            n,
            sys.cluster_count()
        );
        println!(
            "  counted  : yes {:>4}  no {:>4}  ({:.1}% yes)",
            report.yes,
            report.no,
            100.0 * report.yes as f64 / n as f64
        );
        println!(
            "  honest   : yes {:>4}  no {:>4}  ({:.1}% yes)",
            report.honest_yes,
            report.honest_no,
            100.0 * report.honest_yes as f64 / (report.honest_yes + report.honest_no) as f64
        );
        println!(
            "  distortion {} ≤ byzantine ballots {}  (complete: {}, {} msgs, {} rounds)",
            report.distortion(),
            sys.byz_population(),
            report.complete,
            report.messages,
            report.rounds
        );
        assert!(report.distortion() <= sys.byz_population());

        // 150 steps of churn between polls.
        let mut churn = RandomChurn::balanced(0.15);
        run(
            &mut sys,
            &mut churn,
            RunConfig {
                steps: 150,
                audit_every: 10,
                seed: 31 + round,
            },
        );
    }

    sys.check_consistency().expect("system is consistent");
    println!("\nthe adversary never moved the tally by more than its own ballot count.");
}
