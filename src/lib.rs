//! # now-bft — Highly Dynamic Distributed Computing with Byzantine Failures
//!
//! A full reproduction of **Guerraoui, Huc, Kermarrec (PODC 2013)**:
//! the **NOW** (*Neighbors On Watch*) protocol maintains a partition of
//! a churning network into clusters of size `Θ(log N)` such that every
//! cluster keeps more than two thirds honest members whp, while the
//! population varies polynomially (`√N ≤ n ≤ N`) under a Byzantine
//! adversary controlling a `τ ≤ 1/3 − ε` fraction of the nodes — at
//! `polylog(N)` communication per join/leave.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`net`] | ids, synchronous bus, async event-driven net, cost ledger, deterministic RNG |
//! | [`graph`] | ER generation, spectral expansion, isoperimetric constants, CTRWs |
//! | [`agreement`] | Bracha, Phase-King, Dolev–Strong, async Ben-Or, `randNum` (sync + async), quorum rule |
//! | [`over`] | the OVER dynamic expander overlay + the Law–Siu constant-degree alternative |
//! | [`core`] | the NOW protocol itself ([`core::NowSystem`]): ops, batches, both init paths |
//! | [`adversary`] | churn attacks, structural pressure, batched attack drivers, in-protocol malice |
//! | [`sim`] | serial + batched runners, churn schedules, metrics, baselines |
//! | [`trace`] | deterministic flight recorder, metrics registry, opt-in phase profiler |
//! | [`campaign`] | declarative multi-phase attack campaigns (`scenarios/*.campaign`) |
//! | [`apps`] | §6 applications: broadcast, sampling, aggregation, agreement, polling |
//!
//! # Quickstart
//!
//! ```
//! use now_bft::core::{NowParams, NowSystem};
//! use now_bft::adversary::RandomChurn;
//! use now_bft::sim::{run, RunConfig};
//!
//! let params = NowParams::for_capacity(1 << 10)?;
//! let mut sys = NowSystem::init_fast(params, 128, 0.15, 42);
//! let mut churn = RandomChurn::balanced(0.15);
//! let report = run(&mut sys, &mut churn, RunConfig::for_steps(50));
//! assert!(report.final_audit.population > 0);
//! # Ok::<(), now_bft::core::NowError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/now-bench` for the
//! experiment harness regenerating every claim in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use now_adversary as adversary;
pub use now_agreement as agreement;
pub use now_apps as apps;
pub use now_campaign as campaign;
pub use now_core as core;
pub use now_graph as graph;
pub use now_net as net;
pub use now_over as over;
pub use now_sim as sim;
pub use now_trace as trace;
