//! Offline vendored ChaCha12 random number generator.
//!
//! A faithful ChaCha stream-cipher core (Bernstein 2008) with 12
//! rounds, exposed through the vendored `rand` traits. The generator is
//! fully deterministic in its seed, which is the only property the
//! workspace relies on (`now_net::DetRng` wraps this type).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha with 12 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered output of the current block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread index into `buf`; `BLOCK_WORDS` means empty.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// The ChaCha constant words: "expand 32-byte k".
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let input = state;
        for _ in 0..6 {
            // One double-round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        Self {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_advance() {
        // Crossing the 16-word block boundary must produce fresh output.
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_looks_balanced() {
        // Cheap sanity check: bit density of 64k samples near one half.
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        let density = ones as f64 / total as f64;
        assert!((density - 0.5).abs() < 0.01, "bit density {density}");
    }
}
