//! Offline vendored subset of the proptest 1.x API.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the property-testing surface the workspace uses:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], [`any`],
//! range strategies, tuple strategies, and
//! [`collection::vec`]/[`collection::btree_set`].
//!
//! Differences from upstream proptest, by design:
//! * **No shrinking.** A failing case reports its values and panics.
//! * **Deterministic seeding.** Cases derive from a SplitMix64 stream
//!   seeded by the test function's name, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; the [`proptest!`] macro hashes the test name.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x51ED_270C_A5A5_A5A5,
        }
    }

    /// Next raw word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case ended, other than success.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; try another.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `&S` is a strategy wherever `S` is (lets borrowed strategies compose).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding the full value range of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` entry point, mirroring `proptest::prelude::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 2f64.powi((rng.below(64) as i32) - 32);
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty size range");
        Self {
            lo,
            hi_exclusive: hi + 1,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_exclusive - self.lo) as u64;
        self.lo + rng.below(span.max(1)) as usize
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with element strategy `S` and a size spec.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; like upstream, the set may come out
    /// smaller than the drawn size when duplicate elements collide.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set(element, size)`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a over the bytes), so each
/// property test gets a stable, independent stream.
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), rejected
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), passed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({}) at {}:{}",
                l, r, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` consumer expects.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeding_is_stable() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = crate::Strategy::generate(&(0.0f64..10.0), &mut rng);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        let strat = crate::collection::vec(0u32..5, 1..40);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_strategy_bounded() {
        let mut rng = crate::TestRng::new(3);
        let strat = crate::collection::btree_set(0usize..9, 0..3);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(s.len() < 3);
        }
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 0u32..100, (a, b) in (any::<bool>(), 0usize..4)) {
            prop_assert!(x < 100);
            prop_assert!(b < 4, "b = {}", b);
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_works(v in crate::collection::vec(any::<u16>(), 0..8)) {
            prop_assume!(v.len() != 3);
            prop_assert!(v.len() < 8);
        }
    }
}
