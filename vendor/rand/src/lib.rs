//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`Error`], and the [`distributions::Standard`]
//! distribution for primitive types. Semantics follow rand 0.8; the
//! bit-streams of derived values are *not* guaranteed to match upstream
//! rand (the workspace pins all determinism through `now_net::DetRng`,
//! which only relies on `ChaCha12Rng`'s raw word stream).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (`try_fill_bytes`).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material; typically `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives full seed material from a `u64` via SplitMix64.
    ///
    /// NOTE: upstream rand_core 0.6 expands with a different algorithm
    /// (PCG32), so streams do NOT match real rand 0.8 — swapping the
    /// vendored crates for upstream requires re-pinning every seeded
    /// statistical test (see vendor/README.md).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 constants (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let take = chunk.len().min(4);
            chunk[..take].copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions (only [`Standard`] is provided).

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a primitive type: uniform over all
    /// values for integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// A type that `gen_range` can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`. Caller guarantees `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`. Caller guarantees `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Lemire-style widening multiply; bias is < 2^-32 for the
                // span sizes simulations use, and determinism is what we
                // actually rely on.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                if low == high {
                    return low;
                }
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// A small fast non-cryptographic PRNG (SplitMix64); stands in for
    /// rand 0.8's `StdRng` for code that only needs *a* seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self {
                state: u64::from_le_bytes(first),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = Counter(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
