//! Offline vendored subset of the criterion 0.5 API.
//!
//! The build environment has no crates.io access, so this crate mirrors
//! the criterion surface the benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `BenchmarkId`, `BatchSize`, the `criterion_group!`/`criterion_main!`
//! macros) with a deliberately simple measurement model: warm up once,
//! run `sample_size` timed iterations, report mean wall-clock time per
//! iteration. No statistics, plots, or baselines — enough to keep the
//! bench targets compiling and to give a usable first-order number.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Discourage the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The vendored harness runs
/// one setup per routine invocation regardless, so this only documents
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch upstream.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for groups whose name already identifies the
    /// function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the closure given to `bench_function`; runs the routine.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }

    /// Times `routine` on a fresh `setup()` value each iteration; setup
    /// time is excluded from the measurement, and — matching upstream
    /// criterion — so is the drop of the routine's return value (benches
    /// return their mutated state precisely so its teardown stays out of
    /// the measured window).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            total += start.elapsed();
            drop(output);
        }
        self.mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the vendored harness is bounded
    /// by `sample_size`, not by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Sets the default number of timed iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.effective_samples();
        self.run_one(name, samples, f);
        self
    }

    fn effective_samples(&self) -> usize {
        if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        let mut bencher = Bencher {
            samples,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        let mean = bencher.mean_ns;
        let human = if mean >= 1e9 {
            format!("{:.3} s", mean / 1e9)
        } else if mean >= 1e6 {
            format!("{:.3} ms", mean / 1e6)
        } else if mean >= 1e3 {
            format!("{:.3} µs", mean / 1e3)
        } else {
            format!("{mean:.0} ns")
        };
        println!("bench {label:<48} {human}/iter  ({samples} samples)");
    }
}

/// Declares a named group of benchmark functions, mirroring criterion's
/// macro (the `config = ...` form is also accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args; the vendored harness
            // runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        // warm-up + 3 samples.
        assert!(ran >= 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t2");
        group.sample_size(5);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 6); // warm-up + 5 samples
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("walk", 32).id, "walk/32");
        assert_eq!(BenchmarkId::from_parameter(99).id, "99");
    }
}
