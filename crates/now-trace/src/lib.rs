//! Deterministic observability for the NOW reproduction.
//!
//! Three pillars, each bound by the workspace's bit-determinism
//! contract (see README "Observability"):
//!
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer
//!   of typed protocol events ([`TraceData`]) recorded in canonical op
//!   order, so the trace of a run is byte-identical at every thread
//!   count. When an invariant violation is raised, the recorder takes
//!   a one-shot dump of its buffered events filtered to the offending
//!   cluster's causal neighborhood ([`ViolationDump`]).
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters,
//!   gauges, and fixed-bucket histograms. All values are integers
//!   derived from protocol outcomes; no wall clock ever enters a
//!   metric. Exports as canonical JSON and Prometheus-style text.
//! * **Phase profiler** ([`stopwatch`], [`SpanTotal`]) — the single
//!   sanctioned wall-clock measurement site (lint rule D002 allowlists
//!   exactly `src/profile.rs` of this crate). Wall-clock readings feed
//!   advisory fields and process-global span totals only; they are
//!   excluded from every byte-diffed artifact.
//!
//! The crate is dependency-free and protocol-agnostic: callers record
//! node and cluster identities as raw `u64`s, which keeps this crate at
//! the bottom of the workspace DAG (everything above — now-core,
//! now-sim, now-campaign — can depend on it).

#![deny(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod profile;
mod recorder;

pub use event::{TraceData, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{stopwatch, SpanTotal, Stopwatch};
pub use recorder::{FlightRecorder, ViolationDump};
