//! The flight recorder: a bounded ring of recent protocol events.

use crate::event::{TraceData, TraceEvent};
use std::collections::{BTreeSet, VecDeque};

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Events are pushed in canonical op order by the engines; when the
/// ring is full the oldest event is evicted. Sequence numbers are
/// global and monotone, so [`FlightRecorder::evicted`] history is
/// visible as a gap before the first retained event. Because every
/// recording site is on the deterministic (driving-thread) path, the
/// retained window — and its JSON rendering — is byte-identical across
/// thread counts.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<TraceEvent>,
    dump: Option<ViolationDump>,
}

/// The one-shot forensic dump taken when the first violation is
/// raised: the ring's events at that moment, filtered to the offending
/// cluster's causal neighborhood.
#[derive(Debug, Clone)]
pub struct ViolationDump {
    /// Time step of the violating audit.
    pub step: u64,
    /// Violation kind (e.g. `"not_two_thirds_honest"`).
    pub kind: &'static str,
    /// The offending cluster, if the audit identified one.
    pub cluster: Option<u64>,
    /// The causal neighborhood used as the filter: the offending
    /// cluster plus its overlay neighbors at violation time (empty
    /// when no cluster was identified — then nothing is filtered out).
    pub neighborhood: Vec<u64>,
    /// The retained events that touch the neighborhood (all retained
    /// events when `neighborhood` is empty).
    pub events: Vec<TraceEvent>,
}

impl ViolationDump {
    /// Canonical JSON object for the dump.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"step\": {}, \"kind\": \"{}\", ",
            self.step, self.kind
        ));
        match self.cluster {
            Some(c) => s.push_str(&format!("\"cluster\": {c}, ")),
            None => s.push_str("\"cluster\": null, "),
        }
        s.push_str("\"neighborhood\": [");
        for (i, c) in self.neighborhood.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&c.to_string());
        }
        s.push_str("], \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&ev.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` events
    /// (`capacity` below 1 behaves as 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            next_seq: 0,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dump: None,
        }
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn push(&mut self, step: u64, data: TraceData) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceEvent {
            seq: self.next_seq,
            step,
            data,
        });
        self.next_seq += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything evicted —
    /// impossible, eviction only happens on push).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far.
    pub fn evicted(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The violation dump, if one was captured.
    pub fn dump(&self) -> Option<&ViolationDump> {
        self.dump.as_ref()
    }

    /// Captures the one-shot violation dump (first call wins; later
    /// violations record [`TraceData::Violation`] events but do not
    /// retake the dump). `neighborhood` is the offending cluster's
    /// causal neighborhood — events referencing none of its clusters
    /// are filtered out; an empty neighborhood keeps everything.
    pub fn capture_dump(
        &mut self,
        step: u64,
        kind: &'static str,
        cluster: Option<u64>,
        neighborhood: &[u64],
    ) {
        if self.dump.is_some() {
            return;
        }
        let set: BTreeSet<u64> = neighborhood.iter().copied().collect();
        let events: Vec<TraceEvent> = self
            .buf
            .iter()
            .filter(|ev| {
                if set.is_empty() {
                    return true;
                }
                let (a, b) = ev.data.clusters();
                a.is_some_and(|c| set.contains(&c)) || b.is_some_and(|c| set.contains(&c))
            })
            .copied()
            .collect();
        let mut neighborhood: Vec<u64> = set.into_iter().collect();
        neighborhood.sort_unstable();
        self.dump = Some(ViolationDump {
            step,
            kind,
            cluster,
            neighborhood,
            events,
        });
    }

    /// Canonical JSON for the whole recorder: capacity, eviction count,
    /// retained events, and the violation dump (or `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        s.push_str(&format!("  \"recorded\": {},\n", self.recorded()));
        s.push_str(&format!("  \"evicted\": {},\n", self.evicted()));
        s.push_str("  \"events\": [\n");
        for (i, ev) in self.buf.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&ev.to_json());
            s.push_str(if i + 1 < self.buf.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"dump\": ");
        match &self.dump {
            Some(d) => s.push_str(&d.to_json()),
            None => s.push_str("null"),
        }
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(ops: u64) -> TraceData {
        TraceData::Wave {
            ops,
            rounds: 1,
            messages: 1,
        }
    }

    #[test]
    fn ring_evicts_oldest_first_in_order() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(i, wave(i));
        }
        // Events 0 and 1 evicted; 2, 3, 4 retained in push order.
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        assert_eq!(rec.recorded(), 5);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let steps: Vec<u64> = rec.events().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..10 {
            rec.push(0, wave(i));
        }
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9], "seq is global, not ring-relative");
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut rec = FlightRecorder::new(0);
        rec.push(0, wave(1));
        rec.push(1, wave(2));
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events().next().unwrap().seq, 1);
    }

    #[test]
    fn dump_filters_to_the_neighborhood_and_is_one_shot() {
        let mut rec = FlightRecorder::new(16);
        rec.push(
            0,
            TraceData::Split {
                cluster: 1,
                new_cluster: 2,
            },
        );
        rec.push(
            1,
            TraceData::Merge {
                cluster: 7,
                absorbed: 8,
            },
        );
        rec.push(
            2,
            TraceData::Violation {
                kind: "size_bounds",
                cluster: Some(1),
            },
        );
        rec.capture_dump(2, "size_bounds", Some(1), &[1, 2]);
        let dump = rec.dump().expect("dump taken");
        assert_eq!(dump.kind, "size_bounds");
        assert_eq!(dump.neighborhood, vec![1, 2]);
        // The merge of clusters 7/8 is outside the neighborhood.
        assert_eq!(dump.events.len(), 2);
        assert!(dump
            .events
            .iter()
            .all(|e| matches!(e.data.kind(), "split" | "violation")));
        // Second capture is ignored.
        rec.capture_dump(9, "forgeable", Some(7), &[7]);
        assert_eq!(rec.dump().unwrap().step, 2);
    }

    #[test]
    fn empty_neighborhood_keeps_everything() {
        let mut rec = FlightRecorder::new(4);
        rec.push(0, wave(1));
        rec.push(
            1,
            TraceData::OpApplied {
                canon: 0,
                join: true,
                node: 5,
            },
        );
        rec.capture_dump(1, "size_bounds", None, &[]);
        assert_eq!(rec.dump().unwrap().events.len(), 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut rec = FlightRecorder::new(2);
        rec.push(0, wave(3));
        let json = rec.to_json();
        assert!(json.contains("\"capacity\": 2"));
        assert!(json.contains("\"evicted\": 0"));
        assert!(json.contains("\"kind\": \"wave\""));
        assert!(json.contains("\"dump\": null"));
        // Determinism guard: no wall-clock or worker-count vocabulary
        // may ever enter the trace artifact.
        for banned in ["wall", "nanos", "thread"] {
            assert!(!json.contains(banned), "{banned} leaked into trace JSON");
        }
    }
}
