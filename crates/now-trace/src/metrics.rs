//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, all integer-valued and populated exclusively from
//! protocol outcomes.
//!
//! # Naming convention
//!
//! `now_<subsystem>_<quantity>[_total]` — `_total` marks monotone
//! counters (Prometheus idiom); gauges and histograms carry no suffix.
//! Names are snake_case `[a-z0-9_]` and must never encode a
//! thread count, wall-clock reading, or any other run-environment
//! value: a metrics artifact is part of the byte-diffed determinism
//! surface.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram: `counts[i]` tallies observations
/// `<= bounds[i]`, with one overflow bucket at the end (`+Inf`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        // INVARIANT: `windows(2)` only yields slices of length 2.
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Upper bounds (exclusive of the implicit `+Inf` bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is `+Inf`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// Named counters, gauges, and histograms with canonical (sorted-key)
/// JSON and Prometheus-style text export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram, creating it
    /// with `bounds` on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Canonical JSON: three sorted maps, fixed field order, integers
    /// only.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    \"{k}\": {v}");
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    \"{k}\": {v}");
        }
        s.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    \"{k}\": {{\"bounds\": [");
            for (j, b) in h.bounds().iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("], \"counts\": [");
            for (j, c) in h.counts().iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{c}");
            }
            let _ = write!(s, "], \"count\": {}, \"sum\": {}}}", h.count(), h.sum());
        }
        s.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }

    /// Prometheus-style text exposition: `# TYPE` headers, buckets as
    /// cumulative `_bucket{le="..."}` series, sorted by metric name.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(s, "# TYPE {k} counter");
            let _ = writeln!(s, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(s, "# TYPE {k} gauge");
            let _ = writeln!(s, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(s, "# TYPE {k} histogram");
            let mut cum = 0u64;
            for (b, c) in h.bounds().iter().zip(h.counts()) {
                cum += c;
                let _ = writeln!(s, "{k}_bucket{{le=\"{b}\"}} {cum}");
            }
            let _ = writeln!(s, "{k}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(s, "{k}_sum {}", h.sum());
            let _ = writeln!(s, "{k}_count {}", h.count());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.inc("now_ops_joined_total", 2);
        m.inc("now_ops_joined_total", 3);
        assert_eq!(m.counter("now_ops_joined_total"), 5);
        assert_eq!(m.counter("now_never"), 0);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 112);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("now_b_total", 1);
        m.inc("now_a_total", 1);
        m.set_gauge("now_population", 42);
        m.observe("now_wave_width", &[1, 2], 2);
        let json = m.to_json();
        let a = json.find("now_a_total").unwrap();
        let b = json.find("now_b_total").unwrap();
        assert!(a < b, "keys must render sorted");
        assert!(json.contains("\"now_population\": 42"));
        assert!(
            json.contains("\"bounds\": [1, 2], \"counts\": [0, 1, 0], \"count\": 1, \"sum\": 2")
        );
        // Two renders are byte-identical.
        assert_eq!(json, m.to_json());
    }

    #[test]
    fn empty_registry_renders_valid_json() {
        let json = MetricsRegistry::new().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut m = MetricsRegistry::new();
        m.observe("now_wave_width", &[1, 2], 1);
        m.observe("now_wave_width", &[1, 2], 2);
        m.observe("now_wave_width", &[1, 2], 9);
        let text = m.to_prometheus();
        assert!(text.contains("now_wave_width_bucket{le=\"1\"} 1"));
        assert!(text.contains("now_wave_width_bucket{le=\"2\"} 2"));
        assert!(text.contains("now_wave_width_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("now_wave_width_sum 12"));
        assert!(text.contains("now_wave_width_count 3"));
    }
}
