//! The phase profiler: the workspace's **single sanctioned wall-clock
//! measurement site**.
//!
//! Lint rule D002 bans `Instant::now` / `SystemTime` from every
//! deterministic path; `lint.toml` allowlists exactly this file. All
//! engine-internal timing — `BatchReport::wall_nanos` and the
//! plan/apply/maintenance span totals in `now_core::wave_exec` — is
//! funneled through [`stopwatch`], so the wall clock has one auditable
//! entry point instead of a scatter of raw `Instant::now` calls.
//!
//! Readings from here are **advisory only**: they feed fields and
//! counters that are excluded from every byte-diffed artifact (traces,
//! metrics, campaign reports), and they must never influence
//! deterministic state. CI's `trace-smoke` grep gate enforces the
//! artifact side of that contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A started wall-clock measurement (see [`stopwatch`]).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

/// Starts a wall-clock measurement — the only approved way to read the
/// wall clock in this workspace.
pub fn stopwatch() -> Stopwatch {
    Stopwatch {
        start: Instant::now(),
    }
}

impl Stopwatch {
    /// Nanoseconds elapsed since [`stopwatch`] was called.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Adds the elapsed time to a process-global span total.
    pub fn record_into(&self, total: &SpanTotal) {
        total.add(self.elapsed_nanos());
    }
}

/// A process-global accumulator for one profiled span (plan, apply,
/// maintenance, …). Relaxed ordering suffices: the totals are advisory
/// profiling counters, read only by benches and experiment binaries.
#[derive(Debug)]
pub struct SpanTotal(AtomicU64);

impl SpanTotal {
    /// A zeroed total, usable in `static` position.
    pub const fn new() -> Self {
        SpanTotal(AtomicU64::new(0))
    }

    /// Adds `nanos` to the total.
    pub fn add(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }

    /// The accumulated total.
    pub fn total(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for SpanTotal {
    fn default() -> Self {
        SpanTotal::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = stopwatch();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a, "elapsed time is monotone");
    }

    #[test]
    fn span_totals_accumulate() {
        static SPAN: SpanTotal = SpanTotal::new();
        SPAN.add(5);
        SPAN.add(7);
        assert!(SPAN.total() >= 12);
        let sw = stopwatch();
        sw.record_into(&SPAN);
        assert!(SPAN.total() >= 12);
    }
}
