//! Typed protocol events and their canonical JSON rendering.

use std::fmt::Write as _;

/// One protocol event, as recorded by the engines.
///
/// Identities are raw `u64`s ([`now_net::NodeId::raw`] /
/// `ClusterId::raw` upstream) so the event type carries no workspace
/// dependencies. Every variant's fields are protocol outcomes — never
/// wall-clock readings, thread counts, or any other value that could
/// differ between two runs of the same `(seed, config)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceData {
    /// An operation was admitted into the step, at canonical position
    /// `canon` (departures before arrivals, each in input order).
    OpPlanned {
        /// Canonical position within the step.
        canon: u64,
        /// `true` for an arrival, `false` for a departure.
        join: bool,
        /// The joining/leaving node.
        node: u64,
    },
    /// An admitted operation's effects were applied.
    OpApplied {
        /// Canonical position within the step.
        canon: u64,
        /// `true` for an arrival, `false` for a departure.
        join: bool,
        /// The joining/leaving node.
        node: u64,
    },
    /// A departure was rejected (unknown node or population floor).
    OpRejected {
        /// The refused node.
        node: u64,
    },
    /// Event engine: an admitted operation's message entered the net.
    MsgSend {
        /// Canonical position of the operation the message carries.
        canon: u64,
        /// Sending cluster.
        from: u64,
        /// Receiving (contact/home) cluster.
        to: u64,
    },
    /// Event engine: a message was delivered at virtual time `time`.
    MsgDeliver {
        /// Virtual delivery time.
        time: u64,
        /// Canonical position of the carried operation.
        canon: u64,
    },
    /// Event engine: the net lost a message; the operation never ran.
    MsgDrop {
        /// Virtual time of the loss.
        time: u64,
        /// Canonical position of the carried operation.
        canon: u64,
        /// `"loss"`, `"partition"`, or `"dead"`.
        reason: &'static str,
    },
    /// An oversized cluster split.
    Split {
        /// The splitting cluster (keeps its overlay vertex).
        cluster: u64,
        /// The freshly minted half.
        new_cluster: u64,
    },
    /// An undersized cluster absorbed a victim cluster.
    Merge {
        /// The surviving (undersized) cluster.
        cluster: u64,
        /// The dissolved victim.
        absorbed: u64,
    },
    /// Stale join contacts redrawn during the step.
    ContactRedraws {
        /// Number of redraws.
        count: u64,
    },
    /// A conflict-free wave executed.
    Wave {
        /// Operations in the wave.
        ops: u64,
        /// Critical-path rounds (max over the wave's operations).
        rounds: u64,
        /// Message cost summed over the wave.
        messages: u64,
    },
    /// Event engine: a partition was in force at step start.
    Partition {
        /// Port groups the partition splits the net into.
        groups: u64,
    },
    /// Event engine: the partition heals at virtual time `at`.
    Heal {
        /// Virtual heal time.
        at: u64,
    },
    /// An invariant violation was raised by an audit.
    Violation {
        /// Violation kind (e.g. `"not_two_thirds_honest"`).
        kind: &'static str,
        /// The worst cluster at that moment, if identifiable.
        cluster: Option<u64>,
    },
}

impl TraceData {
    /// Canonical event-kind tag (the `"kind"` field of the JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::OpPlanned { .. } => "op_planned",
            TraceData::OpApplied { .. } => "op_applied",
            TraceData::OpRejected { .. } => "op_rejected",
            TraceData::MsgSend { .. } => "msg_send",
            TraceData::MsgDeliver { .. } => "msg_deliver",
            TraceData::MsgDrop { .. } => "msg_drop",
            TraceData::Split { .. } => "split",
            TraceData::Merge { .. } => "merge",
            TraceData::ContactRedraws { .. } => "contact_redraws",
            TraceData::Wave { .. } => "wave",
            TraceData::Partition { .. } => "partition",
            TraceData::Heal { .. } => "heal",
            TraceData::Violation { .. } => "violation",
        }
    }

    /// The clusters this event references, for causal-neighborhood
    /// filtering (none for node- or step-scoped events).
    pub fn clusters(&self) -> (Option<u64>, Option<u64>) {
        match *self {
            TraceData::MsgSend { from, to, .. } => (Some(from), Some(to)),
            TraceData::Split {
                cluster,
                new_cluster,
            } => (Some(cluster), Some(new_cluster)),
            TraceData::Merge { cluster, absorbed } => (Some(cluster), Some(absorbed)),
            TraceData::Violation { cluster, .. } => (cluster, None),
            _ => (None, None),
        }
    }
}

/// A recorded event: monotone sequence number, protocol time step, and
/// the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone per-recorder sequence number (never reused; survives
    /// ring eviction, so gaps at the front reveal evicted history).
    pub seq: u64,
    /// Protocol time step during which the event occurred.
    pub step: u64,
    /// The event payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Renders the event as one canonical single-line JSON object:
    /// fixed field order (`seq`, `step`, `kind`, then the variant's
    /// fields in declaration order), integers only.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\": {}, \"step\": {}, \"kind\": \"{}\"",
            self.seq,
            self.step,
            self.data.kind()
        );
        match self.data {
            TraceData::OpPlanned { canon, join, node }
            | TraceData::OpApplied { canon, join, node } => {
                let _ = write!(
                    s,
                    ", \"canon\": {canon}, \"op\": \"{}\", \"node\": {node}",
                    if join { "join" } else { "leave" }
                );
            }
            TraceData::OpRejected { node } => {
                let _ = write!(s, ", \"node\": {node}");
            }
            TraceData::MsgSend { canon, from, to } => {
                let _ = write!(s, ", \"canon\": {canon}, \"from\": {from}, \"to\": {to}");
            }
            TraceData::MsgDeliver { time, canon } => {
                let _ = write!(s, ", \"time\": {time}, \"canon\": {canon}");
            }
            TraceData::MsgDrop {
                time,
                canon,
                reason,
            } => {
                let _ = write!(
                    s,
                    ", \"time\": {time}, \"canon\": {canon}, \"reason\": \"{reason}\""
                );
            }
            TraceData::Split {
                cluster,
                new_cluster,
            } => {
                let _ = write!(
                    s,
                    ", \"cluster\": {cluster}, \"new_cluster\": {new_cluster}"
                );
            }
            TraceData::Merge { cluster, absorbed } => {
                let _ = write!(s, ", \"cluster\": {cluster}, \"absorbed\": {absorbed}");
            }
            TraceData::ContactRedraws { count } => {
                let _ = write!(s, ", \"count\": {count}");
            }
            TraceData::Wave {
                ops,
                rounds,
                messages,
            } => {
                let _ = write!(
                    s,
                    ", \"ops\": {ops}, \"rounds\": {rounds}, \"messages\": {messages}"
                );
            }
            TraceData::Partition { groups } => {
                let _ = write!(s, ", \"groups\": {groups}");
            }
            TraceData::Heal { at } => {
                let _ = write!(s, ", \"at\": {at}");
            }
            TraceData::Violation { kind, cluster } => {
                let _ = write!(s, ", \"violation\": \"{kind}\", \"cluster\": ");
                match cluster {
                    Some(c) => {
                        let _ = write!(s, "{c}");
                    }
                    None => s.push_str("null"),
                }
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let split = TraceData::Split {
            cluster: 1,
            new_cluster: 2,
        };
        assert_eq!(split.kind(), "split");
        assert_eq!(TraceData::Heal { at: 4 }.kind(), "heal");
    }

    #[test]
    fn json_has_fixed_field_order() {
        let ev = TraceEvent {
            seq: 3,
            step: 7,
            data: TraceData::OpApplied {
                canon: 2,
                join: true,
                node: 41,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"seq\": 3, \"step\": 7, \"kind\": \"op_applied\", \"canon\": 2, \
             \"op\": \"join\", \"node\": 41}"
        );
    }

    #[test]
    fn violation_renders_null_cluster() {
        let ev = TraceEvent {
            seq: 0,
            step: 1,
            data: TraceData::Violation {
                kind: "size_bounds",
                cluster: None,
            },
        };
        assert!(ev.to_json().ends_with("\"cluster\": null}"));
    }

    #[test]
    fn cluster_refs_cover_cluster_scoped_events() {
        let merge = TraceData::Merge {
            cluster: 5,
            absorbed: 9,
        };
        assert_eq!(merge.clusters(), (Some(5), Some(9)));
        let op = TraceData::OpPlanned {
            canon: 0,
            join: false,
            node: 3,
        };
        assert_eq!(op.clusters(), (None, None));
    }
}
