//! The step loop: drive churn, apply operations, audit invariants.

use crate::metrics::TimeSeries;
use now_adversary::{Action, Adversary};
use now_core::{NowSystem, SystemAudit};
use now_net::{ClusterId, DetRng};

/// What went wrong at a time step (Theorem 3 says: nothing, whp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Some cluster lost the strict > 2/3-honest invariant (the binding
    /// target in `SecurityMode::Plain`).
    NotTwoThirdsHonest,
    /// Some cluster lost the honest-strict-majority invariant (the
    /// binding target in `SecurityMode::Authenticated` — Remark 1).
    NotMajorityHonest,
    /// Some cluster reached the mode's `randNum`-compromise threshold
    /// (1/3 Byzantine in Plain, 1/2 in Authenticated).
    RandNumCompromised,
    /// Some cluster became forgeable (> 1/2 Byzantine).
    Forgeable,
    /// Some cluster size left the `[k·logN/l, l·k·logN]` band.
    SizeBounds,
}

impl ViolationKind {
    /// Stable snake_case tag of the kind, used as the flight recorder's
    /// `violation` event payload and the trace-dump `kind` field.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::NotTwoThirdsHonest => "not_two_thirds_honest",
            ViolationKind::NotMajorityHonest => "not_majority_honest",
            ViolationKind::RandNumCompromised => "rand_num_compromised",
            ViolationKind::Forgeable => "forgeable",
            ViolationKind::SizeBounds => "size_bounds",
        }
    }

    /// Whether this violation kind is binding for the given substrate
    /// mode. `NotTwoThirdsHonest` is informational in Authenticated
    /// deployments (τ may legitimately exceed 1/3 there);
    /// `NotMajorityHonest` is implied by `NotTwoThirdsHonest` in Plain
    /// deployments and is reported redundantly.
    pub fn binds_in(self, mode: now_core::SecurityMode) -> bool {
        match (self, mode) {
            (ViolationKind::NotTwoThirdsHonest, now_core::SecurityMode::Plain) => true,
            (ViolationKind::NotTwoThirdsHonest, now_core::SecurityMode::Authenticated) => false,
            (ViolationKind::NotMajorityHonest, _) => true,
            (ViolationKind::RandNumCompromised, _) => true,
            (ViolationKind::Forgeable, _) => true,
            (ViolationKind::SizeBounds, _) => true,
        }
    }
}

/// A recorded invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Time step at which the audit caught it.
    pub step: u64,
    /// Which invariant failed.
    pub kind: ViolationKind,
    /// The worst cluster at that moment, if identifiable.
    pub cluster: Option<ClusterId>,
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of time steps (external operations) to execute.
    pub steps: u64,
    /// Audit cadence (1 = every step; larger values trade coverage for
    /// speed on very long runs).
    pub audit_every: u64,
    /// Seed for the churn driver's randomness.
    pub seed: u64,
}

impl RunConfig {
    /// `steps` steps, audited every step, seed 0.
    pub fn for_steps(steps: u64) -> Self {
        RunConfig {
            steps,
            audit_every: 1,
            seed: 0,
        }
    }
}

/// Everything an experiment needs from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Churn driver name.
    pub adversary: String,
    /// Steps actually executed.
    pub steps: u64,
    /// Joins / leaves / idles performed.
    pub joins: u64,
    /// Leaves performed.
    pub leaves: u64,
    /// Idle steps.
    pub idles: u64,
    /// Worst per-cluster Byzantine fraction over time.
    pub worst_byz_fraction: TimeSeries,
    /// Population over time.
    pub population: TimeSeries,
    /// Cluster count over time.
    pub cluster_count: TimeSeries,
    /// All invariant violations observed.
    pub violations: Vec<Violation>,
    /// Audit at the final step.
    pub final_audit: SystemAudit,
    /// Highest worst-cluster Byzantine fraction ever observed.
    pub peak_byz_fraction: f64,
}

impl RunReport {
    /// True if the headline invariant held at every audited step.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of a given kind.
    pub fn count(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// Number of violations that are *binding* for the given substrate
    /// mode (see [`ViolationKind::binds_in`]). An Authenticated run at
    /// τ > 1/3 legitimately trips `NotTwoThirdsHonest`; this counter
    /// ignores it there.
    pub fn binding_violations(&self, mode: now_core::SecurityMode) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind.binds_in(mode))
            .count()
    }
}

/// Translates one audit snapshot into violation records (shared by the
/// serial and batched runners).
pub(crate) fn record_violations(audit: &SystemAudit, out: &mut Vec<Violation>) {
    let step = audit.time_step;
    if audit.clusters_not_two_thirds_honest > 0 {
        out.push(Violation {
            step,
            kind: ViolationKind::NotTwoThirdsHonest,
            cluster: audit.worst_cluster,
        });
    }
    if audit.clusters_not_majority_honest > 0 {
        out.push(Violation {
            step,
            kind: ViolationKind::NotMajorityHonest,
            cluster: audit.worst_cluster,
        });
    }
    if audit.clusters_rand_num_compromised > 0 {
        out.push(Violation {
            step,
            kind: ViolationKind::RandNumCompromised,
            cluster: audit.worst_cluster,
        });
    }
    if audit.clusters_forgeable > 0 {
        out.push(Violation {
            step,
            kind: ViolationKind::Forgeable,
            cluster: audit.worst_cluster,
        });
    }
    if !audit.size_bounds_ok {
        out.push(Violation {
            step,
            kind: ViolationKind::SizeBounds,
            cluster: None,
        });
    }
}

/// Runs `config.steps` time steps of `adversary`-driven churn on `sys`,
/// auditing after every `config.audit_every`-th step.
///
/// Leaves refused by the population floor and joins into vanished
/// contact clusters degrade to idle steps (recorded as such), so a
/// mis-calibrated churn schedule cannot panic the run.
pub fn run(sys: &mut NowSystem, adversary: &mut dyn Adversary, config: RunConfig) -> RunReport {
    let mut rng = DetRng::new(config.seed);
    let mut report = RunReport {
        adversary: adversary.name().to_string(),
        steps: 0,
        joins: 0,
        leaves: 0,
        idles: 0,
        worst_byz_fraction: TimeSeries::new("worst_byz_fraction"),
        population: TimeSeries::new("population"),
        cluster_count: TimeSeries::new("cluster_count"),
        violations: Vec::new(),
        final_audit: sys.audit(),
        peak_byz_fraction: 0.0,
    };
    record_violations(&report.final_audit, &mut report.violations);
    report.peak_byz_fraction = report.final_audit.worst_byz_fraction;

    for step in 0..config.steps {
        match adversary.decide(sys, &mut rng) {
            Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => {
                        sys.join_via(c, honest);
                    }
                    Some(_) | None => {
                        sys.join(honest);
                    }
                }
                report.joins += 1;
            }
            Action::Leave { node } => match sys.leave(node) {
                Ok(()) => report.leaves += 1,
                Err(_) => report.idles += 1,
            },
            Action::Idle => report.idles += 1,
        }
        report.steps += 1;

        if config.audit_every > 0 && step % config.audit_every == 0 {
            let audit = sys.audit();
            report
                .worst_byz_fraction
                .push(audit.time_step, audit.worst_byz_fraction);
            report
                .population
                .push(audit.time_step, audit.population as f64);
            report
                .cluster_count
                .push(audit.time_step, audit.cluster_count as f64);
            report.peak_byz_fraction = report.peak_byz_fraction.max(audit.worst_byz_fraction);
            record_violations(&audit, &mut report.violations);
        }
    }
    report.final_audit = sys.audit();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_adversary::{Quiet, RandomChurn};
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn quiet_run_changes_nothing() {
        let mut sys = system(120, 0.1, 1);
        let before = sys.population();
        let report = run(&mut sys, &mut Quiet, RunConfig::for_steps(20));
        assert_eq!(report.idles, 20);
        assert_eq!(report.joins, 0);
        assert_eq!(sys.population(), before);
        assert!(report.clean());
        sys.check_consistency().unwrap();
    }

    #[test]
    fn random_churn_run_is_clean_at_low_tau() {
        // k = 4 (clusters of ~40): the Chernoff tail to the 1/3
        // threshold at τ = 0.1 is negligible — the k-dependence of
        // Lemma 1. (At k = 2 occasional threshold crossings are
        // *expected*; experiment X-T3 measures that trade-off.)
        let params = NowParams::new(1 << 10, 4, 1.5, 0.30, 0.05).unwrap();
        let mut sys = NowSystem::init_fast(params, 240, 0.1, 2);
        let mut adv = RandomChurn::balanced(0.1);
        let report = run(
            &mut sys,
            &mut adv,
            RunConfig {
                steps: 150,
                audit_every: 1,
                seed: 7,
            },
        );
        assert_eq!(report.steps, 150);
        assert!(report.joins > 30);
        assert!(report.leaves > 30);
        assert!(
            report.clean(),
            "violations at τ=0.1: {:?}",
            report.violations
        );
        assert!(report.peak_byz_fraction < 1.0 / 3.0);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn series_are_recorded_per_step() {
        let mut sys = system(150, 0.1, 3);
        let mut adv = RandomChurn::balanced(0.1);
        let report = run(
            &mut sys,
            &mut adv,
            RunConfig {
                steps: 50,
                audit_every: 1,
                seed: 8,
            },
        );
        assert_eq!(report.worst_byz_fraction.len(), 50);
        assert_eq!(report.population.len(), 50);
        assert_eq!(report.cluster_count.len(), 50);
    }

    #[test]
    fn audit_cadence_thins_series() {
        let mut sys = system(150, 0.1, 4);
        let mut adv = RandomChurn::balanced(0.1);
        let report = run(
            &mut sys,
            &mut adv,
            RunConfig {
                steps: 50,
                audit_every: 10,
                seed: 9,
            },
        );
        assert_eq!(report.worst_byz_fraction.len(), 5);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let mut sys = system(150, 0.1, 5);
            let mut adv = RandomChurn::balanced(0.1);
            let r = run(
                &mut sys,
                &mut adv,
                RunConfig {
                    steps: 60,
                    audit_every: 1,
                    seed: 10,
                },
            );
            (
                r.joins,
                r.leaves,
                sys.population(),
                r.peak_byz_fraction.to_bits(),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn violation_counting_api() {
        let report = RunReport {
            adversary: "x".into(),
            steps: 0,
            joins: 0,
            leaves: 0,
            idles: 0,
            worst_byz_fraction: TimeSeries::new("w"),
            population: TimeSeries::new("p"),
            cluster_count: TimeSeries::new("c"),
            violations: vec![
                Violation {
                    step: 1,
                    kind: ViolationKind::SizeBounds,
                    cluster: None,
                },
                Violation {
                    step: 2,
                    kind: ViolationKind::SizeBounds,
                    cluster: None,
                },
            ],
            final_audit: system(50, 0.0, 6).audit(),
            peak_byz_fraction: 0.0,
        };
        assert!(!report.clean());
        assert_eq!(report.count(ViolationKind::SizeBounds), 2);
        assert_eq!(report.count(ViolationKind::Forgeable), 0);
    }
}
