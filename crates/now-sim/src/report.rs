//! Markdown tables for experiment write-ups.

use std::fmt::Write as _;

/// A markdown table builder used by the experiment binaries to emit the
/// rows recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MdTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MdTable {
    /// A table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        MdTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "ragged markdown row");
        self.rows.push(row);
        self
    }

    /// Renders GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with 3 significant-ish decimals for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = MdTable::new(["n", "cost"]);
        t.row(["10", "100"]);
        t.row(["20", "400"]);
        let md = t.render();
        assert!(md.starts_with("| n | cost |\n|---|---|\n"));
        assert!(md.contains("| 10 | 100 |"));
        assert!(md.contains("| 20 | 400 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = MdTable::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234"); // round-half-to-even
        assert_eq!(fmt_f(12.345), "12.35");
        assert_eq!(fmt_f(0.01234), "0.0123");
    }
}
