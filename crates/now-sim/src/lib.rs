//! Simulation harness for NOW experiments.
//!
//! Ties a [`now_core::NowSystem`] to a churn driver
//! ([`now_adversary::Adversary`]) and runs polynomially long operation
//! sequences while auditing the paper's invariants after every step:
//!
//! * [`runner`] — the step loop, violation tracking, and time series
//!   collection ([`RunReport`]).
//! * [`batch_run`] — the batched variant (several parallel join/leave
//!   operations per time step; the paper's §2 footnote), reporting the
//!   serial-vs-parallel round complexity.
//! * [`churn`] — environmental churn schedules, including the headline
//!   *polynomial size variation* driver ([`Sawtooth`]) that swings the
//!   population between `√N` and `N`.
//! * [`metrics`] — time series, summaries, and CSV emission (hand-rolled;
//!   no serde dependency).
//! * [`report`] — markdown tables for `EXPERIMENTS.md`.
//! * [`baselines`] — the comparison systems: no-shuffle static
//!   clustering (the §3.3 attack victim) and the naive
//!   single-cluster/full-mesh cost formulas of §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod baselines;
pub mod batch_run;
pub mod churn;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;

#[allow(deprecated)]
pub use batch_run::{run_batched, run_batched_until, run_batched_until_in, run_batched_with};
pub use batch_run::{BatchDriver, BatchExec, BatchRandomChurn, BatchRun, BatchRunReport};
pub use churn::{BatchSawtooth, GrowthPhase, Sawtooth, ShrinkPhase};
pub use metrics::{CsvTable, Summary, TimeSeries};
pub use report::MdTable;
pub use runner::{run, RunConfig, RunReport, Violation, ViolationKind};
pub use scenario::{ChurnStyle, Scenario};
