//! Environmental churn schedules.
//!
//! The paper's headline is tolerance of **polynomial size variation**:
//! the population may roam anywhere in `[√N, N]`. These drivers produce
//! exactly that motion; they implement [`Adversary`] so the runner
//! treats environmental churn and attacks uniformly (arrivals are still
//! corrupted up to the adversary's budget — churn and corruption
//! coexist in the model).

use crate::batch_run::BatchDriver;
use now_adversary::{Action, Adversary, CorruptionBudget};
use now_core::{JoinSpec, NowSystem};
use now_net::{DetRng, NodeId};
use rand::Rng;

/// Joins until the population reaches `target`, then idles.
#[derive(Debug, Clone, Copy)]
pub struct GrowthPhase {
    /// Population to reach.
    pub target: u64,
    /// Corruption budget for arrivals.
    pub budget: CorruptionBudget,
}

impl GrowthPhase {
    /// Grow to `target` with corruption fraction `tau`.
    pub fn new(target: u64, tau: f64) -> Self {
        GrowthPhase {
            target,
            budget: CorruptionBudget::new(tau),
        }
    }
}

impl Adversary for GrowthPhase {
    fn decide(&mut self, sys: &NowSystem, _rng: &mut DetRng) -> Action {
        if sys.population() >= self.target {
            Action::Idle
        } else {
            Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            }
        }
    }

    fn name(&self) -> &'static str {
        "growth-phase"
    }
}

/// Uniformly random nodes leave until the population drops to `target`,
/// then idles.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkPhase {
    /// Population to reach.
    pub target: u64,
}

impl ShrinkPhase {
    /// Shrink to `target`.
    pub fn new(target: u64) -> Self {
        ShrinkPhase { target }
    }
}

impl Adversary for ShrinkPhase {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if sys.population() <= self.target {
            Action::Idle
        } else {
            let nodes = sys.node_ids();
            Action::Leave {
                // INVARIANT: population floor keeps the id list non-empty;
                // the draw range is its exact length.
                node: nodes[rng.gen_range(0..nodes.len())],
            }
        }
    }

    fn name(&self) -> &'static str {
        "shrink-phase"
    }
}

/// The polynomial-variation driver: grow to `high`, shrink to `low`,
/// repeat — e.g. `low = √N`, `high` close to `N`. Every arrival is
/// corrupted while the budget allows, so the adversary's share tracks
/// its bound through both phases.
#[derive(Debug, Clone, Copy)]
pub struct Sawtooth {
    /// Lower turning point.
    pub low: u64,
    /// Upper turning point.
    pub high: u64,
    /// Corruption budget.
    pub budget: CorruptionBudget,
    growing: bool,
}

impl Sawtooth {
    /// Oscillates in `[low, high]` with corruption fraction `tau`,
    /// starting in the growth phase.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    pub fn new(low: u64, high: u64, tau: f64) -> Self {
        assert!(low < high, "sawtooth needs low < high, got [{low}, {high}]");
        Sawtooth {
            low,
            high,
            budget: CorruptionBudget::new(tau),
            growing: true,
        }
    }

    /// Whether the driver is currently in its growth phase.
    pub fn is_growing(&self) -> bool {
        self.growing
    }
}

impl Adversary for Sawtooth {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        let pop = sys.population();
        if self.growing && pop >= self.high {
            self.growing = false;
        } else if !self.growing && pop <= self.low {
            self.growing = true;
        }
        if self.growing {
            Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            }
        } else {
            let nodes = sys.node_ids();
            Action::Leave {
                // INVARIANT: population floor keeps the id list non-empty;
                // the draw range is its exact length.
                node: nodes[rng.gen_range(0..nodes.len())],
            }
        }
    }

    fn name(&self) -> &'static str {
        "sawtooth"
    }
}

/// The batched polynomial-variation driver: like [`Sawtooth`], but
/// emitting a whole batch of `width` operations per time step, so the
/// population swings between the turning points while every step
/// exercises the conflict-free wave scheduler of
/// [`now_core::NowSystem::step_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct BatchSawtooth {
    /// Lower turning point.
    pub low: u64,
    /// Upper turning point.
    pub high: u64,
    /// Operations per step.
    pub width: usize,
    /// Corruption budget for arrivals.
    pub budget: CorruptionBudget,
    growing: bool,
}

impl BatchSawtooth {
    /// Oscillates in `[low, high]` with `width` operations per batch and
    /// corruption fraction `tau`, starting in the growth phase.
    ///
    /// # Panics
    /// Panics if `low >= high` or `width == 0`.
    pub fn new(low: u64, high: u64, width: usize, tau: f64) -> Self {
        assert!(low < high, "sawtooth needs low < high, got [{low}, {high}]");
        assert!(width > 0, "batch width must be positive");
        BatchSawtooth {
            low,
            high,
            width,
            budget: CorruptionBudget::new(tau),
            growing: true,
        }
    }

    /// Whether the driver is currently in its growth phase.
    pub fn is_growing(&self) -> bool {
        self.growing
    }
}

impl BatchDriver for BatchSawtooth {
    fn decide_batch(&mut self, sys: &NowSystem, rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let pop = sys.population();
        if self.growing && pop >= self.high {
            self.growing = false;
        } else if !self.growing && pop <= self.low {
            self.growing = true;
        }
        if self.growing {
            // Project counts forward per slot (see BatchRandomChurn):
            // deciding all `width` arrivals against the pre-batch ratio
            // would overshoot τ by up to width − 1 corrupt arrivals.
            let mut population = sys.population();
            let mut byz = sys.byz_population();
            let joins = (0..self.width)
                .map(|_| {
                    let corrupt = self.budget.can_corrupt_at(population, byz);
                    population += 1;
                    if corrupt {
                        byz += 1;
                    }
                    JoinSpec::uniform(!corrupt)
                })
                .collect();
            (joins, Vec::new())
        } else {
            let nodes = sys.node_ids();
            let n_leaves = self.width.min(nodes.len());
            let picks = now_graph::sample::sample_distinct(nodes.len(), n_leaves, rng);
            (Vec::new(), picks.into_iter().map(|i| nodes[i]).collect())
        }
    }

    fn name(&self) -> &'static str {
        "batch-sawtooth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_run::BatchRun;
    use crate::runner::{run, RunConfig};
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn growth_reaches_target_then_idles() {
        let mut sys = system(60, 0.1, 1);
        let mut adv = GrowthPhase::new(100, 0.1);
        let report = run(&mut sys, &mut adv, RunConfig::for_steps(60));
        assert_eq!(sys.population(), 100);
        assert_eq!(report.joins, 40);
        assert_eq!(report.idles, 20);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn growth_corrupts_within_budget() {
        let mut sys = system(60, 0.0, 2);
        let mut adv = GrowthPhase::new(120, 0.2);
        run(&mut sys, &mut adv, RunConfig::for_steps(60));
        let frac = sys.byz_population() as f64 / sys.population() as f64;
        assert!(frac > 0.1 && frac <= 0.2, "byz fraction {frac}");
    }

    #[test]
    fn shrink_reaches_target() {
        let mut sys = system(150, 0.1, 3);
        let mut adv = ShrinkPhase::new(100);
        let report = run(&mut sys, &mut adv, RunConfig::for_steps(80));
        assert_eq!(sys.population(), 100);
        assert_eq!(report.leaves, 50);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn sawtooth_oscillates() {
        let mut sys = system(60, 0.1, 4);
        let mut adv = Sawtooth::new(50, 90, 0.1);
        let report = run(
            &mut sys,
            &mut adv,
            RunConfig {
                steps: 300,
                audit_every: 1,
                seed: 5,
            },
        );
        let pops: Vec<f64> = report.population.points().iter().map(|&(_, v)| v).collect();
        let max = pops.iter().cloned().fold(0.0f64, f64::max);
        let min = pops.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max >= 90.0, "never reached high: {max}");
        assert!(min <= 52.0, "never came back down: {min}");
        // Must have turned around at least twice.
        let mut turns = 0;
        let mut dir = 0i8;
        for w in pops.windows(2) {
            let d = (w[1] - w[0]).signum() as i8;
            if d != 0 && d != dir {
                if dir != 0 {
                    turns += 1;
                }
                dir = d;
            }
        }
        assert!(turns >= 2, "only {turns} turns");
        sys.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn sawtooth_rejects_bad_band() {
        let _ = Sawtooth::new(100, 100, 0.1);
    }

    #[test]
    fn batch_sawtooth_oscillates_in_batches() {
        let mut sys = system(80, 0.1, 6);
        let mut driver = BatchSawtooth::new(60, 140, 5, 0.1);
        assert!(driver.is_growing());
        let report = BatchRun::new().run(&mut sys, &mut driver, 60, 7);
        assert_eq!(report.steps, 60);
        let pops = report.population.summary();
        assert!(pops.max >= 140.0, "never reached high: {}", pops.max);
        assert!(pops.min <= 65.0, "never came back down: {}", pops.min);
        assert!(report.waves > 0, "the scheduler ran");
        sys.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn batch_sawtooth_rejects_zero_width() {
        let _ = BatchSawtooth::new(10, 20, 0, 0.1);
    }
}
