//! Baselines the paper argues against.
//!
//! * **No-shuffle static clustering** — clusters without the `exchange`
//!   countermeasure. §3.3: "the adversary chooses a specific cluster and
//!   keeps adding and removing the Byzantine nodes until they fall into
//!   that cluster" — experiment X-JLA shows this baseline losing a
//!   cluster while NOW holds.
//! * **Single-cluster / full-mesh costs** — §1 motivates clustering by
//!   the cost of treating all `n` processes as one reliable unit; §6
//!   quantifies: broadcast `O(n²)` naive vs `Õ(n)` clustered, sampling
//!   `polylog(n)` per draw.

use now_core::{NowParams, NowSystem};

/// Parameters identical to `params` but with `exchange` shuffling
/// disabled — the static-clustering baseline of §3.3.
pub fn no_shuffle_params(params: NowParams) -> NowParams {
    params.with_shuffle(false)
}

/// Builds the no-shuffle baseline system (same shape as
/// [`NowSystem::init_fast`]).
pub fn no_shuffle_system(params: NowParams, n0: usize, tau: f64, seed: u64) -> NowSystem {
    NowSystem::init_fast(no_shuffle_params(params), n0, tau, seed)
}

/// Message cost of a naive full-mesh broadcast among `n` nodes: every
/// node forwards to every other (`n(n−1)` — the §6 `O(n²)` comparison
/// point).
pub fn naive_broadcast_cost(n: u64) -> u64 {
    n.saturating_mul(n.saturating_sub(1))
}

/// Message cost of one round of full-network Byzantine agreement run as
/// a single cluster (all-to-all): `n(n−1)` per round × `rounds` — the
/// §1 "single highly available process" cost the clustering removes.
pub fn single_cluster_round_cost(n: u64, rounds: u64) -> u64 {
    naive_broadcast_cost(n).saturating_mul(rounds)
}

/// Message cost of naive uniform sampling by flooding a query and
/// collecting all replies (`2n` per sample) — the §6 comparison for the
/// `polylog(n)` sampling service.
pub fn naive_sampling_cost(n: u64) -> u64 {
    2 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::CostKind;

    #[test]
    fn no_shuffle_system_skips_exchanges() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut sys = no_shuffle_system(params, 150, 0.1, 1);
        assert!(!sys.params().shuffle_enabled());
        sys.join(true);
        let node = sys.node_ids()[0];
        sys.leave(node).unwrap();
        assert_eq!(
            sys.ledger().stats(CostKind::Exchange).count,
            0,
            "baseline must never exchange"
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn no_shuffle_join_is_much_cheaper() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut now = NowSystem::init_fast(params, 200, 0.1, 2);
        let mut base = no_shuffle_system(params, 200, 0.1, 2);
        now.join(true);
        base.join(true);
        let now_cost = now.ledger().stats(CostKind::Join).total_messages;
        let base_cost = base.ledger().stats(CostKind::Join).total_messages;
        assert!(
            base_cost * 5 < now_cost,
            "shuffling is the dominant cost: {base_cost} vs {now_cost}"
        );
    }

    #[test]
    fn cost_formulas() {
        assert_eq!(naive_broadcast_cost(10), 90);
        assert_eq!(naive_broadcast_cost(0), 0);
        assert_eq!(single_cluster_round_cost(10, 3), 270);
        assert_eq!(naive_sampling_cost(100), 200);
    }
}
