//! Batched churn: several parallel joins/leaves per time step.
//!
//! The paper's footnote generalizes the one-operation-per-step model to
//! "several parallel join and leave operations". This module drives
//! [`now_core::NowSystem::step_batch`] — which schedules each batch
//! into conflict-free waves by cluster-footprint disjointness — with
//! batch-producing churn schedules, and reports the round-complexity
//! advantage of the scheduled execution (messages are identical; rounds
//! shrink from the batch sum to the per-wave maxima) together with the
//! wave-level metrics of the schedule. The [`BatchRun`] builder is the
//! single entry point; the engine — including the event-driven network
//! runtime of [`BatchExec::Event`] — is one knob on it.

use crate::metrics::TimeSeries;
use crate::runner::{record_violations, Violation};
use now_adversary::CorruptionBudget;
use now_core::{
    normalize_threads, BatchInput, EventNetConfig, ExecConfig, JoinSpec, NowSystem, SystemAudit,
    WavePool,
};
use now_net::{DetRng, NodeId};
use rand::Rng;

// The batch-driver trait lives in `now-adversary`, next to the serial
// `Adversary` trait it generalizes, so the attack drivers can implement
// it without a dependency cycle; re-exported here for continuity.
pub use now_adversary::BatchDriver;

/// Random batched churn: each step performs `Binomial(width, p_join)`
/// joins and the remainder as leaves of distinct uniformly random nodes.
#[derive(Debug, Clone, Copy)]
pub struct BatchRandomChurn {
    /// Operations per step.
    pub width: usize,
    /// Probability each of the `width` slots is a join.
    pub p_join: f64,
    /// Corruption budget for arrivals.
    pub budget: CorruptionBudget,
}

impl BatchRandomChurn {
    /// Balanced batched churn of the given width at corruption fraction
    /// `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn balanced(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchRandomChurn {
            width,
            p_join: 0.5,
            budget: CorruptionBudget::new(tau),
        }
    }
}

impl BatchDriver for BatchRandomChurn {
    fn decide_batch(&mut self, sys: &NowSystem, rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let mut joins = Vec::new();
        let mut n_leaves = 0usize;
        // Project the counts forward per slot: the whole batch is
        // decided before the system moves, so re-reading `sys` would let
        // every slot see the pre-batch ratio and overshoot τ.
        let mut pop = sys.population();
        let mut byz = sys.byz_population();
        for _ in 0..self.width {
            if rng.gen_bool(self.p_join.clamp(0.0, 1.0)) {
                let corrupt = self.budget.can_corrupt_at(pop, byz);
                joins.push(JoinSpec::uniform(!corrupt));
                pop += 1;
                if corrupt {
                    byz += 1;
                }
            } else {
                n_leaves += 1;
            }
        }
        let nodes = sys.node_ids();
        let n_leaves = n_leaves.min(nodes.len());
        let picks = now_graph::sample::sample_distinct(nodes.len(), n_leaves, rng);
        let leaves = picks.into_iter().map(|i| nodes[i]).collect();
        (joins, leaves)
    }

    fn name(&self) -> &'static str {
        "batch-random-churn"
    }
}

/// How a batched run executes each step's wave schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchExec {
    /// The PR 2 path: waves are scheduled but operations execute
    /// serially off the shared stream
    /// ([`now_core::ExecConfig::Serial`]).
    Scheduled,
    /// The threaded wave executor on a **run-scoped persistent
    /// [`WavePool`]** with this many worker threads: workers spawn once
    /// per run and every step's waves reuse them
    /// ([`now_core::ExecConfig::Pooled`]). Outcomes are bit-identical
    /// across thread counts; only the wall-clock changes.
    Threaded(usize),
    /// The legacy scoped executor ([`now_core::ExecConfig::Scoped`]):
    /// spawns fresh scoped workers for every wave of width ≥ 2.
    /// Bit-identical to [`BatchExec::Threaded`]; retained as the
    /// spawn-overhead reference for benches and the pooled-vs-scoped CI
    /// gate.
    ThreadedScoped(usize),
    /// The event-driven engine ([`now_core::ExecConfig::Event`]): each
    /// step's operations travel a seeded discrete-event network with
    /// the given per-link latency/jitter/loss/partition model and
    /// execute in delivery order; dropped messages become operations
    /// that never happened ([`BatchRunReport::dropped`]).
    Event(EventNetConfig),
}

impl BatchExec {
    /// The normalized worker-thread count of the execution mode
    /// (`None` for the serial scheduled path and for the event engine,
    /// which plans on the driving thread unless a pool is supplied);
    /// every threaded variant shares [`normalize_threads`]' `0 → 1`
    /// rule.
    pub fn threads(&self) -> Option<usize> {
        match *self {
            BatchExec::Scheduled | BatchExec::Event(_) => None,
            BatchExec::Threaded(t) | BatchExec::ThreadedScoped(t) => Some(normalize_threads(t)),
        }
    }
}

/// Report of one batched run ([`BatchRun`]).
#[derive(Debug, Clone)]
pub struct BatchRunReport {
    /// Driver name.
    pub driver: String,
    /// Worker threads used by the wave executor, `None` for the
    /// serial scheduled path.
    pub threads: Option<usize>,
    /// Time steps executed (each may contain many operations).
    pub steps: u64,
    /// Total joins admitted.
    pub joins: u64,
    /// Total leaves completed.
    pub leaves: u64,
    /// Departures rejected (floor / unknown).
    pub rejected: u64,
    /// Sum over steps of the serial round cost.
    pub rounds_serial: u64,
    /// Sum over steps of the scheduled parallel round cost (per-step
    /// sum of per-wave round maxima).
    pub rounds_parallel: u64,
    /// Total conflict-free waves scheduled across all steps.
    pub waves: u64,
    /// Width of the widest wave observed (number of operations running
    /// concurrently).
    pub max_wave_width: usize,
    /// Total round slack of the schedules: Σ over waves of
    /// `rounds_total − rounds_max`, the serial rounds the wave
    /// structure saved (surfaces [`now_core::WaveStats::rounds_total`]
    /// as an aggregate).
    pub wave_slack_rounds: u64,
    /// Operations whose triggering message the event network dropped
    /// across all steps (always zero outside [`BatchExec::Event`]).
    pub dropped: u64,
    /// Messages injected into the event network across all steps
    /// (always zero outside [`BatchExec::Event`]). Conservation holds
    /// per step and in aggregate: `sent == delivered + dropped`.
    pub sent: u64,
    /// Messages the event network delivered across all steps (always
    /// zero outside [`BatchExec::Event`]).
    pub delivered: u64,
    /// Wall-clock nanoseconds spent inside batch execution across all
    /// steps (host-dependent; excluded from determinism comparisons).
    pub wall_nanos: u64,
    /// Waves per step over time (1 point per step; lower = more
    /// parallelism for a fixed batch width).
    pub waves_per_step: TimeSeries,
    /// Population over time.
    pub population: TimeSeries,
    /// Worst per-cluster Byzantine fraction over time.
    pub worst_byz_fraction: TimeSeries,
    /// All invariant violations observed.
    pub violations: Vec<Violation>,
    /// Audit at the final step.
    pub final_audit: SystemAudit,
}

impl BatchRunReport {
    /// Round-complexity speedup of the scheduled parallel execution
    /// over serial execution. Degenerate runs are reported honestly: a
    /// run with serial rounds but no scheduled parallel rounds (e.g.
    /// every operation rejected) reports the serial count rather than
    /// pretending parity; 1.0 only when both sides are zero.
    pub fn parallel_speedup(&self) -> f64 {
        match (self.rounds_serial, self.rounds_parallel) {
            (0, 0) => 1.0,
            (serial, 0) => serial as f64,
            (serial, parallel) => serial as f64 / parallel as f64,
        }
    }

    /// Mean number of conflict-free waves a step's batch was scheduled
    /// into (0 for an empty run).
    pub fn mean_waves_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.waves as f64 / self.steps as f64
        }
    }

    /// True if no invariant violation was observed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations binding for the given mode (see
    /// [`ViolationKind::binds_in`]).
    pub fn binding_violations(&self, mode: now_core::SecurityMode) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind.binds_in(mode))
            .count()
    }
}

/// Boxed stop predicate of a [`BatchRun`]: observes the system and the
/// report-so-far after each step, returning `true` to end the run.
type StopFn<'p> = Box<dyn FnMut(&NowSystem, &BatchRunReport) -> bool + 'p>;

/// The batched runner, as a builder — **the** way to run batched churn.
///
/// A `BatchRun` describes *how* a batched run executes: the batch width
/// (consumed by [`crate::Scenario::run_batch`] when it builds the
/// driver), the execution engine, an optional caller-held [`WavePool`],
/// and an optional stop predicate. The *what* — system, driver, length,
/// seed — is supplied at [`BatchRun::run`] time (or by the scenario).
///
/// Every legacy entry point maps onto this builder:
/// `run_batched(sys, d, n, s)` is `BatchRun::new().run(sys, d, n, s)`,
/// `run_batched_with` adds `.exec(..)`, `run_batched_until` adds
/// `.until(..)`, and `run_batched_until_in` adds `.in_pool(..)`.
///
/// # Example
/// ```
/// use now_sim::{BatchExec, BatchRandomChurn, BatchRun};
/// use now_core::{NowParams, NowSystem};
///
/// let params = NowParams::for_capacity(1 << 10).unwrap();
/// let mut sys = NowSystem::init_fast(params, 200, 0.1, 1);
/// let mut driver = BatchRandomChurn::balanced(6, 0.1);
/// let report = BatchRun::new()
///     .exec(BatchExec::Threaded(2))
///     .until(|_, r| r.steps >= 5)
///     .run(&mut sys, &mut driver, 20, 2);
/// assert_eq!(report.steps, 5);
/// ```
pub struct BatchRun<'p> {
    width: usize,
    exec: BatchExec,
    pool: Option<&'p WavePool>,
    stop: Option<StopFn<'p>>,
    trace: Option<usize>,
    metrics: bool,
}

impl Default for BatchRun<'_> {
    fn default() -> Self {
        BatchRun::new()
    }
}

impl<'p> BatchRun<'p> {
    /// A run with the defaults: width 4, [`BatchExec::Scheduled`], no
    /// caller-held pool, no stop predicate.
    pub fn new() -> Self {
        BatchRun {
            width: 4,
            exec: BatchExec::Scheduled,
            pool: None,
            stop: None,
            trace: None,
            metrics: false,
        }
    }

    /// Sets the batch width (operations per step). Consumed by
    /// [`crate::Scenario::run_batch`] when it builds the churn driver;
    /// a driver passed directly to [`BatchRun::run`] carries its own
    /// width and ignores this knob.
    pub fn width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// The configured batch width.
    pub fn batch_width(&self) -> usize {
        self.width
    }

    /// The configured execution engine.
    pub fn exec_mode(&self) -> BatchExec {
        self.exec
    }

    /// Sets the execution engine.
    pub fn exec(mut self, exec: BatchExec) -> Self {
        self.exec = exec;
        self
    }

    /// Runs on a **caller-held** [`WavePool`]: the primitive for
    /// drivers of multiple runs (the campaign engine holds one pool for
    /// all of a campaign's phases, so successive phases reuse the same
    /// workers). Consulted by [`BatchExec::Threaded`] (instead of the
    /// run-scoped pool) and [`BatchExec::Event`] (wave planning moves
    /// onto the pool's workers).
    pub fn in_pool(mut self, pool: &'p WavePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Enables the system's flight recorder before the run starts,
    /// with a ring buffer of `capacity` events (see
    /// [`now_core::NowSystem::enable_tracing`]). Violations the run's
    /// audits observe are forwarded to the recorder, so the first one
    /// captures a causal-neighborhood dump. A recorder already enabled
    /// on the system is left as is.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = Some(capacity);
        self
    }

    /// Enables the system's metrics registry before the run starts
    /// (see [`now_core::NowSystem::enable_metrics`]). A registry
    /// already enabled on the system is left as is.
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Stops the run early: `stop` is checked before the first step and
    /// after every audited step — the primitive the campaign engine's
    /// population and first-violation triggers are built on. A
    /// condition already satisfied at entry yields a zero-step run; the
    /// `max_steps` given to [`BatchRun::run`] caps the run regardless.
    pub fn until(mut self, stop: impl FnMut(&NowSystem, &BatchRunReport) -> bool + 'p) -> Self {
        self.stop = Some(Box::new(stop));
        self
    }

    /// Runs at most `max_steps` batched time steps of `driver`-produced
    /// churn on `sys`, auditing after every step.
    pub fn run(
        self,
        sys: &mut NowSystem,
        driver: &mut dyn BatchDriver,
        max_steps: u64,
        seed: u64,
    ) -> BatchRunReport {
        let BatchRun {
            width: _,
            exec,
            pool,
            stop,
            trace,
            metrics,
        } = self;
        let mut stop = stop.unwrap_or_else(|| Box::new(|_: &NowSystem, _: &BatchRunReport| false));
        if let Some(capacity) = trace {
            if sys.flight_recorder().is_none() {
                sys.enable_tracing(capacity);
            }
        }
        if metrics && sys.metrics().is_none() {
            sys.enable_metrics();
        }

        // The run-scoped pool: one worker-spawn set for the whole run,
        // whatever the step count or wave structure. A caller-held pool
        // takes precedence.
        let scoped_pool = match (exec, pool) {
            (BatchExec::Threaded(t), None) => Some(WavePool::new(t)),
            _ => None,
        };
        let pool = pool.or(scoped_pool.as_ref());

        // One `ExecConfig` for the whole run — the per-step dispatch of
        // the legacy entry points collapsed into data.
        let exec_cfg = match (exec, pool) {
            (BatchExec::Scheduled, _) => ExecConfig::serial(),
            (BatchExec::Threaded(_), Some(p)) => ExecConfig::pooled(p),
            // Unreachable (the run-scoped pool above), kept total.
            (BatchExec::Threaded(t), None) => ExecConfig::threaded(t),
            (BatchExec::ThreadedScoped(t), _) => ExecConfig::scoped(t),
            (BatchExec::Event(net), Some(p)) => ExecConfig::event_in(net, p),
            (BatchExec::Event(net), None) => ExecConfig::event(net),
        };

        let mut rng = DetRng::new(seed);
        let mut report = BatchRunReport {
            driver: driver.name().to_string(),
            // A caller-held pool is what actually executes Threaded
            // steps, so its width is the honest record even if the exec
            // knob says otherwise (outcomes are identical either way).
            threads: match (exec, pool) {
                (BatchExec::Threaded(_), Some(pool)) => Some(pool.threads()),
                _ => exec.threads(),
            },
            steps: 0,
            joins: 0,
            leaves: 0,
            rejected: 0,
            rounds_serial: 0,
            rounds_parallel: 0,
            waves: 0,
            max_wave_width: 0,
            wave_slack_rounds: 0,
            dropped: 0,
            sent: 0,
            delivered: 0,
            wall_nanos: 0,
            waves_per_step: TimeSeries::new("waves_per_step"),
            population: TimeSeries::new("population"),
            worst_byz_fraction: TimeSeries::new("worst_byz_fraction"),
            violations: Vec::new(),
            final_audit: sys.audit(),
        };
        if stop(sys, &report) {
            return report;
        }
        for _ in 0..max_steps {
            let (joins, leaves) = driver.decide_batch(sys, &mut rng);
            let batch = sys.step_batch(&BatchInput::from_specs(&joins, &leaves), &exec_cfg);
            report.steps += 1;
            report.joins += batch.joined.len() as u64;
            report.leaves += batch.left.len() as u64;
            report.rejected += batch.rejected.len() as u64;
            report.rounds_serial += batch.cost.rounds;
            report.rounds_parallel += batch.rounds_parallel;
            report.waves += batch.wave_count() as u64;
            report.max_wave_width = report.max_wave_width.max(batch.max_wave_width());
            report.wave_slack_rounds += batch.wave_slack_rounds();
            report.dropped += batch.dropped;
            let step_delivered = batch.events.iter().filter(|e| e.delivered).count() as u64;
            report.delivered += step_delivered;
            report.sent += step_delivered + batch.dropped;
            report.wall_nanos += batch.wall_nanos;

            let audit = sys.audit();
            report
                .waves_per_step
                .push(audit.time_step, batch.wave_count() as f64);
            report
                .population
                .push(audit.time_step, audit.population as f64);
            report
                .worst_byz_fraction
                .push(audit.time_step, audit.worst_byz_fraction);
            let seen = report.violations.len();
            record_violations(&audit, &mut report.violations);
            // INVARIANT: `seen` is the pre-append length of this same
            // vec, so the tail slice is in bounds.
            for v in &report.violations[seen..] {
                sys.record_violation(v.kind.name(), v.cluster);
            }
            if stop(sys, &report) {
                break;
            }
        }
        report.final_audit = sys.audit();
        report
    }
}

/// Runs `steps` batched time steps of `driver`-produced churn through
/// the serial wave *scheduler*, auditing after every step.
#[deprecated(note = "use the `BatchRun` builder")]
pub fn run_batched(
    sys: &mut NowSystem,
    driver: &mut dyn BatchDriver,
    steps: u64,
    seed: u64,
) -> BatchRunReport {
    BatchRun::new().run(sys, driver, steps, seed)
}

/// Runs `steps` batched time steps of `driver`-produced churn with the
/// chosen execution engine, auditing after every step.
#[deprecated(note = "use the `BatchRun` builder with `.exec(..)`")]
pub fn run_batched_with(
    sys: &mut NowSystem,
    driver: &mut dyn BatchDriver,
    steps: u64,
    seed: u64,
    exec: BatchExec,
) -> BatchRunReport {
    BatchRun::new().exec(exec).run(sys, driver, steps, seed)
}

/// The phase-oriented batched runner with an early-stop predicate.
#[deprecated(note = "use the `BatchRun` builder with `.until(..)`")]
pub fn run_batched_until(
    sys: &mut NowSystem,
    driver: &mut dyn BatchDriver,
    max_steps: u64,
    seed: u64,
    exec: BatchExec,
    stop: impl FnMut(&NowSystem, &BatchRunReport) -> bool,
) -> BatchRunReport {
    BatchRun::new()
        .exec(exec)
        .until(stop)
        .run(sys, driver, max_steps, seed)
}

/// The phase-oriented batched runner against a caller-held pool.
#[deprecated(note = "use the `BatchRun` builder with `.in_pool(..)`")]
pub fn run_batched_until_in(
    sys: &mut NowSystem,
    driver: &mut dyn BatchDriver,
    max_steps: u64,
    seed: u64,
    exec: BatchExec,
    pool: Option<&WavePool>,
    stop: impl FnMut(&NowSystem, &BatchRunReport) -> bool,
) -> BatchRunReport {
    let mut run = BatchRun::new().exec(exec).until(stop);
    if let Some(pool) = pool {
        run = run.in_pool(pool);
    }
    run.run(sys, driver, max_steps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn batched_run_executes_many_ops_per_step() {
        let mut sys = system(200, 0.1, 1);
        let mut driver = BatchRandomChurn::balanced(6, 0.1);
        let report = BatchRun::new().run(&mut sys, &mut driver, 20, 2);
        assert_eq!(report.steps, 20);
        assert!(report.joins + report.leaves > 60, "width 6 × 20 steps");
        assert_eq!(sys.time_step(), 20, "one time step per batch");
        sys.check_consistency().unwrap();
    }

    /// A system whose overlay is sparse relative to its cluster count
    /// (capacity 16 ⇒ overlay target degree 5, 64 clusters), so batches
    /// of random operations contain genuinely disjoint footprints.
    fn sparse_system(seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(16).unwrap();
        NowSystem::init_fast(params, 64 * params.target_cluster_size(), 0.1, seed)
    }

    #[test]
    fn parallel_rounds_beat_serial_on_sparse_overlays() {
        let mut sys = sparse_system(3);
        let mut driver = BatchRandomChurn::balanced(8, 0.1);
        let report = BatchRun::new().run(&mut sys, &mut driver, 10, 4);
        assert!(
            report.parallel_speedup() > 1.2,
            "8-wide batches on a 64-cluster sparse overlay should save \
             rounds: ×{:.2} ({} waves over {} steps)",
            report.parallel_speedup(),
            report.waves,
            report.steps
        );
        assert!(report.rounds_parallel < report.rounds_serial);
        // The schedule found real concurrency: strictly fewer waves than
        // operations, and some wave ran ≥ 2 ops side by side.
        assert!(report.waves < report.joins + report.leaves);
        assert!(report.max_wave_width >= 2);
        assert!(report.mean_waves_per_step() >= 1.0);
        assert_eq!(report.waves_per_step.len() as u64, report.steps);
    }

    #[test]
    fn batched_churn_keeps_invariants_at_low_tau() {
        let params = NowParams::new(1 << 10, 4, 1.5, 0.30, 0.05).unwrap();
        let mut sys = NowSystem::init_fast(params, 240, 0.1, 5);
        let mut driver = BatchRandomChurn::balanced(4, 0.1);
        let report = BatchRun::new().run(&mut sys, &mut driver, 40, 6);
        assert!(
            report.clean(),
            "violations under batching: {:?}",
            report.violations
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn batch_corruption_respects_projected_budget() {
        // Regression: a pure-join batch decided against a stale system
        // must not overshoot τ by width − 1 corrupt arrivals.
        let params = now_core::NowParams::for_capacity(1 << 10).unwrap();
        let sys = NowSystem::init_fast(params, 100, 0.10, 11); // 10 byz
        let tau = 0.11;
        let mut driver = BatchRandomChurn {
            width: 8,
            p_join: 1.0,
            budget: CorruptionBudget::new(tau),
        };
        let mut rng = DetRng::new(1);
        let (joins, leaves) = driver.decide_batch(&sys, &mut rng);
        assert!(leaves.is_empty());
        assert_eq!(joins.len(), 8);
        let corrupted = joins.iter().filter(|j| !j.honest).count() as u64;
        // Largest j with (10 + j) / (100 + j) ≤ 0.11 is j = 1.
        assert_eq!(corrupted, 1, "projected budget admits exactly one");
        let frac = (sys.byz_population() + corrupted) as f64 / (sys.population() + 8) as f64;
        assert!(frac <= tau, "batch overshot τ: {frac}");
    }

    #[test]
    fn threaded_runs_are_thread_count_invariant() {
        let go = |threads: usize| {
            let mut sys = sparse_system(13);
            let mut driver = BatchRandomChurn::balanced(6, 0.1);
            let r = BatchRun::new().exec(BatchExec::Threaded(threads)).run(
                &mut sys,
                &mut driver,
                12,
                14,
            );
            sys.check_consistency().unwrap();
            (
                r.joins,
                r.leaves,
                r.rejected,
                r.rounds_serial,
                r.rounds_parallel,
                r.waves,
                r.max_wave_width,
                r.wave_slack_rounds,
                sys.population(),
                sys.node_ids(),
            )
        };
        let serial = go(1);
        assert_eq!(serial, go(2));
        assert_eq!(serial, go(8));
    }

    #[test]
    fn threaded_report_carries_thread_and_timing_metadata() {
        let mut sys = sparse_system(15);
        let mut driver = BatchRandomChurn::balanced(6, 0.1);
        let report = BatchRun::new()
            .exec(BatchExec::Threaded(4))
            .run(&mut sys, &mut driver, 8, 16);
        assert_eq!(report.threads, Some(4));
        assert!(report.wall_nanos > 0, "executed batches take time");
        assert!(
            report.wave_slack_rounds > 0,
            "sparse batches should schedule real concurrency"
        );
        // Slack is consistent with the serial-vs-parallel gap whenever
        // maintenance rounds are charged outside the schedule.
        assert!(report.wave_slack_rounds <= report.rounds_serial - report.rounds_parallel);

        let mut legacy_sys = sparse_system(15);
        let mut legacy_driver = BatchRandomChurn::balanced(6, 0.1);
        let legacy = BatchRun::new().run(&mut legacy_sys, &mut legacy_driver, 8, 16);
        assert_eq!(legacy.threads, None);
    }

    #[test]
    fn zero_threads_normalizes_like_one_across_exec_modes() {
        // Regression for the shared `normalize_threads` rule: the sim
        // layer must treat `Threaded(0)` exactly like `Threaded(1)` —
        // in the report metadata *and* in the outcomes — for the pooled
        // and the scoped engine alike.
        assert_eq!(BatchExec::Threaded(0).threads(), Some(1));
        assert_eq!(BatchExec::ThreadedScoped(0).threads(), Some(1));
        assert_eq!(BatchExec::Scheduled.threads(), None);
        let go = |exec: BatchExec| {
            let mut sys = sparse_system(19);
            let mut driver = BatchRandomChurn::balanced(5, 0.1);
            let r = BatchRun::new().exec(exec).run(&mut sys, &mut driver, 6, 20);
            (
                r.threads,
                r.joins,
                r.leaves,
                r.rounds_parallel,
                sys.node_ids(),
            )
        };
        assert_eq!(go(BatchExec::Threaded(0)), go(BatchExec::Threaded(1)));
        assert_eq!(
            go(BatchExec::ThreadedScoped(0)),
            go(BatchExec::ThreadedScoped(1))
        );
    }

    #[test]
    fn pooled_and_scoped_exec_agree_bitwise() {
        let go = |exec: BatchExec| {
            let mut sys = sparse_system(23);
            let mut driver = BatchRandomChurn::balanced(7, 0.1);
            let r = BatchRun::new()
                .exec(exec)
                .run(&mut sys, &mut driver, 10, 24);
            sys.check_consistency().unwrap();
            (
                r.joins,
                r.leaves,
                r.rejected,
                r.rounds_serial,
                r.rounds_parallel,
                r.waves,
                r.max_wave_width,
                r.wave_slack_rounds,
                sys.population(),
                sys.node_ids(),
            )
        };
        let pooled = go(BatchExec::Threaded(4));
        assert_eq!(
            pooled,
            go(BatchExec::ThreadedScoped(4)),
            "pooled vs scoped diverged"
        );
        assert_eq!(pooled, go(BatchExec::Threaded(1)), "pooled vs serial");
    }

    #[test]
    fn caller_held_pool_matches_run_scoped_pool() {
        let go = |pool: Option<&now_core::WavePool>| {
            let mut sys = sparse_system(27);
            let mut driver = BatchRandomChurn::balanced(6, 0.1);
            let mut run = BatchRun::new().exec(BatchExec::Threaded(4));
            if let Some(pool) = pool {
                run = run.in_pool(pool);
            }
            let r = run.run(&mut sys, &mut driver, 8, 28);
            (r.joins, r.leaves, r.rounds_parallel, sys.node_ids())
        };
        let shared = now_core::WavePool::new(4);
        let with_shared = go(Some(&shared));
        // The same shared pool again (reuse across runs)...
        assert_eq!(with_shared, go(Some(&shared)));
        // ...and the per-batch fallback.
        assert_eq!(with_shared, go(None));
    }

    #[test]
    fn batched_runs_are_deterministic() {
        let go = || {
            let mut sys = system(200, 0.1, 7);
            let mut driver = BatchRandomChurn::balanced(5, 0.1);
            let r = BatchRun::new().run(&mut sys, &mut driver, 25, 8);
            (r.joins, r.leaves, r.rounds_parallel, sys.population())
        };
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn zero_width_rejected() {
        let _ = BatchRandomChurn::balanced(0, 0.1);
    }

    #[test]
    fn event_exec_runs_and_counts_drops() {
        let net = EventNetConfig::ideal()
            .with_latency(2)
            .with_jitter(3)
            .with_drop(0.3);
        let mut sys = system(200, 0.1, 31);
        let mut driver = BatchRandomChurn::balanced(6, 0.1);
        let report = BatchRun::new()
            .exec(BatchExec::Event(net))
            .run(&mut sys, &mut driver, 15, 32);
        assert_eq!(report.steps, 15);
        assert_eq!(report.threads, None, "event runs carry no thread count");
        assert!(report.dropped > 0, "30% loss over 15 steps must drop joins");
        sys.check_consistency().unwrap();

        // Same run on a caller-held pool: identical outcomes, pool width
        // recorded nowhere (planning threads never change results).
        let pool = WavePool::new(4);
        let mut pooled_sys = system(200, 0.1, 31);
        let mut pooled_driver = BatchRandomChurn::balanced(6, 0.1);
        let pooled = BatchRun::new()
            .exec(BatchExec::Event(net))
            .in_pool(&pool)
            .run(&mut pooled_sys, &mut pooled_driver, 15, 32);
        assert_eq!(pooled.dropped, report.dropped);
        assert_eq!(pooled.joins, report.joins);
        assert_eq!(pooled.leaves, report.leaves);
        assert_eq!(pooled_sys.node_ids(), sys.node_ids());
    }

    #[test]
    fn non_event_runs_report_zero_dropped() {
        let mut sys = system(200, 0.1, 35);
        let mut driver = BatchRandomChurn::balanced(5, 0.1);
        let report = BatchRun::new().run(&mut sys, &mut driver, 10, 36);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_entry_points_match_builder() {
        let go = |legacy: bool| {
            let mut sys = sparse_system(41);
            let mut driver = BatchRandomChurn::balanced(6, 0.1);
            let r = if legacy {
                run_batched_with(&mut sys, &mut driver, 10, 42, BatchExec::Threaded(3))
            } else {
                BatchRun::new()
                    .exec(BatchExec::Threaded(3))
                    .run(&mut sys, &mut driver, 10, 42)
            };
            (
                r.joins,
                r.leaves,
                r.rejected,
                r.rounds_serial,
                r.rounds_parallel,
                r.waves,
                r.threads,
                sys.node_ids(),
            )
        };
        assert_eq!(go(true), go(false));
    }
}
