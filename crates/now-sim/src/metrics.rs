//! Time series, summaries, and CSV output.

use std::fmt::Write as _;

/// A named series of `(time_step, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Series name (CSV column header).
    pub name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point (time steps should be non-decreasing).
    pub fn push(&mut self, step: u64, value: f64) {
        self.points.push((step, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics over the values.
    pub fn summary(&self) -> Summary {
        Summary::of(self.points.iter().map(|&(_, v)| v))
    }

    /// The value at the largest time step (None if empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Min/max/mean/count over a value stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Mean (0 when empty).
    pub mean: f64,
}

impl Summary {
    /// Computes a summary from an iterator of values.
    pub fn of(values: impl Iterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for v in values {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if count == 0 {
            Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
            }
        } else {
            Summary {
                count,
                min,
                max,
                mean: sum / count as f64,
            }
        }
    }
}

/// Quantile of a sample (linear interpolation on the sorted values).
/// Returns 0 for an empty sample; `q` is clamped to `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A rectangular table with a header row, rendered as CSV.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_summary() {
        let mut s = TimeSeries::new("x");
        for (i, v) in [1.0, 3.0, 2.0].into_iter().enumerate() {
            s.push(i as u64, v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 3.0);
        assert!((sum.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.last(), Some(2.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.summary().count, 0);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&v, 2.0), 4.0, "clamped");
    }

    #[test]
    fn csv_renders_and_escapes() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["1", "plain"]);
        t.row(["2", "with,comma"]);
        t.row(["3", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn csv_rejects_ragged_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_writes_to_disk() {
        let mut t = CsvTable::new(["x"]);
        t.row(["1"]);
        let dir = std::env::temp_dir().join("now_sim_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "x\n1\n");
    }
}
