//! One-call scenario builder: the ergonomic front door for experiments.
//!
//! A [`Scenario`] bundles everything a run needs — capacity, security
//! parameter, corruption rate, churn style, length, seed — builds the
//! system, runs it, and returns the [`RunReport`] together with the
//! final system for inspection. Every experiment binary and several
//! integration tests are expressible as one `Scenario` call.

use crate::batch_run::{BatchDriver, BatchRandomChurn, BatchRun, BatchRunReport};
use crate::churn::{BatchSawtooth, Sawtooth};
use crate::runner::{run, RunConfig, RunReport};
use now_adversary::{
    Adversary, BatchBurstChurn, BatchForcedLeave, BatchJoinLeave, BatchMergeForcing,
    BatchSplitForcing, BurstChurn, ClusterPick, ForcedLeaveAttack, JoinLeaveAttack, MergeForcing,
    Quiet, QuietBatches, RandomChurn, SplitForcing,
};
use now_core::{NowError, NowParams, NowSystem};

/// Which churn driver a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnStyle {
    /// No churn (control runs).
    Quiet,
    /// Balanced random joins/leaves.
    Balanced,
    /// Population sawtooth between the two bounds.
    Sawtooth {
        /// Lower turning point.
        low: u64,
        /// Upper turning point.
        high: u64,
    },
    /// §3.3 join–leave attack on the first cluster.
    JoinLeaveAttack,
    /// DoS forced-leave attack on the first cluster.
    ForcedLeaveAttack,
    /// Flood the first cluster with arrivals to force repeated splits.
    SplitForcing,
    /// Drain the first cluster to force repeated merges.
    MergeForcing,
    /// Alternating join/leave bursts of the given length.
    Burst {
        /// Operations per burst.
        burst: u64,
    },
}

/// A declarative experiment configuration.
///
/// # Example
/// ```
/// use now_sim::{Scenario, ChurnStyle};
///
/// let (report, sys) = Scenario::new(1 << 10)
///     .k(3)
///     .tau(0.10)
///     .initial_population(150)
///     .churn(ChurnStyle::Balanced)
///     .steps(40)
///     .seed(7)
///     .run()?;
/// assert_eq!(report.steps, 40);
/// assert!(sys.check_consistency().is_ok());
/// # Ok::<(), now_core::NowError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    capacity: u64,
    k: usize,
    l: f64,
    tau: f64,
    epsilon: f64,
    initial_population: usize,
    churn: ChurnStyle,
    steps: u64,
    audit_every: u64,
    seed: u64,
    shuffle: bool,
    authenticated: bool,
    exchange_cap: Option<usize>,
}

impl Scenario {
    /// A scenario for capacity `N` with the standard defaults
    /// (`k = 2`, `l = 1.5`, `τ = 0.10`, `ε = 0.05`, 10 clusters' worth
    /// of initial nodes, balanced churn, 100 steps, seed 0).
    pub fn new(capacity: u64) -> Self {
        Scenario {
            capacity,
            k: 2,
            l: 1.5,
            tau: 0.10,
            epsilon: 0.05,
            initial_population: 0, // resolved at run time from k
            churn: ChurnStyle::Balanced,
            steps: 100,
            audit_every: 1,
            seed: 0,
            shuffle: true,
            authenticated: false,
            exchange_cap: None,
        }
    }

    /// Sets the security parameter `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the band constant `l`.
    pub fn l(mut self, l: f64) -> Self {
        self.l = l;
        self
    }

    /// Sets the corruption rate (both the parameter bound and the churn
    /// driver's budget).
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the initial population (default: 10 clusters' worth).
    pub fn initial_population(mut self, n0: usize) -> Self {
        self.initial_population = n0;
        self
    }

    /// Sets the churn style.
    pub fn churn(mut self, churn: ChurnStyle) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the number of time steps.
    pub fn steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the audit cadence.
    pub fn audit_every(mut self, every: u64) -> Self {
        self.audit_every = every.max(1);
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables exchange shuffling (the §3.3 baseline ablation).
    pub fn without_shuffle(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Runs in Remark 1's crypto-hardened mode
    /// ([`now_core::SecurityMode::Authenticated`]): τ may range up to
    /// `1/2 − ε` and the binding invariant is honest *majority*.
    pub fn authenticated(mut self) -> Self {
        self.authenticated = true;
        self
    }

    /// Caps the shuffle volume of each `exchange` invocation (the
    /// Lemma 2–3 ablation; `None` = the paper's full exchange).
    pub fn exchange_cap(mut self, cap: Option<usize>) -> Self {
        self.exchange_cap = cap;
        self
    }

    /// Builds the scenario's system (shared by the serial and batched
    /// run paths, so parameter plumbing cannot diverge between them).
    fn build_system(&self) -> Result<NowSystem, NowError> {
        let params = if self.authenticated {
            NowParams::new_authenticated(self.capacity, self.k, self.l, self.tau, self.epsilon)?
        } else {
            NowParams::new(self.capacity, self.k, self.l, self.tau, self.epsilon)?
        }
        .with_shuffle(self.shuffle)
        .with_exchange_cap(self.exchange_cap);
        let n0 = if self.initial_population > 0 {
            self.initial_population
        } else {
            10 * params.target_cluster_size()
        };
        Ok(NowSystem::init_fast(params, n0, self.tau, self.seed))
    }

    /// Builds the system, runs the churn, returns report + system.
    ///
    /// # Errors
    /// Propagates [`NowError::BadParams`] for invalid parameters.
    pub fn run(self) -> Result<(RunReport, NowSystem), NowError> {
        let mut sys = self.build_system()?;
        let config = RunConfig {
            steps: self.steps,
            audit_every: self.audit_every,
            seed: self.seed.wrapping_add(1),
        };
        let report = match self.churn {
            ChurnStyle::Quiet => run(&mut sys, &mut Quiet, config),
            ChurnStyle::Balanced => run(&mut sys, &mut RandomChurn::balanced(self.tau), config),
            ChurnStyle::Sawtooth { low, high } => {
                run(&mut sys, &mut Sawtooth::new(low, high, self.tau), config)
            }
            ChurnStyle::JoinLeaveAttack => {
                // INVARIANT: LastCluster guard — index 0 always exists.
                let target = sys.cluster_ids()[0];
                let mut adv = JoinLeaveAttack::new(target, self.tau);
                run_boxed(&mut sys, &mut adv, config)
            }
            ChurnStyle::ForcedLeaveAttack => {
                // INVARIANT: LastCluster guard — index 0 always exists.
                let target = sys.cluster_ids()[0];
                let mut adv = ForcedLeaveAttack::new(target, self.tau);
                run_boxed(&mut sys, &mut adv, config)
            }
            ChurnStyle::SplitForcing => {
                // INVARIANT: LastCluster guard — index 0 always exists.
                let target = sys.cluster_ids()[0];
                let mut adv = SplitForcing::new(target, self.tau);
                run_boxed(&mut sys, &mut adv, config)
            }
            ChurnStyle::MergeForcing => {
                // INVARIANT: LastCluster guard — index 0 always exists.
                let target = sys.cluster_ids()[0];
                let mut adv = MergeForcing::new(target, self.tau);
                run_boxed(&mut sys, &mut adv, config)
            }
            ChurnStyle::Burst { burst } => {
                let mut adv = BurstChurn::new(burst, self.tau);
                run_boxed(&mut sys, &mut adv, config)
            }
        };
        Ok((report, sys))
    }
}

impl Scenario {
    /// Builds the system and runs the churn in **batched** mode, as
    /// configured by a [`BatchRun`] builder: each of the `steps` time
    /// steps executes a whole batch of [`BatchRun::width`] operations
    /// through the engine the builder selects
    /// ([`now_core::NowSystem::step_batch`]).
    ///
    /// Churn styles map to batch drivers: `Balanced` →
    /// [`BatchRandomChurn`], `Sawtooth` → [`BatchSawtooth`], `Quiet` →
    /// empty batches, `JoinLeaveAttack` → [`BatchJoinLeave`],
    /// `ForcedLeaveAttack` → [`BatchForcedLeave`], `SplitForcing` →
    /// [`BatchSplitForcing`], `MergeForcing` → [`BatchMergeForcing`]
    /// (the attack drivers target the first cluster, mirroring the
    /// serial scenario path), `Burst` → [`BatchBurstChurn`] (each step
    /// is one whole burst; the serial `burst` length is subsumed by the
    /// batch width).
    ///
    /// # Errors
    /// [`NowError::BadParams`] for invalid parameters or a zero width.
    pub fn run_batch(self, run: BatchRun<'_>) -> Result<(BatchRunReport, NowSystem), NowError> {
        let width = run.batch_width();
        if width == 0 {
            return Err(NowError::BadParams {
                reason: "batch width must be positive".to_string(),
            });
        }
        let mut sys = self.build_system()?;
        let seed = self.seed.wrapping_add(1);
        let mut driver: Box<dyn BatchDriver> = match self.churn {
            ChurnStyle::Quiet => Box::new(QuietBatches),
            ChurnStyle::Balanced => Box::new(BatchRandomChurn::balanced(width, self.tau)),
            ChurnStyle::Sawtooth { low, high } => {
                Box::new(BatchSawtooth::new(low, high, width, self.tau))
            }
            ChurnStyle::JoinLeaveAttack => {
                Box::new(BatchJoinLeave::new(width, self.tau).with_pick(ClusterPick::First))
            }
            ChurnStyle::ForcedLeaveAttack => {
                Box::new(BatchForcedLeave::new(width, self.tau).with_pick(ClusterPick::First))
            }
            ChurnStyle::SplitForcing => {
                Box::new(BatchSplitForcing::new(width, self.tau).with_pick(ClusterPick::First))
            }
            ChurnStyle::MergeForcing => {
                Box::new(BatchMergeForcing::new(width, self.tau).with_pick(ClusterPick::First))
            }
            ChurnStyle::Burst { .. } => Box::new(BatchBurstChurn::new(width, self.tau)),
        };
        let report = run.run(&mut sys, driver.as_mut(), self.steps, seed);
        Ok((report, sys))
    }

    /// Batched run through the serial wave scheduler.
    ///
    /// # Errors
    /// As [`Scenario::run_batch`].
    #[deprecated(note = "use `Scenario::run_batch` with a `BatchRun` builder")]
    pub fn run_batched(self, width: usize) -> Result<(BatchRunReport, NowSystem), NowError> {
        self.run_batch(BatchRun::new().width(width))
    }

    /// Batched run on the threaded wave executor.
    ///
    /// # Errors
    /// As [`Scenario::run_batch`].
    #[deprecated(note = "use `Scenario::run_batch` with a `BatchRun` builder")]
    pub fn run_batched_threaded(
        self,
        width: usize,
        threads: usize,
    ) -> Result<(BatchRunReport, NowSystem), NowError> {
        self.run_batch(
            BatchRun::new()
                .width(width)
                .exec(crate::batch_run::BatchExec::Threaded(threads)),
        )
    }
}

fn run_boxed(sys: &mut NowSystem, adv: &mut dyn Adversary, config: RunConfig) -> RunReport {
    run(sys, adv, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ViolationKind;

    #[test]
    fn default_scenario_runs_clean() {
        let (report, sys) = Scenario::new(1 << 10).steps(30).run().unwrap();
        assert_eq!(report.steps, 30);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn builder_settings_apply() {
        let (_, sys) = Scenario::new(1 << 10)
            .k(3)
            .l(2.0)
            .tau(0.2)
            .initial_population(90)
            .steps(5)
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(sys.params().k(), 3);
        assert!((sys.params().l() - 2.0).abs() < 1e-12);
        // Population moved from 90 by ±5 churn steps at most.
        assert!(sys.population() >= 85 && sys.population() <= 95);
    }

    #[test]
    fn quiet_scenario_changes_nothing() {
        let (report, sys) = Scenario::new(1 << 10)
            .churn(ChurnStyle::Quiet)
            .initial_population(100)
            .steps(20)
            .run()
            .unwrap();
        assert_eq!(report.idles, 20);
        assert_eq!(sys.population(), 100);
    }

    #[test]
    fn sawtooth_scenario_moves_population() {
        let (report, _) = Scenario::new(1 << 10)
            .initial_population(80)
            .churn(ChurnStyle::Sawtooth { low: 60, high: 120 })
            .steps(150)
            .run()
            .unwrap();
        let pop = report.population.summary();
        assert!(pop.max >= 115.0);
    }

    #[test]
    fn attack_scenarios_run() {
        for style in [ChurnStyle::JoinLeaveAttack, ChurnStyle::ForcedLeaveAttack] {
            let (report, sys) = Scenario::new(1 << 10)
                .tau(0.15)
                .churn(style)
                .steps(40)
                .run()
                .unwrap();
            assert_eq!(report.steps, 40);
            sys.check_consistency().unwrap();
        }
    }

    #[test]
    fn no_shuffle_ablation_flag_applies() {
        let (_, sys) = Scenario::new(1 << 10)
            .without_shuffle()
            .steps(5)
            .run()
            .unwrap();
        assert!(!sys.params().shuffle_enabled());
    }

    #[test]
    fn bad_params_propagate() {
        assert!(Scenario::new(1 << 10).tau(0.5).steps(1).run().is_err());
    }

    #[test]
    fn pressure_attack_scenarios_run() {
        for style in [
            ChurnStyle::SplitForcing,
            ChurnStyle::MergeForcing,
            ChurnStyle::Burst { burst: 5 },
        ] {
            let (report, sys) = Scenario::new(1 << 10)
                .tau(0.10)
                .churn(style)
                .steps(60)
                .seed(3)
                .run()
                .unwrap();
            assert_eq!(report.steps, 60, "{style:?}");
            sys.check_consistency().unwrap();
        }
    }

    #[test]
    fn split_forcing_scenario_causes_splits() {
        let (_, sys) = Scenario::new(1 << 10)
            .tau(0.10)
            .churn(ChurnStyle::SplitForcing)
            .steps(100)
            .run()
            .unwrap();
        let (_, _, splits, _) = sys.op_counts();
        assert!(splits > 0);
    }

    #[test]
    fn authenticated_scenario_accepts_high_tau() {
        // τ = 0.35 would be rejected in plain mode (see
        // bad_params_propagate); authenticated mode sizes for it. At
        // this τ the plain 2/3-honest target is hopeless (mean Byzantine
        // share already exceeds 1/3), while the majority target only
        // trips on deep binomial tails — Lemma 1's k-dependence,
        // measured by experiment X-R1. Here we assert the qualitative
        // separation.
        let (report, sys) = Scenario::new(1 << 10)
            .k(8)
            .tau(0.35)
            .authenticated()
            .steps(60)
            .seed(11)
            .run()
            .unwrap();
        assert_eq!(
            sys.params().security(),
            now_core::SecurityMode::Authenticated
        );
        let two_thirds = report.count(ViolationKind::NotTwoThirdsHonest);
        let majority = report.count(ViolationKind::NotMajorityHonest);
        assert!(
            two_thirds > 40,
            "plain target should fail at most steps, failed {two_thirds}/60"
        );
        assert!(
            majority * 5 < two_thirds,
            "majority target should be far rarer: {majority} vs {two_thirds}"
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn batched_scenario_runs_the_wave_scheduler() {
        let (report, sys) = Scenario::new(1 << 10)
            .tau(0.1)
            .initial_population(160)
            .steps(12)
            .seed(5)
            .run_batch(BatchRun::new().width(4))
            .unwrap();
        assert_eq!(report.steps, 12);
        assert!(report.joins + report.leaves > 30, "4-wide × 12 steps");
        assert!(report.waves > 0);
        assert_eq!(sys.time_step(), 12, "one step per batch");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn batched_scenario_threaded_is_thread_count_invariant() {
        let go = |threads: usize| {
            let (report, sys) = Scenario::new(1 << 10)
                .tau(0.1)
                .initial_population(160)
                .steps(8)
                .seed(6)
                .run_batch(
                    BatchRun::new()
                        .width(4)
                        .exec(crate::batch_run::BatchExec::Threaded(threads)),
                )
                .unwrap();
            sys.check_consistency().unwrap();
            assert_eq!(report.threads, Some(threads.max(1)));
            (
                report.joins,
                report.leaves,
                report.rounds_parallel,
                report.wave_slack_rounds,
                sys.population(),
                sys.node_ids(),
            )
        };
        assert_eq!(go(1), go(4));
    }

    #[test]
    fn batched_scenario_quiet_and_sawtooth() {
        let (quiet, sys) = Scenario::new(1 << 10)
            .churn(ChurnStyle::Quiet)
            .initial_population(100)
            .steps(5)
            .run_batch(BatchRun::new().width(3))
            .unwrap();
        assert_eq!(quiet.joins + quiet.leaves, 0);
        assert_eq!(sys.population(), 100);
        let (saw, _) = Scenario::new(1 << 10)
            .initial_population(80)
            .churn(ChurnStyle::Sawtooth { low: 60, high: 120 })
            .steps(40)
            .run_batch(BatchRun::new().width(4))
            .unwrap();
        assert!(saw.population.summary().max >= 115.0);
    }

    #[test]
    fn batched_scenario_rejects_bad_configs() {
        assert!(Scenario::new(1 << 10)
            .steps(1)
            .run_batch(BatchRun::new().width(0))
            .is_err());
        assert!(Scenario::new(1 << 10).tau(0.5).steps(1).run().is_err());
    }

    #[test]
    fn merge_forcing_batches_cause_merges() {
        let (_, sys) = Scenario::new(1 << 10)
            .tau(0.10)
            .initial_population(200)
            .churn(ChurnStyle::MergeForcing)
            .steps(30)
            .seed(12)
            .run_batch(BatchRun::new().width(6))
            .unwrap();
        let (_, _, _, merges) = sys.op_counts();
        assert!(merges > 0, "sustained batched draining must merge");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn burst_batches_hold_population_over_a_period() {
        let (report, sys) = Scenario::new(1 << 10)
            .tau(0.10)
            .initial_population(160)
            .churn(ChurnStyle::Burst { burst: 4 })
            .steps(20)
            .seed(13)
            .run_batch(BatchRun::new().width(4))
            .unwrap();
        assert_eq!(report.steps, 20);
        assert!(report.joins > 0 && report.leaves > 0);
        // Stationary over full periods: joins and leaves roughly cancel.
        assert!(
            sys.population() >= 150 && sys.population() <= 170,
            "population drifted to {}",
            sys.population()
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn batched_attack_scenarios_run() {
        for style in [
            ChurnStyle::JoinLeaveAttack,
            ChurnStyle::ForcedLeaveAttack,
            ChurnStyle::SplitForcing,
            ChurnStyle::MergeForcing,
            ChurnStyle::Burst { burst: 4 },
        ] {
            let (report, sys) = Scenario::new(1 << 10)
                .tau(0.15)
                .initial_population(160)
                .churn(style)
                .steps(20)
                .seed(4)
                .run_batch(BatchRun::new().width(4))
                .unwrap();
            assert_eq!(report.steps, 20, "{style:?}");
            assert!(
                report.joins + report.leaves > 0,
                "{style:?} produced no churn"
            );
            sys.check_consistency().unwrap();
        }
    }

    #[test]
    fn split_forcing_batches_cause_splits() {
        let (_, sys) = Scenario::new(1 << 10)
            .tau(0.10)
            .initial_population(160)
            .churn(ChurnStyle::SplitForcing)
            .steps(30)
            .seed(9)
            .run_batch(BatchRun::new().width(6))
            .unwrap();
        let (_, _, splits, _) = sys.op_counts();
        assert!(splits > 0, "180 steered arrivals must split something");
    }

    #[test]
    fn exchange_cap_scenario_applies() {
        let (_, sys) = Scenario::new(1 << 10)
            .exchange_cap(Some(4))
            .steps(5)
            .run()
            .unwrap();
        assert_eq!(sys.params().exchange_cap(), Some(4));
    }
}
