//! OVER parameterization derived from the system capacity `N`.
//!
//! All quantities are functions of `log N` (base 2 throughout, matching
//! the common convention for "polylog" claims) and the pre-chosen small
//! constant `α > 0`:
//!
//! * target degree per vertex: `⌈log^{1+α} N⌉` — what `Add` aims for;
//! * degree cap: `c · ⌈log^{1+α} N⌉` — Property 2's bound, enforced
//!   structurally (a vertex at the cap refuses further links);
//! * degree floor: repairs trigger when a removal drags a vertex below
//!   half its target.
//!
//! Note on Figure 2: the PODC text annotates `Split` with "2·log²N
//! edges are added using randCl". Taken literally that contradicts
//! Property 2 for small α (a fresh vertex of degree `2log²N` exceeds
//! `c·log^{1+α}N`). We read the figure as the *sampling budget* of the
//! walk-based neighbor search and normalize the actual edge budget to
//! the target degree, which is the only reading consistent with
//! Property 2; experiment X-P12 verifies both properties under this
//! choice.

/// Static OVER parameters (shared by every overlay of one deployment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverParams {
    capacity: u64,
    alpha: f64,
    cap_factor: usize,
}

impl OverParams {
    /// Parameters for a system of maximal size `capacity` (= `N`), with
    /// the default `α = 0.1` and cap factor `c = 4`.
    ///
    /// # Panics
    /// Panics if `capacity < 4` (logarithms degenerate below that).
    pub fn for_capacity(capacity: u64) -> Self {
        Self::new(capacity, 0.1, 4)
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    /// Panics if `capacity < 4`, `alpha` is not in `(0, 1]`, or
    /// `cap_factor < 2`.
    pub fn new(capacity: u64, alpha: f64, cap_factor: usize) -> Self {
        assert!(capacity >= 4, "capacity must be at least 4, got {capacity}");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must lie in (0, 1], got {alpha}"
        );
        assert!(cap_factor >= 2, "cap factor must be ≥ 2, got {cap_factor}");
        OverParams {
            capacity,
            alpha,
            cap_factor,
        }
    }

    /// The system capacity `N`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The expansion exponent constant `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `log₂ N` as a float.
    pub fn log_n(&self) -> f64 {
        (self.capacity as f64).log2()
    }

    /// `log^{1+α} N`, the degree/expansion scale of Properties 1–2.
    pub fn log_1_alpha(&self) -> f64 {
        self.log_n().powf(1.0 + self.alpha)
    }

    /// Edges a fresh vertex aims for on `Add`: `⌈log^{1+α} N⌉`.
    pub fn target_degree(&self) -> usize {
        self.log_1_alpha().ceil() as usize
    }

    /// Property 2's bound: `c · ⌈log^{1+α} N⌉`. Enforced structurally.
    pub fn degree_cap(&self) -> usize {
        self.cap_factor * self.target_degree()
    }

    /// Repair threshold: a vertex dropping below this after a neighbor's
    /// removal draws replacement edges.
    pub fn degree_floor(&self) -> usize {
        (self.target_degree() / 2).max(2)
    }

    /// Property 1's claimed lower bound on the isoperimetric constant:
    /// `log^{1+α} N / 2`.
    pub fn expansion_bound(&self) -> f64 {
        self.log_1_alpha() / 2.0
    }

    /// Edge probability for the initial Erdős–Rényi overlay on
    /// `m` vertices, normalized so the expected degree equals the
    /// target degree (clamped to 1 for tiny overlays).
    pub fn init_edge_probability(&self, m: usize) -> f64 {
        if m <= 1 {
            return 0.0;
        }
        (self.target_degree() as f64 / (m - 1) as f64).min(1.0)
    }

    /// The walk-sampling budget Figure 2 attaches to structural
    /// operations: `2·log² N` candidate draws.
    pub fn walk_budget(&self) -> usize {
        (2.0 * self.log_n() * self.log_n()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_for_pow2_capacity() {
        let p = OverParams::new(1 << 16, 0.1, 4);
        assert!((p.log_n() - 16.0).abs() < 1e-12);
        let expect = 16f64.powf(1.1);
        assert!((p.log_1_alpha() - expect).abs() < 1e-9);
        assert_eq!(p.target_degree(), expect.ceil() as usize);
        assert_eq!(p.degree_cap(), 4 * p.target_degree());
        assert!((p.expansion_bound() - expect / 2.0).abs() < 1e-9);
        assert_eq!(p.walk_budget(), 512);
    }

    #[test]
    fn floor_is_half_target_but_at_least_two() {
        let p = OverParams::for_capacity(1 << 16);
        assert_eq!(p.degree_floor(), p.target_degree() / 2);
        let tiny = OverParams::for_capacity(4);
        assert!(tiny.degree_floor() >= 2);
    }

    #[test]
    fn init_probability_normalizes_degree() {
        let p = OverParams::for_capacity(1 << 12);
        let m = 100;
        let prob = p.init_edge_probability(m);
        let expected_degree = prob * (m - 1) as f64;
        assert!((expected_degree - p.target_degree() as f64).abs() < 1e-9);
    }

    #[test]
    fn init_probability_clamps() {
        let p = OverParams::for_capacity(1 << 16);
        assert_eq!(p.init_edge_probability(0), 0.0);
        assert_eq!(p.init_edge_probability(1), 0.0);
        assert_eq!(p.init_edge_probability(2), 1.0, "target ≫ m−1 clamps to 1");
    }

    #[test]
    fn cap_exceeds_target_exceeds_floor() {
        for cap in [16u64, 1 << 10, 1 << 16, 1 << 20] {
            let p = OverParams::for_capacity(cap);
            assert!(p.degree_cap() > p.target_degree());
            assert!(p.target_degree() > p.degree_floor() || p.target_degree() <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 4")]
    fn tiny_capacity_rejected() {
        let _ = OverParams::for_capacity(2);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in")]
    fn bad_alpha_rejected() {
        let _ = OverParams::new(1 << 10, 0.0, 4);
    }

    #[test]
    #[should_panic(expected = "cap factor")]
    fn bad_cap_factor_rejected() {
        let _ = OverParams::new(1 << 10, 0.1, 1);
    }
}
