//! Measuring the overlay against Properties 1–2.

use crate::overlay::Overlay;
use now_graph::expansion::EXACT_LIMIT;
use now_graph::traversal::is_connected;
use now_graph::{
    algebraic_connectivity, cheeger_lower_bound, exact_isoperimetric, sweep_cut_upper_bound,
    SpectralOptions,
};

/// A snapshot of the overlay's health, phrased in the paper's terms.
///
/// * Property 2 is checked directly (`max_degree` vs the cap).
/// * Property 1 (isoperimetric constant) is exact for overlays of up to
///   [`EXACT_LIMIT`] vertices and bracketed by
///   `[cheeger_lower, sweep_upper]` beyond that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayAudit {
    /// Number of live clusters (overlay vertices).
    pub vertex_count: usize,
    /// Number of overlay edges.
    pub edge_count: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Minimum vertex degree.
    pub min_degree: usize,
    /// Mean vertex degree.
    pub mean_degree: f64,
    /// Whether the overlay is connected (expansion zero otherwise).
    pub connected: bool,
    /// Algebraic connectivity λ₂ of the overlay's Laplacian.
    pub lambda2: f64,
    /// `λ₂/2` — certified lower bound on the isoperimetric constant.
    pub cheeger_lower: f64,
    /// Fiedler sweep cut — upper bound on the isoperimetric constant.
    pub sweep_upper: f64,
    /// Exact isoperimetric constant, when the overlay is small enough.
    pub exact_isoperimetric: Option<f64>,
    /// Property 2 verdict: `max_degree ≤ degree_cap`.
    pub degree_bound_holds: bool,
}

impl OverlayAudit {
    /// Measures `overlay` (cost: one λ₂ power iteration plus, for small
    /// overlays, the exact subset enumeration).
    pub fn measure(overlay: &Overlay) -> Self {
        let (g, _) = overlay.to_dense();
        let n = g.vertex_count();
        let opts = SpectralOptions::default();
        let lambda2 = if n >= 2 {
            algebraic_connectivity(&g, opts)
        } else {
            0.0
        };
        let exact = if (2..=EXACT_LIMIT).contains(&n) {
            Some(exact_isoperimetric(&g))
        } else {
            None
        };
        OverlayAudit {
            vertex_count: n,
            edge_count: g.edge_count(),
            max_degree: g.max_degree(),
            min_degree: g.min_degree(),
            mean_degree: g.mean_degree(),
            connected: is_connected(&g),
            lambda2,
            cheeger_lower: cheeger_lower_bound(lambda2),
            sweep_upper: if n >= 2 {
                sweep_cut_upper_bound(&g, opts)
            } else {
                f64::INFINITY
            },
            exact_isoperimetric: exact,
            degree_bound_holds: g.max_degree() <= overlay.params().degree_cap(),
        }
    }

    /// Best available point estimate of the isoperimetric constant:
    /// exact when known, else the sweep-cut upper bound (expansion
    /// claims quoted from it are conservative *against* the paper).
    pub fn expansion_estimate(&self) -> f64 {
        self.exact_isoperimetric.unwrap_or(self.sweep_upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OverParams;
    use now_net::{ClusterId, DetRng};

    fn ids(n: u64) -> Vec<ClusterId> {
        (0..n).map(ClusterId::from_raw).collect()
    }

    #[test]
    fn audit_of_healthy_overlay() {
        let params = OverParams::for_capacity(1 << 12);
        let mut rng = DetRng::new(1);
        let overlay = Overlay::init_random(&ids(80), params, &mut rng);
        let audit = overlay.audit();
        assert_eq!(audit.vertex_count, 80);
        assert!(audit.connected);
        assert!(audit.degree_bound_holds);
        assert!(audit.lambda2 > 0.0);
        assert!(audit.cheeger_lower <= audit.sweep_upper + 1e-9);
        assert!(audit.exact_isoperimetric.is_none(), "80 > exact limit");
        assert!(audit.expansion_estimate() > 0.0);
    }

    #[test]
    fn audit_small_overlay_has_exact_value() {
        let params = OverParams::for_capacity(1 << 10);
        let mut rng = DetRng::new(2);
        let overlay = Overlay::init_random(&ids(12), params, &mut rng);
        let audit = overlay.audit();
        let exact = audit.exact_isoperimetric.expect("12 ≤ exact limit");
        assert!(audit.cheeger_lower <= exact + 1e-6);
        assert!(audit.sweep_upper >= exact - 1e-9);
        assert_eq!(audit.expansion_estimate(), exact);
    }

    #[test]
    fn audit_detects_degree_violation_absence() {
        // Structurally the cap cannot be violated via link(); audit
        // should always agree.
        let params = OverParams::for_capacity(1 << 12);
        let mut rng = DetRng::new(3);
        let mut overlay = Overlay::init_random(&ids(50), params, &mut rng);
        for i in 100..140u64 {
            overlay.add_uniform(ClusterId::from_raw(i), &mut rng);
        }
        assert!(overlay.audit().degree_bound_holds);
    }

    #[test]
    fn audit_of_empty_and_singleton() {
        let params = OverParams::for_capacity(1 << 10);
        let empty = Overlay::new(params);
        let a = empty.audit();
        assert_eq!(a.vertex_count, 0);
        assert!(a.connected, "vacuously connected");
        assert_eq!(a.lambda2, 0.0);

        let mut one = Overlay::new(params);
        one.insert_vertex(ClusterId::from_raw(0));
        let a1 = one.audit();
        assert_eq!(a1.vertex_count, 1);
        assert!(a1.exact_isoperimetric.is_none());
    }

    #[test]
    fn expansion_survives_heavy_churn() {
        // The substance of Property 1: after many add/remove cycles the
        // overlay still expands (λ₂ bounded away from 0).
        let params = OverParams::for_capacity(1 << 12);
        let mut rng = DetRng::new(4);
        let mut overlay = Overlay::init_random(&ids(60), params, &mut rng);
        let mut next = 1000u64;
        for round in 0..300 {
            if round % 2 == 0 {
                overlay.add_uniform(ClusterId::from_raw(next), &mut rng);
                next += 1;
            } else {
                let live: Vec<ClusterId> = overlay.vertices().collect();
                let victim = live[round % live.len()];
                overlay.remove(victim, &mut rng);
            }
        }
        let audit = overlay.audit();
        assert!(audit.connected, "overlay disconnected after churn");
        assert!(
            audit.lambda2 > 1.0,
            "expansion collapsed after churn: λ₂ = {}",
            audit.lambda2
        );
        assert!(audit.degree_bound_holds);
    }
}
