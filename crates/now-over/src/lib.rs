//! OVER — the dynamic expander overlay of clusters.
//!
//! In the paper, the vertices of Ĝᴿ are NOW's clusters (each safe to
//! treat as an honest super-node, since it holds > 2/3 honest members
//! whp). OVER keeps the overlay an expander with low degree under a
//! polynomially long sequence of vertex additions and removals:
//!
//! * **Property 1** — isoperimetric constant `I(Ĝᴿ) ≥ log^{1+α}N / 2`;
//! * **Property 2** — maximum degree ≤ `c · log^{1+α}N`.
//!
//! The detailed OVER construction lives in the paper's long version
//! (arXiv:1202.3084), which is not available offline; this crate
//! re-derives it from the constraints stated in the PODC text (see
//! `DESIGN.md` §3): the overlay starts as a degree-normalized
//! Erdős–Rényi graph; `Add` links the incoming vertex to
//! `target_degree` vertices sampled (by the caller, normally via
//! `randCl`) from the existing overlay, skipping vertices at the degree
//! cap; `Remove` deletes the vertex and tops every orphaned neighbor
//! back up to the degree floor with fresh random edges. Properties 1–2
//! are then *measured* (experiment X-P12) instead of assumed.
//!
//! Cost accounting deliberately lives one layer up (in `now-core`),
//! where cluster sizes — and therefore real message counts — are known.
//!
//! The paper notes NOW is overlay-agnostic ("could also be ensured by
//! other protocols … e.g. \[degree\] 4 in \[2\] instead of log^{1+α}N in
//! OVER"); [`CyclesOverlay`] implements the constant-degree alternative
//! from the related work (Law & Siu's union of random cycles,
//! reference \[26\]) for side-by-side comparison (experiment X-ALT).
//!
//! # Example
//!
//! ```
//! use now_over::{Overlay, OverParams};
//! use now_net::{ClusterId, DetRng};
//!
//! let params = OverParams::for_capacity(1 << 12);
//! let mut rng = DetRng::new(7);
//! let ids: Vec<ClusterId> = (0..32).map(ClusterId::from_raw).collect();
//! let mut overlay = Overlay::init_random(&ids, params, &mut rng);
//! let newcomer = ClusterId::from_raw(99);
//! overlay.add_uniform(newcomer, &mut rng);
//! assert!(overlay.contains(newcomer));
//! let audit = overlay.audit();
//! assert!(audit.max_degree <= params.degree_cap());
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod audit;
mod cycles;
mod overlay;
mod params;

pub use audit::OverlayAudit;
pub use cycles::{CyclesAudit, CyclesOverlay};
pub use overlay::Overlay;
pub use params::OverParams;
