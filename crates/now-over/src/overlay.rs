//! The overlay graph structure and its Add/Remove maintenance.

use crate::audit::OverlayAudit;
use crate::params::OverParams;
use now_graph::Graph;
use now_net::ClusterId;
use rand::Rng;

/// One vertex of the overlay slab: its id, its sorted neighbor vec, and
/// its position in the uniform-sampling pool.
#[derive(Debug, Clone)]
struct VertexSlot {
    id: ClusterId,
    /// Sorted ascending — neighbor iteration is canonical id order, and
    /// edge membership is a binary search.
    neighbors: Vec<ClusterId>,
    /// Position of this vertex in `Overlay::sample_pool`.
    pool_pos: u32,
    live: bool,
}

/// The cluster overlay Ĝᴿ: an undirected graph keyed by [`ClusterId`],
/// with structural enforcement of the degree cap and floor-repair on
/// removals.
///
/// Storage is a slab of [`VertexSlot`]s (freelist-recycled on removal)
/// plus a sorted `(id, slot)` index: neighbor sets are per-vertex
/// sorted vecs, so [`Overlay::neighbors`] is a borrow — zero
/// allocation — and iteration is a contiguous scan in canonical id
/// order. The previous `BTreeMap<ClusterId, BTreeSet<ClusterId>>`
/// layout paid a pointer chase per neighbor on every footprint
/// computation and planner walk.
///
/// Neighbor selection for maintenance comes in two flavors:
/// * `*_uniform` methods sample uniformly from the live vertices — the
///   overlay-local stand-in used by overlay-only experiments and tests;
/// * `*_with` methods accept caller-chosen candidates — `now-core`
///   passes clusters drawn by `randCl` (size-biased walks), which is the
///   protocol-faithful path.
#[derive(Debug, Clone)]
pub struct Overlay {
    /// The vertex slab; freed slots are recycled via `free`.
    slots: Vec<VertexSlot>,
    free: Vec<u32>,
    /// Live `(id, slot)` pairs sorted by id: the canonical iteration
    /// order and the id → slot resolver (binary search).
    index: Vec<(ClusterId, u32)>,
    params: OverParams,
    edges: usize,
    /// Live vertices in arbitrary (insertion/swap-remove) order: the
    /// incrementally maintained candidate pool that uniform maintenance
    /// sampling indexes into. Each vertex's position lives in its slab
    /// slot (`pool_pos`), so pool upkeep is O(log V) for the slot
    /// lookup and O(1) for the swap-remove.
    sample_pool: Vec<ClusterId>,
}

impl Overlay {
    /// Creates an empty overlay.
    pub fn new(params: OverParams) -> Self {
        Overlay {
            slots: Vec::new(),
            free: Vec::new(),
            index: Vec::new(),
            params,
            edges: 0,
            sample_pool: Vec::new(),
        }
    }

    /// Bootstraps the overlay on `ids` as a degree-normalized
    /// Erdős–Rényi graph (each pair linked with
    /// [`OverParams::init_edge_probability`]), then tops every vertex up
    /// to the degree floor so no vertex starts isolated.
    pub fn init_random<R: Rng>(ids: &[ClusterId], params: OverParams, rng: &mut R) -> Self {
        let mut overlay = Overlay::new(params);
        for &id in ids {
            overlay.insert_vertex(id);
        }
        let p = params.init_edge_probability(ids.len());
        if p > 0.0 {
            for (i, &a) in ids.iter().enumerate() {
                // INVARIANT: `i < len` from enumerate, so `i + 1` is a
                // valid (possibly empty) tail start.
                for &b in &ids[i + 1..] {
                    if rng.gen_bool(p) {
                        overlay.link(a, b);
                    }
                }
            }
        }
        // Top up sparse vertices (tiny overlays and unlucky draws).
        let vertices: Vec<ClusterId> = overlay.vertices().collect();
        for v in vertices {
            overlay.repair_floor(v, rng);
        }
        overlay
    }

    /// Slab slot of a live vertex, by id.
    #[inline]
    fn slot_of(&self, id: ClusterId) -> Option<u32> {
        self.index
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|pos| self.index[pos].1)
    }

    /// Static parameters.
    pub fn params(&self) -> OverParams {
        self.params
    }

    /// Number of vertices (clusters).
    pub fn vertex_count(&self) -> usize {
        self.index.len()
    }

    /// Number of overlay edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether `id` is a live overlay vertex.
    pub fn contains(&self, id: ClusterId) -> bool {
        self.slot_of(id).is_some()
    }

    /// Iterator over live vertices in id order.
    pub fn vertices(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.index.iter().map(|&(id, _)| id)
    }

    /// Degree of `id` (0 if absent).
    pub fn degree(&self, id: ClusterId) -> usize {
        self.slot_of(id)
            .map(|s| self.slots[s as usize].neighbors.len())
            .unwrap_or(0)
    }

    /// Neighbors of `id` in id order, borrowed from the slab (empty if
    /// absent). Zero-allocation: this is the footprint/planner hot
    /// path.
    pub fn neighbors(&self, id: ClusterId) -> &[ClusterId] {
        match self.slot_of(id) {
            Some(s) => &self.slots[s as usize].neighbors,
            None => &[],
        }
    }

    /// Whether the overlay has the edge `{a, b}`.
    pub fn has_edge(&self, a: ClusterId, b: ClusterId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Inserts an isolated vertex (no-op if present).
    pub fn insert_vertex(&mut self, id: ClusterId) {
        let pos = match self.index.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(_) => return,
            Err(pos) => pos,
        };
        let pool_pos = self.sample_pool.len() as u32;
        let slot = match self.free.pop() {
            Some(slot) => {
                let v = &mut self.slots[slot as usize];
                debug_assert!(!v.live && v.neighbors.is_empty());
                v.id = id;
                v.pool_pos = pool_pos;
                v.live = true;
                slot
            }
            None => {
                self.slots.push(VertexSlot {
                    id,
                    neighbors: Vec::new(),
                    pool_pos,
                    live: true,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(pos, (id, slot));
        self.sample_pool.push(id);
    }

    /// Drops the vertex in `slot` from the incremental sampling pool
    /// (O(1) swap-remove; O(log V) to fix the moved entry's position).
    fn forget_sample(&mut self, slot: u32) {
        let pos = self.slots[slot as usize].pool_pos as usize;
        self.sample_pool.swap_remove(pos);
        if let Some(&moved) = self.sample_pool.get(pos) {
            // INVARIANT: the sample pool only holds live vertices, and
            // `moved` was just read from it.
            let ms = self.slot_of(moved).expect("pooled vertex is live");
            self.slots[ms as usize].pool_pos = pos as u32;
        }
    }

    /// One uniform draw from the live vertices (O(1) against the
    /// incremental pool).
    fn sample_vertex<R: Rng>(&self, rng: &mut R) -> ClusterId {
        // INVARIANT: callers sample only when vertices exist, and
        // the draw range is exactly the pool length.
        self.sample_pool[rng.gen_range(0..self.sample_pool.len())]
    }

    /// Links `a`–`b` if both exist, are distinct, unlinked, and **both
    /// below the degree cap**. Returns whether the edge was created.
    pub fn link(&mut self, a: ClusterId, b: ClusterId) -> bool {
        if a == b {
            return false;
        }
        let (Some(sa), Some(sb)) = (self.slot_of(a), self.slot_of(b)) else {
            return false;
        };
        let pos_b = match self.slots[sa as usize].neighbors.binary_search(&b) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        let cap = self.params.degree_cap();
        if self.slots[sa as usize].neighbors.len() >= cap
            || self.slots[sb as usize].neighbors.len() >= cap
        {
            return false;
        }
        self.slots[sa as usize].neighbors.insert(pos_b, b);
        let pos_a = self.slots[sb as usize]
            .neighbors
            .binary_search(&a)
            .expect_err("symmetric adjacency");
        self.slots[sb as usize].neighbors.insert(pos_a, a);
        self.edges += 1;
        true
    }

    /// Removes the edge `{a, b}`; returns whether it existed.
    pub fn unlink(&mut self, a: ClusterId, b: ClusterId) -> bool {
        let Some(sa) = self.slot_of(a) else {
            return false;
        };
        let Ok(pos_b) = self.slots[sa as usize].neighbors.binary_search(&b) else {
            return false;
        };
        self.slots[sa as usize].neighbors.remove(pos_b);
        // INVARIANT: edges are kept strictly symmetric — `b` holds
        // `a` in its neighbor vec, so both endpoints are live.
        // INVARIANT: symmetry again — `a` was found under `b`'s
        // slot's sorted neighbors because remove_edge maintains both
        // directions atomically.
        let sb = self.slot_of(b).expect("symmetric adjacency");
        let pos_a = self.slots[sb as usize]
            .neighbors
            .binary_search(&a)
                // INVARIANT: symmetric adjacency — the departing id is in
                // each former neighbor's sorted vec.
            .expect("symmetric adjacency");
        self.slots[sb as usize].neighbors.remove(pos_a);
        self.edges -= 1;
        true
    }

    /// OVER `Add` with caller-chosen neighbor candidates (in preference
    /// order, normally produced by `randCl`). Links until the target
    /// degree is reached or candidates run out; returns the neighbors
    /// actually linked.
    pub fn add_with_candidates(
        &mut self,
        id: ClusterId,
        candidates: &[ClusterId],
    ) -> Vec<ClusterId> {
        self.insert_vertex(id);
        let want = self.params.target_degree();
        let mut linked = Vec::new();
        for &c in candidates {
            if linked.len() >= want {
                break;
            }
            if self.link(id, c) {
                linked.push(c);
            }
        }
        linked
    }

    /// OVER `Add` with uniform sampling over existing vertices.
    ///
    /// Candidates come from the incremental sampling pool by rejection
    /// (expected O(1) per accepted link while most vertices are
    /// linkable — the overwhelmingly common case), with a bounded
    /// attempt budget; the rare dense/degenerate corner (most vertices
    /// at the cap or already neighbors) falls back to the exhaustive
    /// partial Fisher–Yates scan, keeping the postcondition exact.
    pub fn add_uniform<R: Rng>(&mut self, id: ClusterId, rng: &mut R) -> Vec<ClusterId> {
        self.insert_vertex(id);
        let others = self.vertex_count() - 1;
        let want = self.params.target_degree().min(others);
        let mut linked = Vec::new();
        let mut attempts = 0usize;
        let budget = 6 * want + 16;
        while linked.len() < want && attempts < budget {
            attempts += 1;
            let cand = self.sample_vertex(rng);
            if cand != id && self.link(id, cand) {
                linked.push(cand);
            }
        }
        if linked.len() < want {
            self.link_exhaustive(id, want - linked.len(), rng, &mut linked);
        }
        linked
    }

    /// The exhaustive fallback: partial Fisher–Yates over every
    /// remaining linkable vertex (O(V); reached only when rejection
    /// sampling's budget ran out).
    fn link_exhaustive<R: Rng>(
        &mut self,
        id: ClusterId,
        mut want_more: usize,
        rng: &mut R,
        linked: &mut Vec<ClusterId>,
    ) {
        let mut rest: Vec<ClusterId> = self
            .vertices()
            .filter(|&v| v != id && !self.has_edge(id, v))
            .collect();
        let mut i = 0;
        while want_more > 0 && i < rest.len() {
            let j = rng.gen_range(i..rest.len());
            rest.swap(i, j);
            if self.link(id, rest[i]) {
                linked.push(rest[i]);
                want_more -= 1;
            }
            i += 1;
        }
    }

    /// OVER `Remove`: deletes `id` and its edges (freeing its slab
    /// slot), then repairs every former neighbor that fell below the
    /// degree floor by linking it to fresh uniform vertices. Returns
    /// the former neighbors.
    pub fn remove<R: Rng>(&mut self, id: ClusterId, rng: &mut R) -> Vec<ClusterId> {
        let Some(pos) = self.index.binary_search_by_key(&id, |&(i, _)| i).ok() else {
            return Vec::new();
        };
        let slot = self.index[pos].1;
        self.index.remove(pos);
        self.forget_sample(slot);
        let former = {
            let v = &mut self.slots[slot as usize];
            v.live = false;
            std::mem::take(&mut v.neighbors)
        };
        self.free.push(slot);
        self.edges -= former.len();
        for &n in &former {
            // INVARIANT: `former` lists the departing vertex's neighbors,
            // each of which is live and symmetric.
            let sn = self.slot_of(n).expect("symmetric adjacency");
            // INVARIANT: symmetry again — the departing id is in
            // each former neighbor's sorted vec.
            let p = self.slots[sn as usize]
                .neighbors
                .binary_search(&id)
                .expect("symmetric adjacency");
            self.slots[sn as usize].neighbors.remove(p);
        }
        // Repairs run in ascending neighbor-id order — the canonical
        // order the rng-consumption determinism contract pins.
        for &n in &former {
            self.repair_floor(n, rng);
        }
        former
    }

    /// Tops `id` up to the degree floor with uniform random links (to
    /// vertices below the cap). Returns how many edges were added.
    ///
    /// An at-floor vertex returns without touching the pool or the rng
    /// — the common case of `remove`'s neighbor repairs — and deficits
    /// are filled by rejection sampling against the incremental pool
    /// (exhaustive-scan fallback for the saturated corner), so the
    /// per-op cost no longer carries an O(V) candidate materialization.
    pub fn repair_floor<R: Rng>(&mut self, id: ClusterId, rng: &mut R) -> usize {
        if !self.contains(id) {
            return 0;
        }
        let floor = self
            .params
            .degree_floor()
            .min(self.vertex_count().saturating_sub(1));
        if self.degree(id) >= floor {
            return 0;
        }
        let mut added = 0;
        let mut attempts = 0usize;
        let budget = 6 * (floor - self.degree(id)) + 16;
        while self.degree(id) < floor && attempts < budget {
            attempts += 1;
            let cand = self.sample_vertex(rng);
            if cand != id && self.link(id, cand) {
                added += 1;
            }
        }
        if self.degree(id) < floor {
            let mut linked = Vec::new();
            self.link_exhaustive(id, floor - self.degree(id), rng, &mut linked);
            added += linked.len();
        }
        added
    }

    /// Exports a dense snapshot for analysis: the graph plus the
    /// id-order index mapping (`index[i]` is the cluster at dense
    /// vertex `i`).
    pub fn to_dense(&self) -> (Graph, Vec<ClusterId>) {
        let ids: Vec<ClusterId> = self.vertices().collect();
        let mut g = Graph::new(ids.len());
        for (i, &v) in ids.iter().enumerate() {
            for &w in self.neighbors(v) {
                if v < w {
                    // INVARIANT: `ids` is the sorted live-vertex list and
                    // neighbors of live vertices are live.
                    let j = ids.binary_search(&w).expect("neighbor is live");
                    g.add_edge(i, j);
                }
            }
        }
        (g, ids)
    }

    /// Measures the overlay against Properties 1–2 (see
    /// [`OverlayAudit`]).
    pub fn audit(&self) -> OverlayAudit {
        OverlayAudit::measure(self)
    }

    /// Structural invariant check used by tests and debug assertions:
    /// symmetry, no self-loops, sorted neighbor vecs, consistent edge
    /// count, degree cap, slab/freelist/pool exactness.
    pub fn check_invariants(&self) -> Result<(), String> {
        // INVARIANT: `windows(2)` only yields slices of length 2.
        if self.index.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("vertex index out of order".to_string());
        }
        let mut count = 0usize;
        for &(v, slot) in &self.index {
            let Some(s) = self.slots.get(slot as usize) else {
                return Err(format!("vertex {v} indexed at bogus slot {slot}"));
            };
            if !s.live {
                return Err(format!("vertex {v} indexed at dead slot {slot}"));
            }
            if s.id != v {
                return Err(format!("slot id drift: {v} indexed, slot holds {}", s.id));
            }
            // INVARIANT: `windows(2)` only yields slices of length 2.
            if s.neighbors.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbor vec of {v} out of order"));
            }
            if s.neighbors.binary_search(&v).is_ok() {
                return Err(format!("self-loop at {v}"));
            }
            if s.neighbors.len() > self.params.degree_cap() {
                return Err(format!(
                    "degree cap violated at {v}: {} > {}",
                    s.neighbors.len(),
                    self.params.degree_cap()
                ));
            }
            for &w in &s.neighbors {
                if !self.has_edge(w, v) {
                    return Err(format!("asymmetric edge {v}–{w}"));
                }
                count += 1;
            }
        }
        if count != 2 * self.edges {
            return Err(format!(
                "edge count drift: counted {count}, cached {}",
                2 * self.edges
            ));
        }
        let live = self.slots.iter().filter(|s| s.live).count();
        if live != self.index.len() {
            return Err(format!(
                "slab drift: {live} live slots vs {} indexed",
                self.index.len()
            ));
        }
        if self.free.len() + live != self.slots.len() {
            return Err(format!(
                "freelist drift: {} free + {live} live != {} slots",
                self.free.len(),
                self.slots.len()
            ));
        }
        for &slot in &self.free {
            match self.slots.get(slot as usize) {
                Some(s) if !s.live => {}
                _ => return Err(format!("freelist holds live/bogus slot {slot}")),
            }
        }
        if self.sample_pool.len() != self.index.len() {
            return Err(format!(
                "sampling pool drift: {} pooled, {} live",
                self.sample_pool.len(),
                self.index.len()
            ));
        }
        for (i, &v) in self.sample_pool.iter().enumerate() {
            let Some(slot) = self.slot_of(v) else {
                return Err(format!("dead vertex {v} in sampling pool"));
            };
            if self.slots[slot as usize].pool_pos as usize != i {
                return Err(format!("sampling position drift at {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::DetRng;
    use proptest::prelude::*;

    fn ids(n: u64) -> Vec<ClusterId> {
        (0..n).map(ClusterId::from_raw).collect()
    }

    fn params() -> OverParams {
        OverParams::for_capacity(1 << 12) // target degree 16 (12^1.1≈15.4)
    }

    #[test]
    fn init_links_to_target_degree_on_average() {
        let mut rng = DetRng::new(1);
        let overlay = Overlay::init_random(&ids(200), params(), &mut rng);
        overlay.check_invariants().unwrap();
        let mean = 2.0 * overlay.edge_count() as f64 / overlay.vertex_count() as f64;
        let target = params().target_degree() as f64;
        assert!(
            (mean - target).abs() < 0.25 * target,
            "mean degree {mean}, target {target}"
        );
    }

    #[test]
    fn init_leaves_no_vertex_below_floor() {
        let mut rng = DetRng::new(2);
        let overlay = Overlay::init_random(&ids(100), params(), &mut rng);
        let floor = params().degree_floor();
        for v in overlay.vertices() {
            assert!(
                overlay.degree(v) >= floor.min(overlay.vertex_count() - 1),
                "vertex {v} below floor: {}",
                overlay.degree(v)
            );
        }
    }

    #[test]
    fn add_uniform_reaches_target_degree() {
        let mut rng = DetRng::new(3);
        let mut overlay = Overlay::init_random(&ids(100), params(), &mut rng);
        let newcomer = ClusterId::from_raw(999);
        let linked = overlay.add_uniform(newcomer, &mut rng);
        assert_eq!(linked.len(), params().target_degree());
        assert_eq!(overlay.degree(newcomer), params().target_degree());
        overlay.check_invariants().unwrap();
    }

    #[test]
    fn add_with_candidates_respects_preference_order() {
        let mut rng = DetRng::new(4);
        let mut overlay = Overlay::init_random(&ids(50), params(), &mut rng);
        let newcomer = ClusterId::from_raw(999);
        let candidates: Vec<ClusterId> = ids(50);
        let linked = overlay.add_with_candidates(newcomer, &candidates);
        assert_eq!(linked.len(), params().target_degree());
        assert_eq!(linked, candidates[..linked.len()].to_vec());
    }

    #[test]
    fn add_into_tiny_overlay_links_everyone() {
        let mut rng = DetRng::new(5);
        let mut overlay = Overlay::new(params());
        overlay.insert_vertex(ClusterId::from_raw(0));
        overlay.insert_vertex(ClusterId::from_raw(1));
        let linked = overlay.add_uniform(ClusterId::from_raw(2), &mut rng);
        assert_eq!(linked.len(), 2, "only 2 candidates exist");
        overlay.check_invariants().unwrap();
    }

    #[test]
    fn link_refuses_cap_violation() {
        let small = OverParams::new(16, 0.1, 2); // cap = 2·⌈4^1.1⌉ = 2·5 = 10
        let cap = small.degree_cap();
        let mut overlay = Overlay::new(small);
        let hub = ClusterId::from_raw(0);
        overlay.insert_vertex(hub);
        for i in 1..=(cap as u64 + 5) {
            overlay.insert_vertex(ClusterId::from_raw(i));
        }
        let mut linked = 0;
        for i in 1..=(cap as u64 + 5) {
            if overlay.link(hub, ClusterId::from_raw(i)) {
                linked += 1;
            }
        }
        assert_eq!(linked, cap);
        assert_eq!(overlay.degree(hub), cap);
        overlay.check_invariants().unwrap();
    }

    #[test]
    fn link_rejects_degenerate_cases() {
        let mut overlay = Overlay::new(params());
        let a = ClusterId::from_raw(0);
        let b = ClusterId::from_raw(1);
        overlay.insert_vertex(a);
        assert!(!overlay.link(a, a), "self-loop");
        assert!(!overlay.link(a, b), "absent endpoint");
        overlay.insert_vertex(b);
        assert!(overlay.link(a, b));
        assert!(!overlay.link(a, b), "duplicate edge");
    }

    #[test]
    fn remove_repairs_orphaned_neighbors() {
        let mut rng = DetRng::new(6);
        let mut overlay = Overlay::init_random(&ids(60), params(), &mut rng);
        let victim = ClusterId::from_raw(7);
        let former = overlay.remove(victim, &mut rng);
        assert!(!overlay.contains(victim));
        assert!(!former.is_empty());
        let floor = params().degree_floor();
        for v in overlay.vertices() {
            assert!(
                overlay.degree(v) >= floor.min(overlay.vertex_count() - 1),
                "{v} left below floor after repair"
            );
        }
        overlay.check_invariants().unwrap();
    }

    #[test]
    fn remove_absent_vertex_is_noop() {
        let mut rng = DetRng::new(7);
        let mut overlay = Overlay::new(params());
        assert!(overlay.remove(ClusterId::from_raw(9), &mut rng).is_empty());
    }

    #[test]
    fn removed_vertex_slot_is_recycled() {
        let mut rng = DetRng::new(9);
        let mut overlay = Overlay::init_random(&ids(30), params(), &mut rng);
        let victim = ClusterId::from_raw(3);
        overlay.remove(victim, &mut rng);
        assert!(overlay.neighbors(victim).is_empty(), "absent → empty slice");
        // A later add reuses the freed slot; the overlay stays exact.
        overlay.add_uniform(ClusterId::from_raw(500), &mut rng);
        assert!(overlay.contains(ClusterId::from_raw(500)));
        overlay.check_invariants().unwrap();
    }

    #[test]
    fn dense_snapshot_matches_overlay() {
        let mut rng = DetRng::new(8);
        let overlay = Overlay::init_random(&ids(40), params(), &mut rng);
        let (g, index) = overlay.to_dense();
        assert_eq!(g.vertex_count(), overlay.vertex_count());
        assert_eq!(g.edge_count(), overlay.edge_count());
        for (i, &ci) in index.iter().enumerate() {
            assert_eq!(g.degree(i), overlay.degree(ci));
        }
    }

    #[test]
    fn unlink_roundtrip() {
        let mut overlay = Overlay::new(params());
        let a = ClusterId::from_raw(0);
        let b = ClusterId::from_raw(1);
        overlay.insert_vertex(a);
        overlay.insert_vertex(b);
        overlay.link(a, b);
        assert!(overlay.unlink(a, b));
        assert!(!overlay.unlink(a, b));
        assert_eq!(overlay.edge_count(), 0);
        overlay.check_invariants().unwrap();
    }

    proptest! {
        /// Invariants survive arbitrary interleaved add/remove scripts.
        #[test]
        fn invariants_under_churn_script(script in proptest::collection::vec((any::<bool>(), 0u64..40), 1..120), seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let mut overlay = Overlay::init_random(&ids(20), params(), &mut rng);
            let mut next_id = 1000u64;
            for (is_add, target) in script {
                if is_add {
                    overlay.add_uniform(ClusterId::from_raw(next_id), &mut rng);
                    next_id += 1;
                } else if overlay.vertex_count() > 3 {
                    // Remove an arbitrary live vertex.
                    let live: Vec<ClusterId> = overlay.vertices().collect();
                    let victim = live[(target as usize) % live.len()];
                    overlay.remove(victim, &mut rng);
                }
                prop_assert!(overlay.check_invariants().is_ok(),
                             "{:?}", overlay.check_invariants());
            }
        }
    }
}
