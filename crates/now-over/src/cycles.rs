//! Law–Siu random-cycles expander — the constant-degree alternative.
//!
//! §3 of the paper: NOW "could also be ensured by other protocols which
//! differ either in the number of failures they can \[tolerate\] or
//! their degree (e.g. 4 in \[2\] instead of log^{1+α}N in OVER)". The
//! canonical constant-degree construction from the paper's related work
//! is Law & Siu (reference \[26\], INFOCOM 2003): the overlay is the
//! **union of `r` independent Hamiltonian cycles** over the vertex set.
//!
//! * Every vertex has degree at most `2r` — constant, against OVER's
//!   `Θ(log^{1+α}N)`.
//! * Insertion splices the newcomer into each cycle at an independent
//!   uniformly random position (`O(r)` link updates — cheaper than
//!   OVER's `Add`).
//! * Removal splices the departed vertex out of each cycle
//!   (predecessor → successor), preserving all `r` cycles exactly.
//! * With `r ≥ 2` the union is an expander whp (Law & Siu's analysis);
//!   the trade-off against OVER is a *smaller* spectral gap at equal
//!   vertex count — longer walks for the same walk accuracy — which is
//!   exactly what experiment X-ALT measures.
//!
//! [`CyclesOverlay`] deliberately mirrors the read API of
//! [`crate::Overlay`] (vertices/neighbors/degree/audit) so the two can
//! be compared side by side.

use now_graph::traversal::is_connected;
use now_graph::{algebraic_connectivity, Graph, SpectralOptions};
use now_net::ClusterId;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// The union-of-`r`-random-cycles overlay (Law & Siu).
#[derive(Debug, Clone)]
pub struct CyclesOverlay {
    /// `succ[c][v]` = successor of `v` in cycle `c`.
    succ: Vec<BTreeMap<ClusterId, ClusterId>>,
    /// `pred[c][v]` = predecessor of `v` in cycle `c`.
    pred: Vec<BTreeMap<ClusterId, ClusterId>>,
    order: BTreeSet<ClusterId>,
}

impl CyclesOverlay {
    /// Builds the overlay on `ids` as `r` independent uniformly random
    /// cycles.
    ///
    /// # Panics
    /// Panics if `r == 0` or `ids` contains duplicates.
    pub fn init<R: Rng>(ids: &[ClusterId], r: usize, rng: &mut R) -> Self {
        assert!(r > 0, "need at least one cycle");
        let unique: BTreeSet<ClusterId> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate vertex ids");
        let mut overlay = CyclesOverlay {
            succ: vec![BTreeMap::new(); r],
            pred: vec![BTreeMap::new(); r],
            order: unique,
        };
        for c in 0..r {
            let mut perm: Vec<ClusterId> = ids.to_vec();
            now_graph::sample::shuffle(&mut perm, rng);
            for (i, &v) in perm.iter().enumerate() {
                // INVARIANT: `(i + 1) % len < len`; perm is non-empty here
                // (enumerate yielded an element).
                let next = perm[(i + 1) % perm.len()];
                overlay.succ[c].insert(v, next);
                overlay.pred[c].insert(next, v);
            }
        }
        overlay
    }

    /// Number of cycles `r` (max degree is `2r`).
    pub fn cycle_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.order.len()
    }

    /// Whether `id` is a live vertex.
    pub fn contains(&self, id: ClusterId) -> bool {
        self.order.contains(&id)
    }

    /// Live vertices in id order.
    pub fn vertices(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.order.iter().copied()
    }

    /// Distinct neighbors of `id` across all cycles (empty if absent).
    pub fn neighbors(&self, id: ClusterId) -> Vec<ClusterId> {
        let mut out = BTreeSet::new();
        for c in 0..self.cycle_count() {
            if let Some(&s) = self.succ[c].get(&id) {
                if s != id {
                    out.insert(s);
                }
            }
            if let Some(&p) = self.pred[c].get(&id) {
                if p != id {
                    out.insert(p);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Degree of `id` in the union graph (≤ `2r`).
    pub fn degree(&self, id: ClusterId) -> usize {
        self.neighbors(id).len()
    }

    /// Number of edges of the union graph.
    pub fn edge_count(&self) -> usize {
        self.order.iter().map(|&v| self.degree(v)).sum::<usize>() / 2
    }

    /// Splices `id` into every cycle at an independent uniformly random
    /// position. No-op if already present.
    pub fn insert<R: Rng>(&mut self, id: ClusterId, rng: &mut R) {
        if !self.order.insert(id) {
            return;
        }
        let live: Vec<ClusterId> = self.order.iter().copied().filter(|&v| v != id).collect();
        for c in 0..self.cycle_count() {
            if live.is_empty() {
                self.succ[c].insert(id, id);
                self.pred[c].insert(id, id);
                continue;
            }
            // INVARIANT: `live` is non-empty on this branch (the insert
            // handled the empty-cycle case above); the draw is 0..len.
            let after = live[rng.gen_range(0..live.len())];
            // INVARIANT: every live vertex appears in every cycle's
            // successor map — `after` was just drawn from the live set.
            let next = self.succ[c][&after];
            self.succ[c].insert(after, id);
            self.succ[c].insert(id, next);
            self.pred[c].insert(next, id);
            self.pred[c].insert(id, after);
        }
    }

    /// Splices `id` out of every cycle (predecessor links to
    /// successor). Returns whether the vertex was present.
    pub fn remove(&mut self, id: ClusterId) -> bool {
        if !self.order.remove(&id) {
            return false;
        }
        for c in 0..self.cycle_count() {
            // INVARIANT: membership in `order` (checked above) means the
            // vertex is threaded through every cycle's pred/succ maps.
            let p = self.pred[c].remove(&id).expect("present in every cycle");
            // INVARIANT: as above, for the successor direction.
            let s = self.succ[c].remove(&id).expect("present in every cycle");
            if p != id {
                self.succ[c].insert(p, s);
                self.pred[c].insert(s, p);
            }
        }
        true
    }

    /// Dense snapshot of the union graph with the id ↦ index mapping
    /// (for the spectral machinery of `now-graph`).
    pub fn to_dense(&self) -> (Graph, Vec<ClusterId>) {
        let ids: Vec<ClusterId> = self.order.iter().copied().collect();
        let index: BTreeMap<ClusterId, usize> =
            ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut g = Graph::new(ids.len());
        for &v in &ids {
            for nbr in self.neighbors(v) {
                if v < nbr {
                    // INVARIANT: `index` maps every live id, and neighbors of
                    // live vertices are live.
                    g.add_edge(index[&v], index[&nbr]);
                }
            }
        }
        (g, ids)
    }

    /// Structural self-check: every cycle is a single closed tour over
    /// exactly the live vertex set.
    pub fn check_invariants(&self) -> Result<(), String> {
        for c in 0..self.cycle_count() {
            if self.succ[c].len() != self.order.len() {
                return Err(format!(
                    "cycle {c}: {} successor entries vs {} vertices",
                    self.succ[c].len(),
                    self.order.len()
                ));
            }
            let Some(&start) = self.order.first() else {
                continue;
            };
            let mut seen = BTreeSet::new();
            let mut cur = start;
            loop {
                if !seen.insert(cur) {
                    return Err(format!("cycle {c}: revisited {cur} before closing"));
                }
                let Some(&next) = self.succ[c].get(&cur) else {
                    return Err(format!("cycle {c}: {cur} has no successor"));
                };
                if self.pred[c].get(&next) != Some(&cur) {
                    return Err(format!("cycle {c}: pred/succ mismatch at {cur}->{next}"));
                }
                cur = next;
                if cur == start {
                    break;
                }
            }
            if seen.len() != self.order.len() {
                return Err(format!(
                    "cycle {c} closes after {} of {} vertices (split tour)",
                    seen.len(),
                    self.order.len()
                ));
            }
        }
        Ok(())
    }

    /// Spectral health snapshot of the union graph.
    pub fn audit(&self) -> CyclesAudit {
        let (g, _) = self.to_dense();
        let n = g.vertex_count();
        let lambda2 = if n >= 2 {
            algebraic_connectivity(&g, SpectralOptions::default())
        } else {
            0.0
        };
        CyclesAudit {
            vertex_count: n,
            edge_count: g.edge_count(),
            max_degree: g.max_degree(),
            min_degree: if n == 0 { 0 } else { g.min_degree() },
            connected: is_connected(&g),
            lambda2,
            degree_bound_holds: g.max_degree() <= 2 * self.cycle_count(),
        }
    }
}

/// Health snapshot of a [`CyclesOverlay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclesAudit {
    /// Live vertices.
    pub vertex_count: usize,
    /// Union-graph edges.
    pub edge_count: usize,
    /// Maximum union-graph degree (≤ 2r structurally).
    pub max_degree: usize,
    /// Minimum union-graph degree.
    pub min_degree: usize,
    /// Whether the union graph is connected (each cycle alone already
    /// is, so this can only fail on degenerate sizes).
    pub connected: bool,
    /// Algebraic connectivity λ₂ of the union graph.
    pub lambda2: f64,
    /// Whether `max_degree ≤ 2r`.
    pub degree_bound_holds: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::DetRng;

    fn ids(n: u64) -> Vec<ClusterId> {
        (0..n).map(ClusterId::from_raw).collect()
    }

    #[test]
    fn init_builds_r_closed_tours() {
        let mut rng = DetRng::new(1);
        let overlay = CyclesOverlay::init(&ids(40), 3, &mut rng);
        overlay.check_invariants().unwrap();
        assert_eq!(overlay.vertex_count(), 40);
        assert_eq!(overlay.cycle_count(), 3);
        let audit = overlay.audit();
        assert!(audit.connected, "one cycle alone is connected");
        assert!(audit.max_degree <= 6);
        assert!(audit.degree_bound_holds);
    }

    #[test]
    fn degree_cap_is_two_r() {
        let mut rng = DetRng::new(2);
        for r in [1usize, 2, 4] {
            let overlay = CyclesOverlay::init(&ids(60), r, &mut rng);
            for v in overlay.vertices() {
                assert!(
                    overlay.degree(v) <= 2 * r,
                    "degree {} > 2r",
                    overlay.degree(v)
                );
            }
        }
    }

    #[test]
    fn insert_splices_into_every_cycle() {
        let mut rng = DetRng::new(3);
        let mut overlay = CyclesOverlay::init(&ids(20), 2, &mut rng);
        let newcomer = ClusterId::from_raw(99);
        overlay.insert(newcomer, &mut rng);
        overlay.check_invariants().unwrap();
        assert!(overlay.contains(newcomer));
        assert_eq!(overlay.vertex_count(), 21);
        let d = overlay.degree(newcomer);
        assert!((1..=4).contains(&d), "degree {d} out of [1, 2r]");
        // Re-insert is a no-op.
        overlay.insert(newcomer, &mut rng);
        assert_eq!(overlay.vertex_count(), 21);
    }

    #[test]
    fn remove_preserves_the_tours() {
        let mut rng = DetRng::new(4);
        let mut overlay = CyclesOverlay::init(&ids(30), 2, &mut rng);
        for victim in [5u64, 11, 23] {
            assert!(overlay.remove(ClusterId::from_raw(victim)));
            overlay.check_invariants().unwrap();
        }
        assert_eq!(overlay.vertex_count(), 27);
        assert!(!overlay.remove(ClusterId::from_raw(5)), "double remove");
        assert!(overlay.audit().connected);
    }

    /// Law & Siu: r ≥ 2 random cycles form an expander whp. λ₂ of a
    /// single cycle on n vertices is ~(2π/n)² — vanishing; the union of
    /// two stays bounded away from 0. Asserted over a 5-seed quantile
    /// ensemble rather than one pinned seed (ROADMAP "statistical-test
    /// robustness"). Measured two-cycle λ₂ ensemble on the vendored
    /// stream: [0.585, 0.614, 0.669, 0.703, 0.791].
    #[test]
    fn union_of_two_cycles_expands() {
        let mut l2s = Vec::new();
        for seed in [5u64, 6, 7, 8, 9] {
            let mut rng = DetRng::new(seed);
            let single = CyclesOverlay::init(&ids(64), 1, &mut rng);
            let double = CyclesOverlay::init(&ids(64), 2, &mut rng);
            // A single cycle is C₆₄ whatever the permutation: its λ₂ is
            // structural, not statistical.
            let l1 = single.audit().lambda2;
            assert!(l1 < 0.1, "one 64-cycle has tiny λ₂, got {l1} (seed {seed})");
            l2s.push(double.audit().lambda2);
        }
        l2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            l2s[l2s.len() / 2] > 0.4,
            "median two-cycle λ₂ too small: {l2s:?}"
        );
        assert!(l2s[0] > 0.3, "worst-seed two-cycle λ₂ collapsed: {l2s:?}");
    }

    /// Expansion survives sustained churn, over a 5-seed quantile
    /// ensemble (ROADMAP "statistical-test robustness"). Measured λ₂
    /// ensemble on the vendored stream:
    /// [0.387, 0.668, 0.689, 0.702, 0.704].
    #[test]
    fn churn_keeps_expansion() {
        let mut l2s = Vec::new();
        for seed in [6u64, 7, 8, 9, 10] {
            let mut rng = DetRng::new(seed);
            let mut overlay = CyclesOverlay::init(&ids(40), 2, &mut rng);
            let mut next = 100u64;
            for round in 0..200 {
                if round % 2 == 0 {
                    overlay.insert(ClusterId::from_raw(next), &mut rng);
                    next += 1;
                } else {
                    let live: Vec<ClusterId> = overlay.vertices().collect();
                    overlay.remove(live[round % live.len()]);
                }
            }
            overlay.check_invariants().unwrap();
            let audit = overlay.audit();
            assert!(audit.connected, "disconnected under churn (seed {seed})");
            assert!(audit.degree_bound_holds, "degree bound broke (seed {seed})");
            l2s.push(audit.lambda2);
        }
        l2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            l2s[l2s.len() / 2] > 0.4,
            "median λ₂ collapsed under churn: {l2s:?}"
        );
        assert!(l2s[0] > 0.2, "worst-seed λ₂ collapsed under churn: {l2s:?}");
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = DetRng::new(7);
        let mut overlay = CyclesOverlay::init(&ids(1), 2, &mut rng);
        overlay.check_invariants().unwrap();
        assert_eq!(
            overlay.degree(ClusterId::from_raw(0)),
            0,
            "self-loops hidden"
        );
        overlay.insert(ClusterId::from_raw(1), &mut rng);
        overlay.check_invariants().unwrap();
        assert_eq!(overlay.degree(ClusterId::from_raw(0)), 1);
        overlay.remove(ClusterId::from_raw(0));
        overlay.check_invariants().unwrap();
        assert_eq!(overlay.vertex_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_rejected() {
        let mut rng = DetRng::new(8);
        let _ = CyclesOverlay::init(&ids(5), 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_rejected() {
        let mut rng = DetRng::new(9);
        let dup = vec![ClusterId::from_raw(1), ClusterId::from_raw(1)];
        let _ = CyclesOverlay::init(&dup, 2, &mut rng);
    }
}
