//! Applications over the NOW cluster overlay (§6 of the paper).
//!
//! The paper's concluding remarks quantify what the clustering buys:
//! *"A broadcast algorithm using our technique would have for instance
//! Õ(n) message complexity as compared to O(n²) without the clustering.
//! Similarly, a sampling algorithm relying on our protocol would have a
//! polylog(n) message complexity per sample."* This crate implements
//! those applications — plus aggregation, cluster-level agreement, and
//! the secure polling of the paper's reference \[12\] — directly on a
//! live [`now_core::NowSystem`], with exact cost accounting, so
//! experiments X-A1/X-A2 can measure the claims against the naive
//! baselines in [`now_sim::baselines`].
//!
//! All inter-cluster traffic follows the quorum rule: a message from
//! cluster `C` to cluster `D` costs `|C|·|D|` point-to-point messages
//! (every member of `C` to every member of `D`), and `D`'s members
//! accept it only with more than half of `C` behind it.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod agreement_app;
pub mod broadcast;
pub mod polling;
pub mod sampling;

pub use aggregate::{aggregate_count, AggregateReport};
pub use agreement_app::{cluster_agreement, AgreementReport};
pub use broadcast::{broadcast, BroadcastReport};
pub use polling::{poll, PollReport};
pub use sampling::{sample_node, SampleReport};
