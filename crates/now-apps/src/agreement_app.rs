//! System-wide agreement through the cluster overlay.
//!
//! §1 of the paper: instead of reducing `n` processes to *one* reliable
//! process (full-network Byzantine agreement, `Ω(n²)` per decision),
//! NOW reduces them to `#C` reliable super-nodes. A system-wide decision
//! then costs one intra-cluster agreement (the leader cluster, which is
//! more than 2/3 honest whp, acts as the "single highly available process")
//! plus one overlay broadcast — `Õ(n)` in total.

use crate::broadcast::broadcast;
use now_core::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::BTreeMap;

/// Outcome of one system-wide agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementReport {
    /// The cluster that acted as the deciding super-node.
    pub leader: ClusterId,
    /// The decided value.
    pub decided: u64,
    /// Messages spent (leader-internal agreement + overlay broadcast).
    pub messages: u64,
    /// Rounds spent.
    pub rounds: u64,
    /// Whether the decision reached every cluster.
    pub complete: bool,
}

/// Decides one value system-wide from per-cluster `proposals`.
///
/// The leader is the smallest live cluster id (any deterministic rule
/// known to all works — cluster ids are common knowledge through the
/// overlay views). The leader picks a proposal: its own if present, else
/// the proposal of the smallest proposing cluster; leader-internal
/// coordination costs one `randNum`-style all-to-all round. The decision
/// is then flooded with [`broadcast`].
///
/// Returns `None` if `proposals` is empty.
///
/// # Panics
/// Panics if a proposing cluster id is not live.
pub fn cluster_agreement(
    sys: &mut NowSystem,
    proposals: &BTreeMap<ClusterId, u64>,
) -> Option<AgreementReport> {
    if proposals.is_empty() {
        return None;
    }
    for &c in proposals.keys() {
        assert!(
            sys.cluster(c).is_some(),
            "agreement: unknown proposing cluster {c}"
        );
    }
    let before = sys.ledger().total();
    sys.ledger_mut().begin(CostKind::Agreement);

    // INVARIANT: LastCluster guard — the id list is non-empty.
    let leader = sys.cluster_ids()[0];
    let decided = proposals
        .get(&leader)
        .or_else(|| proposals.values().next())
        .copied()
        // INVARIANT: the empty-proposals case returned early above.
        .expect("non-empty proposals");

    // Leader-internal coordination: one all-to-all round.
    let leader_size = sys.cluster(leader).map(|c| c.size() as u64).unwrap_or(0);
    sys.ledger_mut()
        .add_messages(leader_size * leader_size.saturating_sub(1));
    sys.ledger_mut().add_rounds(1);
    sys.ledger_mut().end();

    // Disseminate the decision (separately accounted as Broadcast).
    let bc = broadcast(sys, leader);
    let spent = sys.ledger().total();

    Some(AgreementReport {
        leader,
        decided,
        messages: spent.messages - before.messages,
        rounds: spent.rounds - before.rounds,
        complete: bc.complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::{NowParams, NowSystem};
    use now_sim::baselines::single_cluster_round_cost;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    fn all_propose(sys: &NowSystem, value_of: impl Fn(u64) -> u64) -> BTreeMap<ClusterId, u64> {
        sys.cluster_ids()
            .into_iter()
            .map(|c| (c, value_of(c.raw())))
            .collect()
    }

    #[test]
    fn leader_proposal_wins_and_reaches_all() {
        let mut sys = system(300, 1);
        let proposals = all_propose(&sys, |raw| raw * 10);
        let leader = sys.cluster_ids()[0];
        let report = cluster_agreement(&mut sys, &proposals).unwrap();
        assert_eq!(report.leader, leader);
        assert_eq!(report.decided, leader.raw() * 10);
        assert!(report.complete);
    }

    #[test]
    fn empty_proposals_yield_none() {
        let mut sys = system(100, 2);
        assert!(cluster_agreement(&mut sys, &BTreeMap::new()).is_none());
    }

    #[test]
    fn agreement_beats_single_cluster_bft() {
        let mut sys = system(600, 3);
        let proposals = all_propose(&sys, |r| r);
        let report = cluster_agreement(&mut sys, &proposals).unwrap();
        // The §1 comparison: full-network BFT needs Ω(n²) per round and
        // multiple rounds (take 3 as a floor).
        let naive = single_cluster_round_cost(sys.population(), 3);
        assert!(
            report.messages < naive / 4,
            "clustered {} vs single-cluster {naive}",
            report.messages
        );
    }

    #[test]
    fn non_leader_proposal_used_when_leader_silent() {
        let mut sys = system(200, 4);
        let ids = sys.cluster_ids();
        let mut proposals = BTreeMap::new();
        proposals.insert(ids[1], 777u64);
        let report = cluster_agreement(&mut sys, &proposals).unwrap();
        assert_eq!(report.decided, 777);
    }

    #[test]
    #[should_panic(expected = "unknown proposing cluster")]
    fn unknown_proposer_panics() {
        let mut sys = system(100, 5);
        let mut proposals = BTreeMap::new();
        proposals.insert(ClusterId::from_raw(88_888), 1u64);
        let _ = cluster_agreement(&mut sys, &proposals);
    }
}
