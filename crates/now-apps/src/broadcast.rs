//! Overlay broadcast: `Õ(n)` messages instead of `O(n²)`.

use now_core::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::{BTreeSet, VecDeque};

/// Outcome of one overlay broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastReport {
    /// Cluster the message originated in.
    pub origin: ClusterId,
    /// Point-to-point messages spent.
    pub messages: u64,
    /// Communication rounds (BFS depth + intra-cluster dissemination).
    pub rounds: u64,
    /// Clusters the message reached.
    pub clusters_reached: usize,
    /// Nodes the message reached.
    pub nodes_reached: u64,
    /// Whether every cluster (hence every node) was reached.
    pub complete: bool,
}

/// Floods a message from a node of `origin` over the cluster overlay.
///
/// One member disseminates within `origin` (`|C|−1` messages); then each
/// newly reached cluster relays to every neighbor it did not hear from,
/// at quorum cost `|C|·|D|` per relay. With overlay degree `O(log^{1+α}N)`
/// and cluster size `O(logN)`, the total is `Õ(n)` — experiment X-A1
/// compares against the naive `n(n−1)` flood.
///
/// Costs are recorded under [`CostKind::Broadcast`].
///
/// # Panics
/// Panics if `origin` is not a live cluster.
pub fn broadcast(sys: &mut NowSystem, origin: ClusterId) -> BroadcastReport {
    assert!(
        sys.cluster(origin).is_some(),
        "broadcast: unknown origin {origin}"
    );
    sys.ledger_mut().begin(CostKind::Broadcast);

    let mut messages = 0u64;
    let mut reached: BTreeSet<ClusterId> = BTreeSet::new();
    let mut queue: VecDeque<(ClusterId, u64)> = VecDeque::new();
    reached.insert(origin);
    queue.push_back((origin, 0));
    // Intra-origin dissemination by the initiating node.
    let origin_size = sys.cluster(origin).map(|c| c.size() as u64).unwrap_or(0);
    messages += origin_size.saturating_sub(1);
    let mut depth_max = 0u64;

    while let Some((c, depth)) = queue.pop_front() {
        depth_max = depth_max.max(depth);
        let c_size = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
        for &nbr in sys.overlay().neighbors(c) {
            if reached.contains(&nbr) {
                continue;
            }
            let nbr_size = sys.cluster(nbr).map(|cl| cl.size() as u64).unwrap_or(0);
            // Quorum-rule relay: every member of c to every member of nbr.
            messages += c_size * nbr_size;
            reached.insert(nbr);
            queue.push_back((nbr, depth + 1));
        }
    }

    let nodes_reached: u64 = reached
        .iter()
        .map(|&c| sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0))
        .sum();
    let rounds = depth_max + 1;
    sys.ledger_mut().add_messages(messages);
    sys.ledger_mut().add_rounds(rounds);
    sys.ledger_mut().end();

    BroadcastReport {
        origin,
        messages,
        rounds,
        clusters_reached: reached.len(),
        nodes_reached,
        complete: reached.len() == sys.cluster_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::{NowParams, NowSystem};
    use now_sim::baselines::naive_broadcast_cost;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    #[test]
    fn broadcast_reaches_everyone_on_connected_overlay() {
        let mut sys = system(300, 1);
        assert!(sys.overlay_audit().connected);
        let origin = sys.cluster_ids()[0];
        let report = broadcast(&mut sys, origin);
        assert!(report.complete);
        assert_eq!(report.clusters_reached, sys.cluster_count());
        assert_eq!(report.nodes_reached, sys.population());
        assert!(report.rounds >= 1);
    }

    #[test]
    fn broadcast_beats_naive_quadratic() {
        let mut sys = system(600, 2);
        let origin = sys.cluster_ids()[0];
        let report = broadcast(&mut sys, origin);
        let naive = naive_broadcast_cost(sys.population());
        assert!(
            report.messages < naive / 2,
            "clustered {} vs naive {naive}",
            report.messages
        );
    }

    #[test]
    fn broadcast_cost_is_accounted() {
        let mut sys = system(200, 3);
        let origin = sys.cluster_ids()[0];
        let report = broadcast(&mut sys, origin);
        let s = sys.ledger().stats(CostKind::Broadcast);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, report.messages);
        assert_eq!(s.total_rounds, report.rounds);
    }

    #[test]
    fn single_cluster_broadcast_is_intra_only() {
        let mut sys = system(20, 4); // one cluster
        let origin = sys.cluster_ids()[0];
        let report = broadcast(&mut sys, origin);
        assert!(report.complete);
        assert_eq!(report.messages, 19, "|C|−1 intra messages only");
        assert_eq!(report.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "unknown origin")]
    fn unknown_origin_panics() {
        let mut sys = system(100, 5);
        let ghost = ClusterId::from_raw(77_777);
        let _ = broadcast(&mut sys, ghost);
    }

    #[test]
    fn broadcast_scales_subquadratically() {
        // Õ(n): doubling n should far less than quadruple the cost.
        let cost = |n0: usize| {
            let mut sys = system(n0, 6);
            let origin = sys.cluster_ids()[0];
            broadcast(&mut sys, origin).messages as f64
        };
        let small = cost(300);
        let large = cost(600);
        assert!(
            large < 3.0 * small,
            "broadcast scaled quadratically: {small} → {large}"
        );
    }
}
