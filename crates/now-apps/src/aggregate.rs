//! Aggregation over a BFS tree of clusters.

use now_core::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of one aggregation (here: a population count, the simplest
/// verifiable aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateReport {
    /// Root cluster of the aggregation tree.
    pub root: ClusterId,
    /// The aggregate value (count of nodes in reached clusters).
    pub total: u64,
    /// Messages spent (tree construction + convergecast).
    pub messages: u64,
    /// Rounds (2 × tree depth: downstream request, upstream replies).
    pub rounds: u64,
    /// Whether every cluster contributed.
    pub complete: bool,
}

/// Counts the network's nodes by convergecast over a BFS tree of
/// clusters rooted at `root`: the request floods down (quorum cost per
/// tree edge), partial sums flow back up the same edges. Exactness is
/// checkable against [`NowSystem::population`] — the aggregation
/// analogue of §6's "efficient and robust algorithms for aggregation".
///
/// Costs are recorded under [`CostKind::Aggregation`].
///
/// # Panics
/// Panics if `root` is not a live cluster.
pub fn aggregate_count(sys: &mut NowSystem, root: ClusterId) -> AggregateReport {
    assert!(
        sys.cluster(root).is_some(),
        "aggregate: unknown root {root}"
    );
    sys.ledger_mut().begin(CostKind::Aggregation);

    // BFS tree.
    let mut parent: BTreeMap<ClusterId, ClusterId> = BTreeMap::new();
    let mut order: Vec<ClusterId> = Vec::new();
    let mut depth: BTreeMap<ClusterId, u64> = BTreeMap::new();
    let mut seen: BTreeSet<ClusterId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    depth.insert(root, 0);
    queue.push_back(root);
    let mut messages = 0u64;
    while let Some(c) = queue.pop_front() {
        order.push(c);
        let c_size = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
        for &nbr in sys.overlay().neighbors(c) {
            if seen.insert(nbr) {
                parent.insert(nbr, c);
                // INVARIANT: `c` was popped from the frontier, which only
                // holds keys already inserted into `depth`.
                depth.insert(nbr, depth[&c] + 1);
                let nbr_size = sys.cluster(nbr).map(|cl| cl.size() as u64).unwrap_or(0);
                messages += c_size * nbr_size; // downstream request
                queue.push_back(nbr);
            }
        }
    }

    // Convergecast: children report partial sums to parents, deepest
    // first; each report is a quorum message along the tree edge.
    let mut partial: BTreeMap<ClusterId, u64> = BTreeMap::new();
    for &c in order.iter().rev() {
        let own = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
        let sum = own + partial.get(&c).copied().unwrap_or(0);
        if let Some(&p) = parent.get(&c) {
            let c_size = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
            let p_size = sys.cluster(p).map(|cl| cl.size() as u64).unwrap_or(0);
            messages += c_size * p_size;
            *partial.entry(p).or_default() += sum;
        } else {
            partial.insert(c, sum);
        }
    }
    let total = partial.get(&root).copied().unwrap_or(0);
    let max_depth = depth.values().max().copied().unwrap_or(0);
    let rounds = 2 * max_depth + 1;
    sys.ledger_mut().add_messages(messages);
    sys.ledger_mut().add_rounds(rounds);
    sys.ledger_mut().end();

    AggregateReport {
        root,
        total,
        messages,
        rounds,
        complete: order.len() == sys.cluster_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::{NowParams, NowSystem};

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    #[test]
    fn count_is_exact_on_connected_overlay() {
        let mut sys = system(300, 1);
        assert!(sys.overlay_audit().connected);
        let root = sys.cluster_ids()[0];
        let report = aggregate_count(&mut sys, root);
        assert!(report.complete);
        assert_eq!(report.total, sys.population());
    }

    #[test]
    fn count_exact_from_any_root() {
        let mut sys = system(240, 2);
        for root in sys.cluster_ids() {
            let report = aggregate_count(&mut sys, root);
            assert_eq!(report.total, sys.population(), "root {root}");
        }
    }

    #[test]
    fn aggregation_costs_accounted_and_subquadratic() {
        let mut sys = system(500, 3);
        let root = sys.cluster_ids()[0];
        let report = aggregate_count(&mut sys, root);
        let s = sys.ledger().stats(CostKind::Aggregation);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, report.messages);
        let n = sys.population();
        assert!(
            report.messages < n * n / 2,
            "aggregation {} vs n² {}",
            report.messages,
            n * n
        );
    }

    #[test]
    fn single_cluster_aggregation() {
        let mut sys = system(20, 4);
        let root = sys.cluster_ids()[0];
        let report = aggregate_count(&mut sys, root);
        assert!(report.complete);
        assert_eq!(report.total, 20);
        assert_eq!(report.messages, 0, "no tree edges");
        assert_eq!(report.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "unknown root")]
    fn unknown_root_panics() {
        let mut sys = system(100, 5);
        let _ = aggregate_count(&mut sys, ClusterId::from_raw(31_337));
    }
}
