//! Uniform node sampling: `polylog(n)` messages per sample.

use now_core::NowSystem;
use now_net::{ClusterId, CostKind, NodeId};

/// Outcome of one sampling request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleReport {
    /// The sampled node.
    pub node: NodeId,
    /// Messages spent on this sample (walk + index draw).
    pub messages: u64,
    /// Rounds spent.
    pub rounds: u64,
}

/// Draws a uniformly random node of the network, as seen from a
/// requester in cluster `origin`: one `randCl` walk (size-biased cluster
/// choice) followed by one `randNum` (uniform member index) — together a
/// uniform draw over nodes, at `polylog(n)` message cost (§6's sampling
/// claim, measured by experiment X-A2).
///
/// Costs are recorded under [`CostKind::Sampling`].
///
/// # Panics
/// Panics if `origin` is not a live cluster.
pub fn sample_node(sys: &mut NowSystem, origin: ClusterId) -> SampleReport {
    assert!(
        sys.cluster(origin).is_some(),
        "sample: unknown origin {origin}"
    );
    let before = sys.ledger().total();
    sys.ledger_mut().begin(CostKind::Sampling);
    let (cluster, _) = sys.rand_cl_from(origin);
    let size = sys.cluster(cluster).map(|c| c.size()).unwrap_or(0).max(1);
    let idx = sys.rand_num(cluster, size as u64) as usize;
    let node = sys
        .cluster(cluster)
        // INVARIANT: RandCl walks end on live clusters, and `min`
        // clamps the member index below the just-read size.
        .expect("rand_cl returns live clusters")
        .member_at(idx.min(size - 1));
    // Result returned to the requester along the walk's path — one
    // quorum message per cluster boundary is already accounted by the
    // walk; the final hand-back costs |origin| messages.
    let origin_size = sys.cluster(origin).map(|c| c.size() as u64).unwrap_or(0);
    sys.ledger_mut().add_messages(origin_size);
    sys.ledger_mut().add_rounds(1);
    sys.ledger_mut().end();
    let spent = sys.ledger().total();

    SampleReport {
        node,
        messages: spent.messages - before.messages,
        rounds: spent.rounds - before.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::{NowParams, NowSystem};
    use now_sim::baselines::naive_sampling_cost;
    use std::collections::BTreeMap;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    #[test]
    fn sample_returns_live_node() {
        let mut sys = system(200, 1);
        let origin = sys.cluster_ids()[0];
        for _ in 0..20 {
            let r = sample_node(&mut sys, origin);
            assert!(sys.node_cluster(r.node).is_ok());
            assert!(r.messages > 0);
            assert!(r.rounds > 0);
        }
    }

    #[test]
    fn samples_are_nearly_uniform() {
        let mut sys = system(300, 2);
        let origin = sys.cluster_ids()[0];
        let trials = 3000usize;
        let mut counts: BTreeMap<NodeId, u64> = BTreeMap::new();
        for _ in 0..trials {
            let r = sample_node(&mut sys, origin);
            *counts.entry(r.node).or_default() += 1;
        }
        let n = sys.population() as f64;
        // Total-variation distance between the empirical law and uniform.
        let mut tv = 0.0;
        for node in sys.node_ids() {
            let got = *counts.get(&node).unwrap_or(&0) as f64 / trials as f64;
            tv += (got - 1.0 / n).abs();
        }
        tv /= 2.0;
        // With 3000 samples over 300 atoms, even a perfect sampler shows
        // TV ≈ sqrt(n/(2π·trials)) ≈ 0.12; bound generously above that.
        assert!(tv < 0.25, "TV from uniform: {tv}");
        // Spread check: a fair majority of nodes sampled at least once.
        assert!(
            counts.len() * 10 >= sys.population() as usize * 9,
            "only {} of {} nodes ever sampled",
            counts.len(),
            sys.population()
        );
    }

    #[test]
    fn sampling_cost_is_polylog_vs_naive_linear() {
        let mut sys = system(600, 3);
        let origin = sys.cluster_ids()[0];
        let mut total = 0u64;
        let trials = 10;
        for _ in 0..trials {
            total += sample_node(&mut sys, origin).messages;
        }
        let per_sample = total / trials;
        // §6's point is asymptotic; at n = 600 the quorum-weighted walk
        // constant is large, so compare *scaling*, not absolutes:
        let mut big = system(1000, 3);
        let big_origin = big.cluster_ids()[0];
        let mut big_total = 0u64;
        for _ in 0..trials {
            big_total += sample_node(&mut big, big_origin).messages;
        }
        let per_sample_big = big_total / trials;
        let n_ratio = 1000.0 / 600.0;
        let cost_ratio = per_sample_big as f64 / per_sample as f64;
        assert!(
            cost_ratio < n_ratio,
            "sampling cost grew superlinearly: ×{cost_ratio:.2} for n ×{n_ratio:.2}"
        );
        // And the naive baseline formula is what X-A2 compares against.
        assert_eq!(naive_sampling_cost(600), 1200);
    }

    #[test]
    fn sampling_is_accounted() {
        let mut sys = system(150, 4);
        let origin = sys.cluster_ids()[0];
        let r = sample_node(&mut sys, origin);
        let s = sys.ledger().stats(CostKind::Sampling);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, r.messages);
    }

    #[test]
    #[should_panic(expected = "unknown origin")]
    fn unknown_origin_panics() {
        let mut sys = system(100, 5);
        let _ = sample_node(&mut sys, ClusterId::from_raw(9_999));
    }
}
