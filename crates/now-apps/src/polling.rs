//! Secure polling over the cluster overlay.
//!
//! Reference \[12\] of the paper (Gambs, Guerraoui, Harkous, Huc,
//! Kermarrec — *Scalable and secure polling in dynamic distributed
//! networks*, SRDS 2012) is the worked application of exactly this
//! clustering: a binary poll whose outcome the adversary can only bias
//! by the ballots of the nodes it actually controls.
//!
//! The mechanism here: each cluster tallies its members' ballots
//! internally (one intra-cluster broadcast round — identities are
//! unforgeable, so a Byzantine member casts *its own* ballot however it
//! likes but cannot stuff anyone else's), then the per-cluster tallies
//! convergecast over a BFS tree of the overlay under the quorum rule.
//! With every cluster holding an honest quorum (Theorem 3), a Byzantine
//! member cannot mis-report its cluster's tally either — the honest
//! majority's identical message is the one neighbors accept. The
//! adversary's total distortion is therefore bounded by its ballot
//! count: `|yes − honest_yes| ≤ byz_population`.

use now_core::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of one poll ([`poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollReport {
    /// Root cluster of the tally tree.
    pub root: ClusterId,
    /// "Yes" ballots counted (honest intents plus Byzantine ballots).
    pub yes: u64,
    /// "No" ballots counted.
    pub no: u64,
    /// Ground truth: honest nodes intending "yes".
    pub honest_yes: u64,
    /// Ground truth: honest nodes intending "no".
    pub honest_no: u64,
    /// Messages spent (intra-cluster ballots + tree convergecast).
    pub messages: u64,
    /// Rounds (1 ballot round + 2 × tree depth).
    pub rounds: u64,
    /// Whether every cluster's tally reached the root.
    pub complete: bool,
}

impl PollReport {
    /// The adversary's achieved distortion: counted "yes" minus the
    /// honest "yes" ground truth (Byzantine ballots are the only
    /// source, so this is bounded by the Byzantine population).
    pub fn distortion(&self) -> u64 {
        self.yes.abs_diff(self.honest_yes)
    }
}

/// Runs a binary poll: every honest node ballots `intent(node)`, every
/// Byzantine node ballots `adversary_ballot` (the adversary maximizes
/// bias by voting as a bloc). Tallies flow root-ward over a BFS tree of
/// the overlay; costs land under [`CostKind::Aggregation`].
///
/// # Panics
/// Panics if `root` is not a live cluster.
pub fn poll(
    sys: &mut NowSystem,
    root: ClusterId,
    intent: impl Fn(now_net::NodeId) -> bool,
    adversary_ballot: bool,
) -> PollReport {
    assert!(sys.cluster(root).is_some(), "poll: unknown root {root}");
    sys.ledger_mut().begin(CostKind::Aggregation);
    let mut messages = 0u64;

    // Intra-cluster balloting: every member broadcasts its ballot to
    // its cluster (one round, |C|·(|C|−1) messages per cluster).
    let mut tallies: BTreeMap<ClusterId, (u64, u64)> = BTreeMap::new();
    let mut honest_yes = 0u64;
    let mut honest_no = 0u64;
    for cid in sys.cluster_ids() {
        // INVARIANT: ids listed by the registry are live in the same
        // serial phase.
        let cluster = sys.cluster(cid).expect("listed cluster is live");
        let size = cluster.size() as u64;
        messages += size * size.saturating_sub(1);
        let mut yes = 0u64;
        let mut no = 0u64;
        for member in cluster.members() {
            // INVARIANT: members of a live cluster are registered nodes.
            let honest = sys.is_honest(member).expect("live member");
            let ballot = if honest {
                let b = intent(member);
                if b {
                    honest_yes += 1;
                } else {
                    honest_no += 1;
                }
                b
            } else {
                adversary_ballot
            };
            if ballot {
                yes += 1;
            } else {
                no += 1;
            }
        }
        tallies.insert(cid, (yes, no));
    }

    // BFS tree over the overlay, rooted at `root`.
    let mut parent: BTreeMap<ClusterId, ClusterId> = BTreeMap::new();
    let mut depth: BTreeMap<ClusterId, u64> = BTreeMap::new();
    let mut order: Vec<ClusterId> = Vec::new();
    let mut seen: BTreeSet<ClusterId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    depth.insert(root, 0);
    queue.push_back(root);
    while let Some(c) = queue.pop_front() {
        order.push(c);
        let c_size = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
        for &nbr in sys.overlay().neighbors(c) {
            if seen.insert(nbr) {
                parent.insert(nbr, c);
                // INVARIANT: `c` was popped from the frontier, which only
                // holds keys already inserted into `depth`.
                depth.insert(nbr, depth[&c] + 1);
                let nbr_size = sys.cluster(nbr).map(|cl| cl.size() as u64).unwrap_or(0);
                messages += c_size * nbr_size; // downstream poll request
                queue.push_back(nbr);
            }
        }
    }

    // Convergecast of (yes, no) partial tallies under the quorum rule.
    let mut partial: BTreeMap<ClusterId, (u64, u64)> = BTreeMap::new();
    for &c in order.iter().rev() {
        let own = tallies.get(&c).copied().unwrap_or((0, 0));
        let acc = partial.get(&c).copied().unwrap_or((0, 0));
        let sum = (own.0 + acc.0, own.1 + acc.1);
        if let Some(&p) = parent.get(&c) {
            let c_size = sys.cluster(c).map(|cl| cl.size() as u64).unwrap_or(0);
            let p_size = sys.cluster(p).map(|cl| cl.size() as u64).unwrap_or(0);
            messages += c_size * p_size;
            let e = partial.entry(p).or_default();
            e.0 += sum.0;
            e.1 += sum.1;
        } else {
            partial.insert(c, sum);
        }
    }
    let (yes, no) = partial.get(&root).copied().unwrap_or((0, 0));
    let max_depth = depth.values().max().copied().unwrap_or(0);
    let rounds = 2 * max_depth + 2;
    sys.ledger_mut().add_messages(messages);
    sys.ledger_mut().add_rounds(rounds);
    sys.ledger_mut().end();

    PollReport {
        root,
        yes,
        no,
        honest_yes,
        honest_no,
        messages,
        rounds,
        complete: order.len() == sys.cluster_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::{NowParams, NowSystem};

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn honest_only_poll_is_exact() {
        let mut sys = system(200, 0.0, 1);
        let root = sys.cluster_ids()[0];
        // Nodes with even raw id vote yes.
        let report = poll(&mut sys, root, |n| n.raw() % 2 == 0, true);
        assert!(report.complete);
        assert_eq!(report.yes + report.no, 200);
        assert_eq!(report.yes, report.honest_yes);
        assert_eq!(report.distortion(), 0);
    }

    #[test]
    fn distortion_is_bounded_by_byzantine_ballots() {
        let mut sys = system(300, 0.2, 2);
        let root = sys.cluster_ids()[0];
        // Honest ground truth: all vote no; adversary blocs yes.
        let report = poll(&mut sys, root, |_| false, true);
        assert_eq!(report.honest_yes, 0);
        assert_eq!(report.yes, sys.byz_population());
        assert_eq!(report.distortion(), sys.byz_population());
        assert!(report.distortion() <= 60, "τ = 0.2 of 300");
    }

    #[test]
    fn every_ballot_is_counted_once() {
        let mut sys = system(240, 0.15, 3);
        let root = sys.cluster_ids()[1];
        let report = poll(&mut sys, root, |n| n.raw() % 3 == 0, false);
        assert_eq!(report.yes + report.no, sys.population());
        assert_eq!(
            report.honest_yes + report.honest_no,
            sys.population() - sys.byz_population()
        );
    }

    #[test]
    fn poll_cost_is_subquadratic_and_accounted() {
        let mut sys = system(500, 0.1, 4);
        let root = sys.cluster_ids()[0];
        let before = sys.ledger().stats(CostKind::Aggregation);
        let report = poll(&mut sys, root, |_| true, false);
        let after = sys.ledger().stats(CostKind::Aggregation);
        assert_eq!(after.count - before.count, 1);
        let n = sys.population();
        assert!(
            report.messages < n * n / 2,
            "poll {} vs n²/2 {}",
            report.messages,
            n * n / 2
        );
    }

    #[test]
    fn poll_from_every_root_agrees() {
        let mut sys = system(200, 0.1, 5);
        let reports: Vec<PollReport> = sys
            .cluster_ids()
            .into_iter()
            .map(|root| poll(&mut sys, root, |n| n.raw() % 2 == 0, true))
            .collect();
        let first = reports[0];
        for r in &reports {
            assert_eq!((r.yes, r.no), (first.yes, first.no));
        }
    }

    #[test]
    #[should_panic(expected = "unknown root")]
    fn unknown_root_panics() {
        let mut sys = system(100, 0.1, 6);
        let _ = poll(
            &mut sys,
            now_net::ClusterId::from_raw(40_404),
            |_| true,
            false,
        );
    }
}
