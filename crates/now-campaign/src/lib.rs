//! `now-campaign` — a declarative multi-phase attack-campaign engine.
//!
//! The paper's resilience claims are about surviving *sequences* of
//! adversarial regimes — churn bursts, targeted join–leave floods,
//! forced-leave pressure, split forcing — yet a plain scenario run is
//! one churn style from start to finish. A [`Campaign`] compiles a
//! phased timeline (e.g. *warm up 200 steps of balanced churn → 300
//! steps of join–leave flood on the largest cluster → split-forcing
//! until the population crosses a threshold → quiesce*) into a single
//! deterministic run over one [`now_core::NowSystem`], driven through
//! the batched wave-scheduled execution path
//! ([`now_sim::run_batched_until`]).
//!
//! Three layers:
//!
//! * **Model** ([`model`]) — [`Campaign`] / [`Phase`] with triggers
//!   ([`Trigger`]: step count, population thresholds, first binding
//!   violation) and composable per-phase knobs (batch width, driver
//!   τ, execution engine, attack style and target policy).
//! * **Text format** ([`parse`]) — a small line-oriented campaign
//!   format (hand-rolled; the workspace carries no serde), with typed
//!   [`now_core::NowError::CampaignParse`] errors carrying 1-based
//!   line numbers. The `scenarios/` directory at the workspace root
//!   holds a corpus of ready-to-run campaign files.
//! * **Runner + report** ([`run`], [`report`]) — the phase-switching
//!   runner produces a [`CampaignReport`] with one [`PhaseReport`] per
//!   phase (violations, wave statistics, population trajectory, ledger
//!   totals) and emits it as deterministic JSON: runs of the same
//!   campaign are byte-identical across `--threads` values, which CI
//!   gates (`campaign-smoke`).
//!
//! # Example
//! ```
//! use now_campaign::Campaign;
//!
//! let text = "
//! campaign demo
//! capacity 1024
//! tau 0.10
//! initial-population 120
//! seed 7
//! width 4
//!
//! phase warmup
//!   style balanced
//!   steps 10
//!
//! phase flood
//!   style split-forcing
//!   target largest
//!   width 6
//!   steps 8
//!
//! phase quiesce
//!   style quiet
//!   steps 3
//! ";
//! let campaign = Campaign::parse(text)?;
//! let (report, sys) = campaign.run(1)?;
//! assert_eq!(report.phases.len(), 3);
//! assert_eq!(report.total_steps(), 21);
//! assert!(sys.check_consistency().is_ok());
//! # Ok::<(), now_core::NowError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod model;
pub mod parse;
pub mod report;
pub mod run;

pub use model::{Campaign, Phase, PhaseExec, PhaseStyle, Trigger};
pub use report::{CampaignReport, PhaseReport};
