//! The line-oriented campaign text format.
//!
//! Hand-rolled (the workspace vendors no serde): one directive per
//! line, `#` starts a comment, indentation is free-form. A file is a
//! *header* (campaign-level directives) followed by one or more
//! `phase` blocks:
//!
//! ```text
//! # warm up, then flood the largest cluster, then quiesce
//! campaign warmup-flood
//! capacity 1024
//! tau 0.10
//! initial-population 150
//! seed 42
//! width 6
//!
//! phase warmup
//!   style balanced
//!   steps 200
//!
//! phase flood
//!   style join-leave
//!   target largest
//!   width 8
//!   tau 0.15
//!   steps 300
//!
//! phase quiesce
//!   style quiet
//!   steps 50
//! ```
//!
//! Header directives: `campaign <name>` (required, first), `capacity`,
//! `k`, `l`, `tau`, `epsilon`, `initial-population`, `seed`, `width`,
//! `shuffle on|off`, `trace <capacity>` (enable the flight recorder
//! with a ring buffer of that many events), `metrics on|off` (enable
//! the metrics registry). Phase directives: `style quiet | balanced |
//! sawtooth <low> <high> | join-leave | forced-leave | split-forcing |
//! merge-forcing | burst`,
//! `target first|largest|smallest`, `width`, `tau`,
//! `exec scheduled|threaded|event`, and exactly one trigger — `steps
//! <n>`, `until-pop-above <target> [cap <n>]`, `until-pop-below
//! <target> [cap <n>]`, or `until-violation [cap <n>]` (default cap
//! 10 000).
//!
//! Phases on `exec event` additionally take per-link network knobs:
//! `latency <ticks>` (base delay, ≥ 1), `jitter <ticks>` (uniform
//! extra delay bound), `drop <p>` (loss probability in `[0, 1]`), and
//! `partition <groups> [heal <time>]` (split the clusters into
//! `groups` components, optionally healing at the given virtual time).
//! Using any of them without `exec event` is an error — the other
//! engines have no network to apply them to:
//!
//! ```text
//! phase storm
//!   style balanced
//!   exec event
//!   latency 2
//!   jitter 5
//!   drop 0.1
//!   partition 2 heal 40
//!   steps 100
//! ```
//!
//! Every malformed input returns a typed
//! [`NowError::CampaignParse`] with the 1-based line number — the
//! parser never panics.

use crate::model::{Campaign, Phase, PhaseExec, PhaseStyle, Trigger};
use now_adversary::ClusterPick;
use now_core::{EventNetConfig, NowError};

/// Default step cap for `until-*` triggers without an explicit `cap`.
pub const DEFAULT_TRIGGER_CAP: u64 = 10_000;

fn err(line: usize, reason: impl Into<String>) -> NowError {
    NowError::CampaignParse {
        line,
        reason: reason.into(),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, what: &str, tok: &str) -> Result<T, NowError> {
    tok.parse()
        .map_err(|_| err(line, format!("{what}: cannot parse `{tok}`")))
}

/// A phase block under construction: `style` and the trigger are
/// mandatory, so they stay optional until the block closes.
struct PhaseDraft {
    line: usize,
    name: String,
    style: Option<PhaseStyle>,
    target: ClusterPick,
    width: Option<usize>,
    tau: Option<f64>,
    exec: PhaseExec,
    net: EventNetConfig,
    /// Line of the first network knob, if any — net knobs are only
    /// legal on `exec event`, and the error should point at the knob.
    net_line: Option<usize>,
    trigger: Option<Trigger>,
}

impl PhaseDraft {
    fn new(line: usize, name: String) -> Self {
        PhaseDraft {
            line,
            name,
            style: None,
            target: ClusterPick::Largest,
            width: None,
            tau: None,
            exec: PhaseExec::Threaded,
            net: EventNetConfig::ideal(),
            net_line: None,
            trigger: None,
        }
    }

    fn finish(self) -> Result<Phase, NowError> {
        let style = self
            .style
            .ok_or_else(|| err(self.line, format!("phase `{}` has no `style`", self.name)))?;
        let trigger = self.trigger.ok_or_else(|| {
            err(
                self.line,
                format!(
                    "phase `{}` has no trigger (`steps`, `until-pop-above`, \
                     `until-pop-below`, or `until-violation`)",
                    self.name
                ),
            )
        })?;
        if let Some(line) = self.net_line {
            if self.exec != PhaseExec::Event {
                return Err(err(
                    line,
                    format!(
                        "phase `{}`: network knobs (latency/jitter/drop/partition) \
                         require `exec event`",
                        self.name
                    ),
                ));
            }
        }
        Ok(Phase {
            name: self.name,
            style,
            target: self.target,
            width: self.width,
            tau: self.tau,
            exec: self.exec,
            net: self.net,
            trigger,
        })
    }

    fn set_trigger(&mut self, line: usize, trigger: Trigger) -> Result<(), NowError> {
        if self.trigger.is_some() {
            return Err(err(
                line,
                format!("phase `{}` already has a trigger", self.name),
            ));
        }
        self.trigger = Some(trigger);
        Ok(())
    }
}

/// Parses an optional `cap <n>` tail for `until-*` triggers.
fn parse_cap(line: usize, rest: &[&str]) -> Result<u64, NowError> {
    match rest {
        [] => Ok(DEFAULT_TRIGGER_CAP),
        ["cap", n] => parse_num(line, "cap", n),
        _ => Err(err(
            line,
            format!("expected `cap <n>`, got `{}`", rest.join(" ")),
        )),
    }
}

impl Campaign {
    /// Parses the campaign text format (module docs).
    ///
    /// # Errors
    /// [`NowError::CampaignParse`] with the 1-based line number for any
    /// malformed directive; the returned campaign additionally passes
    /// [`Campaign::check`].
    pub fn parse(text: &str) -> Result<Campaign, NowError> {
        let mut campaign: Option<Campaign> = None;
        let mut draft: Option<PhaseDraft> = None;
        let mut header_seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut last_line = 0;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            last_line = line;
            let content = raw.split('#').next().unwrap_or("");
            let tokens: Vec<&str> = content.split_whitespace().collect();
            let Some((&head, args)) = tokens.split_first() else {
                continue; // blank or comment-only line
            };

            // `campaign <name>` opens the header.
            if head == "campaign" {
                if campaign.is_some() {
                    return Err(err(line, "duplicate `campaign` directive"));
                }
                let [name] = args else {
                    return Err(err(line, "`campaign` takes exactly one name"));
                };
                campaign = Some(Campaign::new(*name, 1 << 10));
                continue;
            }
            let Some(c) = campaign.as_mut() else {
                return Err(err(
                    line,
                    format!("`{head}` before the `campaign <name>` header line"),
                ));
            };

            // `phase <name>` closes the previous block and opens a new
            // one.
            if head == "phase" {
                if let Some(done) = draft.take() {
                    c.phases.push(done.finish()?);
                }
                let [name] = args else {
                    return Err(err(line, "`phase` takes exactly one name"));
                };
                draft = Some(PhaseDraft::new(line, name.to_string()));
                continue;
            }

            match draft.as_mut() {
                // ---- header directives ----
                None => {
                    // Header keys may appear at most once: a duplicate
                    // is almost always a copy-paste mistake, and
                    // silently letting the last one win would run a
                    // different campaign than the author reviewed.
                    if !header_seen.insert(head.to_string()) {
                        return Err(err(line, format!("duplicate header directive `{head}`")));
                    }
                    match (head, args) {
                        ("capacity", [n]) => c.capacity = parse_num(line, "capacity", n)?,
                        ("k", [n]) => c.k = parse_num(line, "k", n)?,
                        ("l", [n]) => c.l = parse_num(line, "l", n)?,
                        ("tau", [n]) => c.tau = parse_num(line, "tau", n)?,
                        ("epsilon", [n]) => c.epsilon = parse_num(line, "epsilon", n)?,
                        ("initial-population", [n]) => {
                            c.initial_population = parse_num(line, "initial-population", n)?
                        }
                        ("seed", [n]) => c.seed = parse_num(line, "seed", n)?,
                        ("width", [n]) => {
                            let w: usize = parse_num(line, "width", n)?;
                            if w == 0 {
                                return Err(err(line, "campaign width must be positive"));
                            }
                            c.width = w;
                        }
                        ("shuffle", ["on"]) => c.shuffle = true,
                        ("shuffle", ["off"]) => c.shuffle = false,
                        ("shuffle", other) => {
                            return Err(err(
                                line,
                                format!("`shuffle` takes on|off, got `{}`", other.join(" ")),
                            ))
                        }
                        ("trace", [n]) => {
                            let cap: usize = parse_num(line, "trace", n)?;
                            if cap == 0 {
                                return Err(err(line, "trace capacity must be positive"));
                            }
                            c.trace = Some(cap);
                        }
                        ("metrics", ["on"]) => c.metrics = true,
                        ("metrics", ["off"]) => c.metrics = false,
                        ("metrics", other) => {
                            return Err(err(
                                line,
                                format!("`metrics` takes on|off, got `{}`", other.join(" ")),
                            ))
                        }
                        ("style" | "target" | "exec" | "steps", _) => {
                            return Err(err(
                                line,
                                format!(
                                    "`{head}` is a phase directive; start a `phase <name>` first"
                                ),
                            ))
                        }
                        (_, [_]) => return Err(err(line, format!("unknown directive `{head}`"))),
                        (_, _) => {
                            return Err(err(
                                line,
                                format!("malformed directive `{}`", tokens.join(" ")),
                            ))
                        }
                    }
                }
                // ---- phase directives ----
                Some(p) => match (head, args) {
                    ("style", _) if p.style.is_some() => {
                        return Err(err(
                            line,
                            format!("phase `{}` already has a `style`", p.name),
                        ))
                    }
                    ("style", ["quiet"]) => p.style = Some(PhaseStyle::Quiet),
                    ("style", ["balanced"]) => p.style = Some(PhaseStyle::Balanced),
                    ("style", ["sawtooth", low, high]) => {
                        let low = parse_num(line, "sawtooth low", low)?;
                        let high = parse_num(line, "sawtooth high", high)?;
                        if low >= high {
                            return Err(err(
                                line,
                                format!("sawtooth needs low < high, got [{low}, {high}]"),
                            ));
                        }
                        p.style = Some(PhaseStyle::Sawtooth { low, high });
                    }
                    ("style", ["join-leave"]) => p.style = Some(PhaseStyle::JoinLeave),
                    ("style", ["forced-leave"]) => p.style = Some(PhaseStyle::ForcedLeave),
                    ("style", ["split-forcing"]) => p.style = Some(PhaseStyle::SplitForcing),
                    ("style", ["merge-forcing"]) => p.style = Some(PhaseStyle::MergeForcing),
                    ("style", ["burst"]) => p.style = Some(PhaseStyle::BurstChurn),
                    ("style", other) => {
                        return Err(err(line, format!("unknown style `{}`", other.join(" "))))
                    }
                    ("target", ["first"]) => p.target = ClusterPick::First,
                    ("target", ["largest"]) => p.target = ClusterPick::Largest,
                    ("target", ["smallest"]) => p.target = ClusterPick::Smallest,
                    ("target", other) => {
                        return Err(err(
                            line,
                            format!(
                                "`target` takes first|largest|smallest, got `{}`",
                                other.join(" ")
                            ),
                        ))
                    }
                    ("width", [n]) => {
                        let w: usize = parse_num(line, "width", n)?;
                        if w == 0 {
                            return Err(err(line, "phase width must be positive"));
                        }
                        p.width = Some(w);
                    }
                    ("tau", [n]) => {
                        let t: f64 = parse_num(line, "tau", n)?;
                        if !(0.0..1.0).contains(&t) {
                            return Err(err(line, format!("phase tau {t} outside [0, 1)")));
                        }
                        p.tau = Some(t);
                    }
                    ("exec", ["scheduled"]) => p.exec = PhaseExec::Scheduled,
                    ("exec", ["threaded"]) => p.exec = PhaseExec::Threaded,
                    ("exec", ["event"]) => p.exec = PhaseExec::Event,
                    ("exec", other) => {
                        return Err(err(
                            line,
                            format!(
                                "`exec` takes scheduled|threaded|event, got `{}`",
                                other.join(" ")
                            ),
                        ))
                    }
                    ("latency", [n]) => {
                        let latency: u64 = parse_num(line, "latency", n)?;
                        if latency == 0 {
                            return Err(err(line, "`latency` must be at least 1 tick"));
                        }
                        p.net.latency = latency;
                        p.net_line.get_or_insert(line);
                    }
                    ("jitter", [n]) => {
                        p.net.jitter = parse_num(line, "jitter", n)?;
                        p.net_line.get_or_insert(line);
                    }
                    ("drop", [n]) => {
                        let drop: f64 = parse_num(line, "drop", n)?;
                        if !(0.0..=1.0).contains(&drop) {
                            return Err(err(line, format!("drop {drop} outside [0, 1]")));
                        }
                        p.net.drop = drop;
                        p.net_line.get_or_insert(line);
                    }
                    ("partition", [groups, rest @ ..]) => {
                        let groups: usize = parse_num(line, "partition", groups)?;
                        if groups < 2 {
                            return Err(err(line, "`partition` needs at least 2 groups"));
                        }
                        p.net = p.net.with_partition(groups);
                        match rest {
                            [] => {}
                            ["heal", t] => p.net = p.net.healing_at(parse_num(line, "heal", t)?),
                            _ => {
                                return Err(err(
                                    line,
                                    format!("expected `heal <time>`, got `{}`", rest.join(" ")),
                                ))
                            }
                        }
                        p.net_line.get_or_insert(line);
                    }
                    ("partition", []) => {
                        return Err(err(
                            line,
                            "`partition` takes a group count: `partition <groups> [heal <time>]`",
                        ))
                    }
                    ("latency" | "jitter" | "drop", _) => {
                        return Err(err(line, format!("`{head}` takes exactly one number")))
                    }
                    ("steps", [n]) => {
                        let steps: u64 = parse_num(line, "steps", n)?;
                        if steps == 0 {
                            return Err(err(line, "`steps` must be positive"));
                        }
                        p.set_trigger(line, Trigger::Steps(steps))?;
                    }
                    ("until-pop-above", [target, rest @ ..]) => {
                        let target = parse_num(line, "until-pop-above", target)?;
                        let cap = parse_cap(line, rest)?;
                        p.set_trigger(line, Trigger::PopulationAbove { target, cap })?;
                    }
                    ("until-pop-below", [target, rest @ ..]) => {
                        let target = parse_num(line, "until-pop-below", target)?;
                        let cap = parse_cap(line, rest)?;
                        p.set_trigger(line, Trigger::PopulationBelow { target, cap })?;
                    }
                    ("until-pop-above" | "until-pop-below", []) => {
                        return Err(err(
                            line,
                            format!("`{head}` takes a population target: `{head} <n> [cap <n>]`"),
                        ))
                    }
                    ("until-violation", rest) => {
                        let cap = parse_cap(line, rest)?;
                        p.set_trigger(line, Trigger::FirstViolation { cap })?;
                    }
                    ("capacity" | "seed" | "initial-population" | "shuffle", _) => {
                        return Err(err(
                            line,
                            format!("`{head}` is a header directive; it cannot appear in a phase"),
                        ))
                    }
                    (_, _) => return Err(err(line, format!("unknown phase directive `{head}`"))),
                },
            }
        }

        let mut campaign =
            campaign.ok_or_else(|| err(last_line.max(1), "missing `campaign <name>` header"))?;
        if let Some(done) = draft.take() {
            campaign.phases.push(done.finish()?);
        }
        if campaign.phases.is_empty() {
            return Err(err(last_line.max(1), "campaign has no phases"));
        }
        // Shape defects the line scan cannot see (e.g. a zero campaign
        // width) surface as CampaignReport errors from check().
        campaign.check()?;
        Ok(campaign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_err(text: &str) -> (usize, String) {
        match Campaign::parse(text) {
            Err(NowError::CampaignParse { line, reason }) => (line, reason),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    const GOOD: &str = "
# a full campaign
campaign demo
capacity 2048
k 3
l 2.0
tau 0.12
epsilon 0.05
initial-population 200
seed 9
width 5
shuffle on
trace 256
metrics on

phase warmup
  style balanced
  steps 40

phase flood      # inline comment
  style join-leave
  target largest
  width 8
  tau 0.15
  exec scheduled
  steps 30

phase drain
  style forced-leave
  target smallest
  until-pop-below 150 cap 80

phase probe
  style split-forcing
  until-violation cap 25

phase regrow
  style sawtooth 150 260
  until-pop-above 250

phase quiesce
  style quiet
  steps 5

phase storm
  style balanced
  exec event
  latency 2
  jitter 5
  drop 0.1
  partition 2 heal 40
  steps 30

phase squeeze
  style merge-forcing
  target smallest
  steps 12

phase pulse
  style burst
  width 4
  steps 16
";

    #[test]
    fn full_campaign_round_trips() {
        let c = Campaign::parse(GOOD).unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.capacity, 2048);
        assert_eq!(c.k, 3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.width, 5);
        assert_eq!(c.trace, Some(256));
        assert!(c.metrics);
        assert_eq!(c.phases.len(), 9);
        assert_eq!(c.phases[0].style, PhaseStyle::Balanced);
        assert_eq!(c.phases[1].width, Some(8));
        assert_eq!(c.phases[1].tau, Some(0.15));
        assert_eq!(c.phases[1].exec, PhaseExec::Scheduled);
        assert_eq!(c.phases[1].target, ClusterPick::Largest);
        assert_eq!(
            c.phases[2].trigger,
            Trigger::PopulationBelow {
                target: 150,
                cap: 80
            }
        );
        assert_eq!(c.phases[3].trigger, Trigger::FirstViolation { cap: 25 });
        assert_eq!(
            c.phases[4].trigger,
            Trigger::PopulationAbove {
                target: 250,
                cap: DEFAULT_TRIGGER_CAP
            }
        );
        assert_eq!(c.phases[5].style, PhaseStyle::Quiet);
        let storm = &c.phases[6];
        assert_eq!(storm.exec, PhaseExec::Event);
        assert_eq!(
            storm.net,
            EventNetConfig::ideal()
                .with_latency(2)
                .with_jitter(5)
                .with_drop(0.1)
                .with_partition(2)
                .healing_at(40)
        );
        assert_eq!(c.phases[7].style, PhaseStyle::MergeForcing);
        assert_eq!(c.phases[7].target, ClusterPick::Smallest);
        assert_eq!(c.phases[8].style, PhaseStyle::BurstChurn);
        assert_eq!(c.phases[8].width, Some(4));
    }

    #[test]
    fn missing_header_is_typed() {
        let (line, reason) = parse_err("capacity 1024\n");
        assert_eq!(line, 1);
        assert!(reason.contains("before the `campaign"), "{reason}");
    }

    #[test]
    fn unknown_directive_is_typed() {
        let (line, reason) = parse_err("campaign x\nfrobnicate 3\n");
        assert_eq!(line, 2);
        assert!(reason.contains("unknown directive"), "{reason}");
    }

    #[test]
    fn bad_number_is_typed() {
        let (line, reason) = parse_err("campaign x\ncapacity twelve\n");
        assert_eq!(line, 2);
        assert!(reason.contains("cannot parse `twelve`"), "{reason}");
    }

    #[test]
    fn phase_without_style_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nsteps 5\n");
        assert!(reason.contains("no `style`"), "{reason}");
    }

    #[test]
    fn phase_without_trigger_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\n");
        assert!(reason.contains("no trigger"), "{reason}");
    }

    #[test]
    fn duplicate_trigger_is_typed() {
        let (line, reason) =
            parse_err("campaign x\nphase a\nstyle quiet\nsteps 5\nuntil-violation\n");
        assert_eq!(line, 5);
        assert!(reason.contains("already has a trigger"), "{reason}");
    }

    #[test]
    fn unknown_style_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle mayhem\nsteps 5\n");
        assert!(reason.contains("unknown style `mayhem`"), "{reason}");
    }

    #[test]
    fn phase_directive_in_header_is_typed() {
        let (_, reason) = parse_err("campaign x\nstyle quiet\n");
        assert!(reason.contains("phase directive"), "{reason}");
    }

    #[test]
    fn header_directive_in_phase_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nseed 4\nsteps 2\n");
        assert!(reason.contains("header directive"), "{reason}");
    }

    #[test]
    fn zero_width_and_zero_steps_are_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nwidth 0\nsteps 2\n");
        assert!(reason.contains("width must be positive"), "{reason}");
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nsteps 0\n");
        assert!(reason.contains("`steps` must be positive"), "{reason}");
    }

    #[test]
    fn observability_directives_are_validated() {
        let (line, reason) = parse_err("campaign x\ntrace 0\nphase a\nstyle quiet\nsteps 1\n");
        assert_eq!(line, 2);
        assert!(
            reason.contains("trace capacity must be positive"),
            "{reason}"
        );
        let (_, reason) = parse_err("campaign x\nmetrics yes\nphase a\nstyle quiet\nsteps 1\n");
        assert!(reason.contains("`metrics` takes on|off"), "{reason}");
        // Defaults: both sinks off.
        let c = Campaign::parse("campaign x\nphase a\nstyle quiet\nsteps 1\n").unwrap();
        assert_eq!(c.trace, None);
        assert!(!c.metrics);
    }

    #[test]
    fn bad_sawtooth_band_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle sawtooth 90 60\nsteps 2\n");
        assert!(reason.contains("low < high"), "{reason}");
    }

    #[test]
    fn empty_campaign_is_typed() {
        let (_, reason) = parse_err("campaign x\n");
        assert!(reason.contains("no phases"), "{reason}");
    }

    #[test]
    fn duplicate_campaign_line_is_typed() {
        let (line, reason) = parse_err("campaign x\ncampaign y\n");
        assert_eq!(line, 2);
        assert!(reason.contains("duplicate"), "{reason}");
    }

    #[test]
    fn duplicate_header_directive_is_typed() {
        let (line, reason) = parse_err("campaign x\ntau 0.1\ntau 0.2\n");
        assert_eq!(line, 3);
        assert!(
            reason.contains("duplicate header directive `tau`"),
            "{reason}"
        );
    }

    #[test]
    fn duplicate_style_is_typed() {
        let (line, reason) =
            parse_err("campaign x\nphase a\nstyle balanced\nstyle join-leave\nsteps 2\n");
        assert_eq!(line, 4);
        assert!(reason.contains("already has a `style`"), "{reason}");
    }

    #[test]
    fn zero_campaign_width_is_typed_with_line() {
        let (line, reason) = parse_err("campaign x\nwidth 0\nphase a\nstyle quiet\nsteps 1\n");
        assert_eq!(line, 2);
        assert!(
            reason.contains("campaign width must be positive"),
            "{reason}"
        );
    }

    #[test]
    fn bare_population_trigger_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nuntil-pop-above\n");
        assert!(reason.contains("takes a population target"), "{reason}");
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nuntil-pop-below\n");
        assert!(reason.contains("takes a population target"), "{reason}");
    }

    #[test]
    fn bad_cap_tail_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\nuntil-pop-above 10 max 5\n");
        assert!(reason.contains("expected `cap <n>`"), "{reason}");
    }

    #[test]
    fn bad_phase_tau_is_typed() {
        let (_, reason) = parse_err("campaign x\nphase a\nstyle quiet\ntau 1.2\nsteps 2\n");
        assert!(reason.contains("outside [0, 1)"), "{reason}");
    }

    #[test]
    fn net_knob_without_event_exec_is_typed_at_the_knob() {
        let (line, reason) = parse_err("campaign x\nphase a\nstyle quiet\nlatency 3\nsteps 2\n");
        assert_eq!(line, 4, "error points at the first net knob");
        assert!(reason.contains("require `exec event`"), "{reason}");
        let (_, reason) =
            parse_err("campaign x\nphase a\nstyle quiet\nexec threaded\ndrop 0.5\nsteps 2\n");
        assert!(reason.contains("require `exec event`"), "{reason}");
    }

    #[test]
    fn bad_net_knob_values_are_typed() {
        let head = "campaign x\nphase a\nstyle quiet\nexec event\n";
        let (_, reason) = parse_err(&format!("{head}latency 0\nsteps 2\n"));
        assert!(reason.contains("at least 1 tick"), "{reason}");
        let (_, reason) = parse_err(&format!("{head}drop 1.5\nsteps 2\n"));
        assert!(reason.contains("outside [0, 1]"), "{reason}");
        let (_, reason) = parse_err(&format!("{head}partition 1\nsteps 2\n"));
        assert!(reason.contains("at least 2 groups"), "{reason}");
        let (_, reason) = parse_err(&format!("{head}partition\nsteps 2\n"));
        assert!(reason.contains("takes a group count"), "{reason}");
        let (_, reason) = parse_err(&format!("{head}partition 2 cure 9\nsteps 2\n"));
        assert!(reason.contains("expected `heal <time>`"), "{reason}");
        let (_, reason) = parse_err(&format!("{head}jitter 3 4\nsteps 2\n"));
        assert!(reason.contains("exactly one number"), "{reason}");
    }

    #[test]
    fn event_exec_without_knobs_is_the_ideal_network() {
        let c =
            Campaign::parse("campaign x\nphase a\nstyle balanced\nexec event\nsteps 3\n").unwrap();
        assert_eq!(c.phases[0].exec, PhaseExec::Event);
        assert_eq!(c.phases[0].net, EventNetConfig::ideal());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let c = Campaign::parse(
            "# leading comment\n\ncampaign c # trailing\n\nphase a\nstyle quiet\nsteps 1\n",
        )
        .unwrap();
        assert_eq!(c.phases.len(), 1);
    }
}
