//! The phase-switching campaign runner.
//!
//! Each phase compiles to a batched driver plus a stop predicate, and
//! runs through a [`now_sim::BatchRun`] — the same wave-scheduled
//! execution path as `Scenario::run_batch` — against the *same*
//! [`NowSystem`], so later regimes inherit the state earlier ones
//! produced. Per-phase driver streams derive deterministically from
//! the campaign's master seed, so a campaign is a single reproducible
//! run whatever the phase mix — including `exec event` phases, whose
//! network schedules replay from the same seeds.

use crate::model::{Campaign, PhaseExec, PhaseStyle, Trigger};
use crate::report::{CampaignReport, PhaseReport};
use now_adversary::{
    BatchBurstChurn, BatchDriver, BatchForcedLeave, BatchJoinLeave, BatchMergeForcing,
    BatchSplitForcing, QuietBatches,
};
use now_core::{normalize_threads, NowError, NowParams, NowSystem, WavePool};
use now_sim::{BatchExec, BatchRandomChurn, BatchRun, BatchRunReport, BatchSawtooth};

/// A phase's compiled stop condition (evaluated before the first step
/// and after every audited step).
type StopFn = Box<dyn FnMut(&NowSystem, &BatchRunReport) -> bool>;

impl Campaign {
    /// The system parameters this campaign builds with.
    ///
    /// # Errors
    /// [`NowError::BadParams`] for invalid parameter combinations.
    pub fn build_params(&self) -> Result<NowParams, NowError> {
        Ok(
            NowParams::new(self.capacity, self.k, self.l, self.tau, self.epsilon)?
                .with_shuffle(self.shuffle),
        )
    }

    /// Builds the campaign's initial system (shared by [`Campaign::run`]
    /// and callers that want to pre-process the system — e.g. install a
    /// strategic [`now_core::Malice`] — before [`Campaign::run_on`]).
    ///
    /// # Errors
    /// [`NowError::BadParams`] for invalid parameters.
    pub fn build_system(&self) -> Result<NowSystem, NowError> {
        let params = self.build_params()?;
        let n0 = if self.initial_population > 0 {
            self.initial_population
        } else {
            10 * params.target_cluster_size()
        };
        Ok(NowSystem::init_fast(params, n0, self.tau, self.seed))
    }

    /// Builds the system and runs every phase in order, returning the
    /// per-phase report together with the final system.
    ///
    /// `threads` is the worker count for phases on the threaded engine
    /// (normalized by [`now_core::normalize_threads`]; a
    /// campaign-scoped [`WavePool`] is spawned once and reused by every
    /// threaded phase). It never changes outcomes (the engine is
    /// bit-identical across thread counts), only wall-clock.
    ///
    /// # Errors
    /// [`NowError::CampaignReport`] for shape defects
    /// ([`Campaign::check`]), [`NowError::BadParams`] for invalid
    /// parameters.
    pub fn run(&self, threads: usize) -> Result<(CampaignReport, NowSystem), NowError> {
        self.check()?;
        let mut sys = self.build_system()?;
        let report = self.run_on(&mut sys, threads)?;
        Ok((report, sys))
    }

    /// Runs every phase in order on a caller-built system (see
    /// [`Campaign::build_system`]).
    ///
    /// # Errors
    /// As [`Campaign::run`].
    pub fn run_on(&self, sys: &mut NowSystem, threads: usize) -> Result<CampaignReport, NowError> {
        self.check()?;
        let mode = sys.params().security();
        let mut phases = Vec::with_capacity(self.phases.len());
        // One campaign-scoped worker pool: successive phases (and their
        // steps) reuse the same workers, so a whole campaign spawns
        // O(threads) threads however many phases and waves it runs —
        // and none at all when no phase uses the threaded engine.
        // Campaign-scoped observability: the `trace` / `metrics`
        // header directives arm the system's sinks before the first
        // phase. Sinks a caller already armed on a prebuilt system are
        // left untouched (their history is preserved and captured in
        // the final report either way).
        if let Some(cap) = self.trace {
            if sys.flight_recorder().is_none() {
                sys.enable_tracing(cap);
            }
        }
        if self.metrics && sys.metrics().is_none() {
            sys.enable_metrics();
        }
        let threads = normalize_threads(threads);
        let pool = self
            .phases
            .iter()
            .any(|p| matches!(p.exec, PhaseExec::Threaded | PhaseExec::Event))
            .then(|| WavePool::new(threads));

        for (i, phase) in self.phases.iter().enumerate() {
            let width = phase.width.unwrap_or(self.width);
            let tau = phase.tau.unwrap_or(self.tau);
            let mut driver: Box<dyn BatchDriver> = match phase.style {
                PhaseStyle::Quiet => Box::new(QuietBatches),
                PhaseStyle::Balanced => Box::new(BatchRandomChurn::balanced(width, tau)),
                PhaseStyle::Sawtooth { low, high } => {
                    Box::new(BatchSawtooth::new(low, high, width, tau))
                }
                PhaseStyle::JoinLeave => {
                    Box::new(BatchJoinLeave::new(width, tau).with_pick(phase.target))
                }
                PhaseStyle::ForcedLeave => {
                    Box::new(BatchForcedLeave::new(width, tau).with_pick(phase.target))
                }
                PhaseStyle::SplitForcing => {
                    Box::new(BatchSplitForcing::new(width, tau).with_pick(phase.target))
                }
                PhaseStyle::MergeForcing => {
                    Box::new(BatchMergeForcing::new(width, tau).with_pick(phase.target))
                }
                PhaseStyle::BurstChurn => Box::new(BatchBurstChurn::new(width, tau)),
            };
            let (exec, phase_pool) = match phase.exec {
                PhaseExec::Scheduled => (BatchExec::Scheduled, None),
                PhaseExec::Threaded => (
                    BatchExec::Threaded(threads),
                    // INVARIANT: the pool was constructed upfront for any
                    // campaign containing a threaded or event phase.
                    Some(pool.as_ref().expect("threaded phase implies a pool")),
                ),
                // Event phases plan their delivery waves on the same
                // campaign pool; the thread count never changes the
                // outcome, only wall-clock.
                PhaseExec::Event => (
                    BatchExec::Event(phase.net),
                    // INVARIANT: same upfront pool construction as above.
                    Some(pool.as_ref().expect("event phase implies a pool")),
                ),
            };
            // Per-phase substream: a splitmix-style mix of the master
            // seed and the phase index, so reordering or editing one
            // phase cannot silently reuse another phase's stream.
            let phase_seed = self
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));

            // The trigger's condition, compiled once: the runner stops
            // on it, and `fired` records whether it ever held (vs the
            // step cap running out). A `steps` trigger fires by
            // definition when its count elapses.
            let mut condition: StopFn = match phase.trigger {
                Trigger::Steps(_) => Box::new(|_, _| false),
                Trigger::PopulationAbove { target, .. } => {
                    Box::new(move |s, _| s.population() >= target)
                }
                Trigger::PopulationBelow { target, .. } => {
                    Box::new(move |s, _| s.population() <= target)
                }
                Trigger::FirstViolation { .. } => {
                    Box::new(move |_, r| r.binding_violations(mode) > 0)
                }
            };
            let fired = std::cell::Cell::new(false);

            let pop_start = sys.population();
            let ledger_before = sys.ledger().total();
            let mut run = BatchRun::new().exec(exec).until(|s, rep| {
                let hit = condition(s, rep);
                if hit {
                    fired.set(true);
                }
                hit
            });
            if let Some(p) = phase_pool {
                run = run.in_pool(p);
            }
            let r = run.run(sys, driver.as_mut(), phase.trigger.max_steps(), phase_seed);
            let ledger_after = sys.ledger().total();
            let trigger_fired = matches!(phase.trigger, Trigger::Steps(_)) || fired.get();
            let pops = r.population.summary();
            let (pop_min, pop_max) = if pops.count == 0 {
                (pop_start, pop_start)
            } else {
                (
                    (pops.min as u64).min(pop_start),
                    (pops.max as u64).max(pop_start),
                )
            };
            phases.push(PhaseReport {
                name: phase.name.clone(),
                style: phase.style.name().to_string(),
                driver: r.driver.clone(),
                steps: r.steps,
                trigger_fired,
                joins: r.joins,
                leaves: r.leaves,
                rejected: r.rejected,
                rounds_serial: r.rounds_serial,
                rounds_parallel: r.rounds_parallel,
                waves: r.waves,
                max_wave_width: r.max_wave_width,
                wave_slack_rounds: r.wave_slack_rounds,
                sent: r.sent,
                delivered: r.delivered,
                dropped: r.dropped,
                messages: ledger_after.messages - ledger_before.messages,
                rounds: ledger_after.rounds - ledger_before.rounds,
                pop_start,
                pop_end: sys.population(),
                pop_min,
                pop_max,
                peak_byz_fraction: r.worst_byz_fraction.summary().max,
                binding_violations: r.binding_violations(mode),
                violations: r.violations,
                population: r.population,
            });
        }

        Ok(CampaignReport {
            campaign: self.name.clone(),
            seed: self.seed,
            security: mode,
            phases,
            trace: sys.flight_recorder().map(|r| r.to_json()),
            metrics: sys.metrics().map(|m| m.to_json()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Phase;
    use now_adversary::ClusterPick;

    fn base() -> Campaign {
        Campaign::new("test", 1 << 10)
    }

    #[test]
    fn phases_run_in_order_on_one_system() {
        let c = base()
            .phase(Phase::new("grow", PhaseStyle::SplitForcing, Trigger::Steps(10)).width(6))
            .phase(Phase::new("calm", PhaseStyle::Quiet, Trigger::Steps(5)))
            .phase(Phase::new("churn", PhaseStyle::Balanced, Trigger::Steps(8)));
        let (report, sys) = c.run(1).unwrap();
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.total_steps(), 23);
        assert_eq!(sys.time_step(), 23, "one time step per batch");
        // Quiet phase changed nothing.
        let calm = &report.phases[1];
        assert_eq!(calm.joins + calm.leaves, 0);
        assert_eq!(calm.pop_start, calm.pop_end);
        // The flood grew the population before the quiet phase.
        assert_eq!(report.phases[0].pop_end, calm.pop_start);
        assert!(report.phases[0].joins == 60, "6-wide × 10 steps of flood");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn population_trigger_stops_early_and_reports_firing() {
        let c = base().initial_population_of(120).phase(
            Phase::new(
                "grow",
                PhaseStyle::SplitForcing,
                Trigger::PopulationAbove {
                    target: 150,
                    cap: 500,
                },
            )
            .width(5),
        );
        let (report, sys) = c.run(1).unwrap();
        let p = &report.phases[0];
        assert!(p.trigger_fired, "threshold is reachable");
        assert!(p.steps < 500, "stopped well before the cap");
        assert!(sys.population() >= 150);
        // 5 joins per step: fired on the first step at or past 150.
        assert!(sys.population() < 160);
    }

    #[test]
    fn entry_satisfied_trigger_runs_zero_steps() {
        // Regression: a phase whose condition already holds when it
        // begins must not execute a single adversarial batch.
        let c = base()
            .initial_population_of(200)
            .phase(Phase::new(
                "already-there",
                PhaseStyle::SplitForcing,
                Trigger::PopulationAbove {
                    target: 150,
                    cap: 50,
                },
            ))
            .phase(Phase::new("after", PhaseStyle::Quiet, Trigger::Steps(2)));
        let (report, sys) = c.run(1).unwrap();
        let p = &report.phases[0];
        assert!(p.trigger_fired);
        assert_eq!(p.steps, 0, "goal already met: no batch may run");
        assert_eq!(p.joins + p.leaves, 0);
        assert_eq!(p.pop_start, p.pop_end);
        assert_eq!(sys.population(), 200);
        assert_eq!(report.phases[1].steps, 2, "later phases still run");
    }

    #[test]
    fn capped_trigger_reports_not_fired() {
        let c = base().initial_population_of(120).phase(Phase::new(
            "hopeless",
            PhaseStyle::Quiet,
            Trigger::PopulationAbove {
                target: 10_000,
                cap: 4,
            },
        ));
        let (report, _) = c.run(1).unwrap();
        let p = &report.phases[0];
        assert!(!p.trigger_fired);
        assert_eq!(p.steps, 4, "ran to the cap");
    }

    #[test]
    fn campaign_runs_are_deterministic_across_thread_counts() {
        let c = base()
            .initial_population_of(160)
            .phase(Phase::new("warm", PhaseStyle::Balanced, Trigger::Steps(6)))
            .phase(
                Phase::new("flood", PhaseStyle::JoinLeave, Trigger::Steps(6))
                    .width(6)
                    .tau(0.2),
            )
            .phase(
                Phase::new("dos", PhaseStyle::ForcedLeave, Trigger::Steps(6))
                    .target(ClusterPick::First),
            );
        let (r1, s1) = c.run(1).unwrap();
        let (r4, s4) = c.run(4).unwrap();
        assert_eq!(r1.to_json(), r4.to_json(), "byte-identical across threads");
        assert_eq!(s1.population(), s4.population());
        assert_eq!(s1.node_ids(), s4.node_ids());
        s1.check_consistency().unwrap();
    }

    #[test]
    fn zero_threads_runs_like_one_thread() {
        // Regression for the shared `normalize_threads` rule at the
        // campaign layer's per-phase exec knob.
        let c = base()
            .initial_population_of(150)
            .phase(Phase::new("warm", PhaseStyle::Balanced, Trigger::Steps(4)))
            .phase(
                Phase::new("sched", PhaseStyle::Balanced, Trigger::Steps(3))
                    .exec(PhaseExec::Scheduled),
            );
        let (r0, s0) = c.run(0).unwrap();
        let (r1, s1) = c.run(1).unwrap();
        assert_eq!(r0.to_json(), r1.to_json());
        assert_eq!(s0.node_ids(), s1.node_ids());
    }

    #[test]
    fn scheduled_and_threaded_phases_both_run() {
        let c = base()
            .initial_population_of(140)
            .phase(
                Phase::new("sched", PhaseStyle::Balanced, Trigger::Steps(5))
                    .exec(PhaseExec::Scheduled),
            )
            .phase(Phase::new(
                "thread",
                PhaseStyle::Balanced,
                Trigger::Steps(5),
            ));
        let (report, sys) = c.run(2).unwrap();
        assert_eq!(report.total_steps(), 10);
        sys.check_consistency().unwrap();
        // And the mixed-engine run is reproducible as a whole.
        let (again, _) = c.run(2).unwrap();
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn run_on_lets_callers_prebuild_the_system() {
        let c = base().initial_population_of(130).phase(Phase::new(
            "churn",
            PhaseStyle::Balanced,
            Trigger::Steps(5),
        ));
        let mut sys = c.build_system().unwrap();
        let direct = c.run_on(&mut sys, 1).unwrap();
        let (viarun, _) = c.run(1).unwrap();
        assert_eq!(direct.to_json(), viarun.to_json());
    }

    #[test]
    fn ledger_and_wave_stats_are_per_phase() {
        let c = base()
            .initial_population_of(150)
            .phase(Phase::new("a", PhaseStyle::Balanced, Trigger::Steps(6)).width(5))
            .phase(Phase::new("b", PhaseStyle::Quiet, Trigger::Steps(4)));
        let (report, _) = c.run(1).unwrap();
        let a = &report.phases[0];
        let b = &report.phases[1];
        assert!(a.messages > 0);
        assert!(a.waves > 0);
        assert_eq!(b.messages, 0, "quiet spends nothing");
        assert_eq!(b.waves, 0);
        assert_eq!(report.total_messages(), a.messages);
    }

    #[test]
    fn event_phases_run_and_replay_across_thread_counts() {
        use now_core::EventNetConfig;
        let c = base()
            .initial_population_of(160)
            .phase(Phase::new("warm", PhaseStyle::Balanced, Trigger::Steps(5)))
            .phase(
                Phase::new("storm", PhaseStyle::Balanced, Trigger::Steps(8))
                    .width(6)
                    .net(
                        EventNetConfig::ideal()
                            .with_latency(2)
                            .with_jitter(4)
                            .with_drop(0.3)
                            .with_partition(2)
                            .healing_at(20),
                    ),
            )
            .phase(Phase::new("calm", PhaseStyle::Quiet, Trigger::Steps(3)));
        let (r1, s1) = c.run(1).unwrap();
        let (r4, s4) = c.run(4).unwrap();
        assert_eq!(r1.to_json(), r4.to_json(), "byte-identical across threads");
        assert_eq!(s1.node_ids(), s4.node_ids());
        let storm = &r1.phases[1];
        assert_eq!(storm.steps, 8);
        assert!(storm.dropped > 0, "30% loss over 8 steps must drop joins");
        assert_eq!(r1.phases[0].dropped, 0, "wave engines never drop");
        assert!(r1.to_json().contains("\"dropped\":"));
        s1.check_consistency().unwrap();
    }

    #[test]
    fn traced_campaigns_are_byte_identical_across_threads() {
        use now_core::EventNetConfig;
        let c = base()
            .initial_population_of(160)
            .trace(256)
            .metrics()
            .phase(Phase::new("warm", PhaseStyle::Balanced, Trigger::Steps(5)))
            .phase(
                Phase::new("storm", PhaseStyle::Balanced, Trigger::Steps(6))
                    .width(6)
                    .net(EventNetConfig::ideal().with_latency(1).with_drop(0.2)),
            );
        let (r1, _) = c.run(1).unwrap();
        let (r4, _) = c.run(4).unwrap();
        assert_eq!(
            r1.to_json(),
            r4.to_json(),
            "trace + metrics byte-identical across threads"
        );
        let trace = r1.trace.as_ref().expect("trace directive arms recorder");
        assert!(trace.contains("\"kind\": \"wave\""));
        let metrics = r1
            .metrics
            .as_ref()
            .expect("metrics directive arms registry");
        assert!(metrics.contains("now_steps_total"));
        assert!(metrics.contains("now_net_sent_total"));
        // Message conservation holds per phase, and only event phases
        // route through the network.
        for p in &r1.phases {
            assert_eq!(p.sent, p.delivered + p.dropped, "phase {}", p.name);
        }
        assert_eq!(r1.phases[0].sent, 0, "wave engines never touch the net");
        assert!(r1.phases[1].sent > 0);
        // The deterministic artifact must not leak run-environment data.
        for banned in ["wall", "nanos", "thread"] {
            assert!(!r1.to_json().contains(banned), "{banned} leaked");
        }
    }

    #[test]
    fn traced_violation_campaign_captures_a_dump() {
        let mut c = base()
            .initial_population_of(100)
            .trace(512)
            .metrics()
            .phase(Phase::new(
                "probe",
                PhaseStyle::SplitForcing,
                Trigger::FirstViolation { cap: 200 },
            ));
        c.tau = 0.30;
        let (report, sys) = c.run(1).unwrap();
        assert!(report.phases[0].trigger_fired);
        let rec = sys.flight_recorder().expect("recorder armed");
        let dump = rec.dump().expect("first violation captured a dump");
        assert!(!dump.events.is_empty(), "dump holds the causal window");
        assert!(report.trace.as_ref().unwrap().contains("\"dump\": {"));
        assert!(report
            .metrics
            .as_ref()
            .unwrap()
            .contains("now_violations_total"));
    }

    #[test]
    fn violation_trigger_is_honored() {
        // τ = 0.3 at k = 2 trips the 1/3 threshold fast.
        let mut c = base().initial_population_of(100).phase(Phase::new(
            "probe",
            PhaseStyle::SplitForcing,
            Trigger::FirstViolation { cap: 200 },
        ));
        c.tau = 0.30;
        let (report, _) = c.run(1).unwrap();
        let p = &report.phases[0];
        assert!(p.trigger_fired, "τ = 0.3 must violate quickly");
        assert!(p.steps < 200);
        assert!(p.binding_violations > 0);
    }

    #[test]
    fn defective_campaigns_are_typed_errors() {
        let empty = base();
        assert!(matches!(empty.run(1), Err(NowError::CampaignReport { .. })));
        let mut bad_params = base().phase(Phase::new("a", PhaseStyle::Quiet, Trigger::Steps(1)));
        bad_params.tau = 0.45; // over the plain-mode bound
        assert!(matches!(bad_params.run(1), Err(NowError::BadParams { .. })));
    }

    impl Campaign {
        /// Test shorthand.
        fn initial_population_of(mut self, n0: usize) -> Self {
            self.initial_population = n0;
            self
        }
    }
}
