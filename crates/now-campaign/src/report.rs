//! Per-phase campaign reports and their deterministic JSON form.
//!
//! The JSON contains **only deterministic outcome fields** — no
//! wall-clock, no thread counts — so two runs of the same campaign file
//! must be byte-identical whatever `--threads` value drove them. CI's
//! `campaign-smoke` job diffs exactly that.

use now_core::SecurityMode;
use now_sim::{TimeSeries, Violation, ViolationKind};
use std::fmt::Write as _;

/// Outcome of one campaign phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (from the campaign).
    pub name: String,
    /// Style name (e.g. `join-leave`).
    pub style: String,
    /// Driver name as reported by the batch driver.
    pub driver: String,
    /// Steps actually executed (≤ the trigger's cap).
    pub steps: u64,
    /// Whether the trigger's condition fired (as opposed to the step
    /// cap running out). Always true for `steps` triggers.
    pub trigger_fired: bool,
    /// Joins admitted during the phase.
    pub joins: u64,
    /// Leaves completed during the phase.
    pub leaves: u64,
    /// Departures rejected (floor / unknown).
    pub rejected: u64,
    /// Serial round sum over the phase.
    pub rounds_serial: u64,
    /// Scheduled parallel round sum over the phase.
    pub rounds_parallel: u64,
    /// Conflict-free waves scheduled.
    pub waves: u64,
    /// Widest wave observed.
    pub max_wave_width: usize,
    /// Round slack of the schedules (serial rounds saved).
    pub wave_slack_rounds: u64,
    /// Messages the event network accepted for delivery (always zero
    /// outside `exec event` phases). Conservation: `sent` equals
    /// `delivered + dropped` within every phase.
    pub sent: u64,
    /// Messages the event network delivered (always zero outside
    /// `exec event` phases).
    pub delivered: u64,
    /// Operations whose triggering message the event network dropped
    /// (always zero outside `exec event` phases).
    pub dropped: u64,
    /// Ledger message delta across the phase.
    pub messages: u64,
    /// Ledger round delta across the phase.
    pub rounds: u64,
    /// Population when the phase began.
    pub pop_start: u64,
    /// Population when the phase ended.
    pub pop_end: u64,
    /// Smallest population seen during the phase.
    pub pop_min: u64,
    /// Largest population seen during the phase.
    pub pop_max: u64,
    /// Highest worst-cluster Byzantine fraction seen during the phase.
    pub peak_byz_fraction: f64,
    /// Every invariant violation observed (all kinds).
    pub violations: Vec<Violation>,
    /// Violations binding for the system's security mode.
    pub binding_violations: usize,
    /// Population trajectory (one point per step).
    pub population: TimeSeries,
}

impl PhaseReport {
    /// Number of violations of the given kind.
    pub fn count(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }
}

/// Outcome of a whole campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub campaign: String,
    /// Master seed the run derived from.
    pub seed: u64,
    /// The system's security mode (decides which violations bind).
    pub security: SecurityMode,
    /// Per-phase outcomes, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Flight-recorder state at campaign end, pre-rendered as canonical
    /// JSON (see [`now_core::FlightRecorder::to_json`]); `None` when
    /// the campaign ran without a `trace` directive. Deterministic —
    /// part of the byte-diffed surface.
    pub trace: Option<String>,
    /// Metrics registry at campaign end, pre-rendered as canonical
    /// JSON (see [`now_core::MetricsRegistry::to_json`]); `None`
    /// without a `metrics on` directive. Deterministic.
    pub metrics: Option<String>,
}

impl CampaignReport {
    /// Total steps across all phases.
    pub fn total_steps(&self) -> u64 {
        self.phases.iter().map(|p| p.steps).sum()
    }

    /// Total binding violations across all phases.
    pub fn total_binding_violations(&self) -> usize {
        self.phases.iter().map(|p| p.binding_violations).sum()
    }

    /// Total ledger messages across all phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Renders the deterministic JSON report (module docs). Hand-rolled
    /// — the workspace carries no serde — with fixed field order and
    /// fixed float precision, so equal runs yield equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"campaign\": \"{}\",", escape(&self.campaign));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"security\": \"{}\",",
            match self.security {
                SecurityMode::Plain => "plain",
                SecurityMode::Authenticated => "authenticated",
            }
        );
        let _ = writeln!(out, "  \"total_steps\": {},", self.total_steps());
        let _ = writeln!(
            out,
            "  \"total_binding_violations\": {},",
            self.total_binding_violations()
        );
        let _ = writeln!(out, "  \"total_messages\": {},", self.total_messages());
        let _ = writeln!(out, "  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&phase_json(p, "    "));
            let _ = writeln!(out, "{comma}");
        }
        out.push_str("  ],\n");
        out.push_str("  \"trace\": ");
        out.push_str(&embed(self.trace.as_deref(), "  "));
        out.push_str(",\n  \"metrics\": ");
        out.push_str(&embed(self.metrics.as_deref(), "  "));
        out.push_str("\n}\n");
        out
    }
}

/// Embeds a pre-rendered JSON value (or `null`) at the given indent:
/// continuation lines are re-indented so the composite document stays
/// uniformly formatted — and stays byte-stable, since the input is
/// already canonical.
fn embed(value: Option<&str>, indent: &str) -> String {
    match value {
        None => "null".to_string(),
        Some(json) => {
            let mut out = String::with_capacity(json.len());
            for (i, line) in json.trim_end().lines().enumerate() {
                if i > 0 {
                    out.push('\n');
                    out.push_str(indent);
                }
                out.push_str(line);
            }
            out
        }
    }
}

/// JSON string escaping: backslash, quote, and control characters
/// (reachable through the programmatic `Campaign`/`Phase` API — the
/// text parser's whitespace tokenizer cannot produce them, but the
/// emitter must not produce invalid JSON either way).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn phase_json(p: &PhaseReport, indent: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"name\": \"{}\",", escape(&p.name));
    let _ = writeln!(out, "{indent}  \"style\": \"{}\",", escape(&p.style));
    let _ = writeln!(out, "{indent}  \"driver\": \"{}\",", escape(&p.driver));
    let _ = writeln!(out, "{indent}  \"steps\": {},", p.steps);
    let _ = writeln!(out, "{indent}  \"trigger_fired\": {},", p.trigger_fired);
    let _ = writeln!(out, "{indent}  \"joins\": {},", p.joins);
    let _ = writeln!(out, "{indent}  \"leaves\": {},", p.leaves);
    let _ = writeln!(out, "{indent}  \"rejected\": {},", p.rejected);
    let _ = writeln!(out, "{indent}  \"rounds_serial\": {},", p.rounds_serial);
    let _ = writeln!(out, "{indent}  \"rounds_parallel\": {},", p.rounds_parallel);
    let _ = writeln!(out, "{indent}  \"waves\": {},", p.waves);
    let _ = writeln!(out, "{indent}  \"max_wave_width\": {},", p.max_wave_width);
    let _ = writeln!(out, "{indent}  \"wave_slack\": {},", p.wave_slack_rounds);
    let _ = writeln!(out, "{indent}  \"sent\": {},", p.sent);
    let _ = writeln!(out, "{indent}  \"delivered\": {},", p.delivered);
    let _ = writeln!(out, "{indent}  \"dropped\": {},", p.dropped);
    let _ = writeln!(out, "{indent}  \"messages\": {},", p.messages);
    let _ = writeln!(out, "{indent}  \"rounds\": {},", p.rounds);
    let _ = writeln!(
        out,
        "{indent}  \"population\": {{\"start\": {}, \"end\": {}, \"min\": {}, \"max\": {}}},",
        p.pop_start, p.pop_end, p.pop_min, p.pop_max
    );
    let _ = writeln!(
        out,
        "{indent}  \"peak_byz_fraction\": {:.6},",
        p.peak_byz_fraction
    );
    let _ = writeln!(
        out,
        "{indent}  \"violations\": {{\"binding\": {}, \"not_two_thirds_honest\": {}, \
         \"not_majority_honest\": {}, \"rand_num_compromised\": {}, \"forgeable\": {}, \
         \"size_bounds\": {}}},",
        p.binding_violations,
        p.count(ViolationKind::NotTwoThirdsHonest),
        p.count(ViolationKind::NotMajorityHonest),
        p.count(ViolationKind::RandNumCompromised),
        p.count(ViolationKind::Forgeable),
        p.count(ViolationKind::SizeBounds),
    );
    // Downsampled population trajectory: at most ~25 points per phase,
    // stride-even so equal runs sample equal steps.
    let points = p.population.points();
    let stride = (points.len() / 25).max(1);
    let traj: Vec<String> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i + 1 == points.len())
        .map(|(_, &(step, pop))| format!("[{step}, {pop:.0}]"))
        .collect();
    let _ = writeln!(out, "{indent}  \"trajectory\": [{}]", traj.join(", "));
    let _ = write!(out, "{indent}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str) -> PhaseReport {
        let mut population = TimeSeries::new("population");
        for s in 0..60u64 {
            population.push(s, 100.0 + s as f64);
        }
        PhaseReport {
            name: name.into(),
            style: "balanced".into(),
            driver: "batch-random-churn".into(),
            steps: 60,
            trigger_fired: true,
            joins: 30,
            leaves: 28,
            rejected: 2,
            rounds_serial: 600,
            rounds_parallel: 420,
            waves: 120,
            max_wave_width: 3,
            wave_slack_rounds: 180,
            sent: 0,
            delivered: 0,
            dropped: 0,
            messages: 12345,
            rounds: 600,
            pop_start: 100,
            pop_end: 159,
            pop_min: 100,
            pop_max: 159,
            peak_byz_fraction: 0.25,
            violations: vec![Violation {
                step: 3,
                kind: ViolationKind::SizeBounds,
                cluster: None,
            }],
            binding_violations: 1,
            population,
        }
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let report = CampaignReport {
            campaign: "t".into(),
            seed: 7,
            security: SecurityMode::Plain,
            phases: vec![phase("a"), phase("b")],
            trace: None,
            metrics: None,
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "same report, same bytes");
        assert!(a.contains("\"campaign\": \"t\""));
        assert!(a.contains("\"total_steps\": 120"));
        assert!(a.contains("\"size_bounds\": 1"));
        assert!(a.contains("\"trajectory\": [[0, 100]"));
        assert!(!a.contains("wall"), "no wall-clock in the report");
        assert!(!a.contains("thread"), "no thread count in the report");
        // Trajectory is downsampled: 60 points → ≤ 32 emitted.
        let traj_points = a.matches('[').count();
        assert!(
            traj_points < 80,
            "trajectory not downsampled: {traj_points}"
        );
    }

    #[test]
    fn trace_and_metrics_embed_as_json_values() {
        let report = CampaignReport {
            campaign: "t".into(),
            seed: 0,
            security: SecurityMode::Plain,
            phases: vec![phase("a")],
            trace: Some("{\n  \"capacity\": 4,\n  \"events\": []\n}\n".into()),
            metrics: Some("{\n  \"counters\": {}\n}\n".into()),
        };
        let json = report.to_json();
        // Continuation lines are re-indented under the embedding key.
        assert!(json.contains("\"trace\": {\n    \"capacity\": 4"));
        assert!(json.contains("\"metrics\": {\n    \"counters\": {}"));
        // Absent sinks render as explicit nulls.
        let bare = CampaignReport {
            trace: None,
            metrics: None,
            ..report
        };
        let j = bare.to_json();
        assert!(j.contains("\"trace\": null"));
        assert!(j.contains("\"metrics\": null"));
    }

    #[test]
    fn totals_aggregate_phases() {
        let report = CampaignReport {
            campaign: "t".into(),
            seed: 0,
            security: SecurityMode::Plain,
            phases: vec![phase("a"), phase("b"), phase("c")],
            trace: None,
            metrics: None,
        };
        assert_eq!(report.total_steps(), 180);
        assert_eq!(report.total_binding_violations(), 3);
        assert_eq!(report.total_messages(), 3 * 12345);
        assert_eq!(report.phases[0].count(ViolationKind::SizeBounds), 1);
        assert_eq!(report.phases[0].count(ViolationKind::Forgeable), 0);
    }

    #[test]
    fn json_escapes_quotes() {
        let mut p = phase("we \"quote\"");
        p.style = "back\\slash".into();
        let report = CampaignReport {
            campaign: "c".into(),
            seed: 0,
            security: SecurityMode::Authenticated,
            phases: vec![p],
            trace: None,
            metrics: None,
        };
        let json = report.to_json();
        assert!(json.contains("we \\\"quote\\\""));
        assert!(json.contains("back\\\\slash"));
        assert!(json.contains("\"security\": \"authenticated\""));
    }

    #[test]
    fn json_escapes_control_characters() {
        // Reachable via the programmatic API only; the emitter must
        // still produce valid JSON.
        let mut p = phase("multi\nline");
        p.style = "tab\there\u{1}".into();
        let report = CampaignReport {
            campaign: "c\r".into(),
            seed: 0,
            security: SecurityMode::Plain,
            phases: vec![p],
            trace: None,
            metrics: None,
        };
        let json = report.to_json();
        assert!(json.contains("multi\\nline"));
        assert!(json.contains("tab\\there\\u0001"));
        assert!(json.contains("\"campaign\": \"c\\r\""));
        // No raw control characters inside any string literal.
        assert!(!json
            .lines()
            .any(|l| l.chars().any(|c| (c as u32) < 0x20 && c != ' ')));
    }
}
