//! The campaign model: a system-level configuration plus an ordered
//! list of phases, each an adversarial regime with its own knobs and a
//! termination trigger.

use now_adversary::ClusterPick;
use now_core::{EventNetConfig, NowError};

/// When a phase hands over to the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Run exactly this many batched time steps.
    Steps(u64),
    /// Run until the population reaches `target` (or `cap` steps pass).
    PopulationAbove {
        /// Population to reach.
        target: u64,
        /// Step cap if the threshold is never reached.
        cap: u64,
    },
    /// Run until the population drops to `target` (or `cap` steps pass).
    PopulationBelow {
        /// Population to reach.
        target: u64,
        /// Step cap if the threshold is never reached.
        cap: u64,
    },
    /// Run until the first *binding* invariant violation for the
    /// system's security mode (or `cap` steps pass) — the "attack until
    /// something gives" probe.
    FirstViolation {
        /// Step cap if no violation ever occurs.
        cap: u64,
    },
}

impl Trigger {
    /// The most steps this trigger can let a phase run.
    pub fn max_steps(self) -> u64 {
        match self {
            Trigger::Steps(n) => n,
            Trigger::PopulationAbove { cap, .. }
            | Trigger::PopulationBelow { cap, .. }
            | Trigger::FirstViolation { cap } => cap,
        }
    }
}

/// Which adversarial regime a phase runs. Every style maps onto a
/// batched driver ([`now_adversary::BatchDriver`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseStyle {
    /// Empty batches (control / quiesce phases).
    Quiet,
    /// Balanced random joins/leaves ([`now_sim::BatchRandomChurn`]).
    Balanced,
    /// Population sawtooth between the bounds
    /// ([`now_sim::BatchSawtooth`]).
    Sawtooth {
        /// Lower turning point.
        low: u64,
        /// Upper turning point.
        high: u64,
    },
    /// §3.3 join–leave flood ([`now_adversary::BatchJoinLeave`]).
    JoinLeave,
    /// Forced-leave DoS ([`now_adversary::BatchForcedLeave`]).
    ForcedLeave,
    /// Split-forcing flood ([`now_adversary::BatchSplitForcing`]).
    SplitForcing,
    /// Merge pressure: drain a target cluster toward the floor
    /// ([`now_adversary::BatchMergeForcing`]).
    MergeForcing,
    /// Alternating whole-burst joins and leaves
    /// ([`now_adversary::BatchBurstChurn`]).
    BurstChurn,
}

impl PhaseStyle {
    /// Short name as written in campaign files.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseStyle::Quiet => "quiet",
            PhaseStyle::Balanced => "balanced",
            PhaseStyle::Sawtooth { .. } => "sawtooth",
            PhaseStyle::JoinLeave => "join-leave",
            PhaseStyle::ForcedLeave => "forced-leave",
            PhaseStyle::SplitForcing => "split-forcing",
            PhaseStyle::MergeForcing => "merge-forcing",
            PhaseStyle::BurstChurn => "burst",
        }
    }

    /// Whether this style aims at a target cluster (and so honors the
    /// phase's `target` policy).
    pub fn is_targeted(&self) -> bool {
        matches!(
            self,
            PhaseStyle::JoinLeave
                | PhaseStyle::ForcedLeave
                | PhaseStyle::SplitForcing
                | PhaseStyle::MergeForcing
        )
    }
}

/// Which batch execution engine a phase uses.
///
/// Outcomes are deterministic in every case: `Scheduled` ignores the
/// runner's thread count entirely, `Threaded` is bit-identical at
/// every thread count, and `Event` replays from the campaign seed and
/// the phase's network model alone — so a campaign report never
/// depends on how many workers the host offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseExec {
    /// The serial wave *scheduler*
    /// ([`now_core::ExecConfig::Serial`]).
    Scheduled,
    /// The threaded wave executor ([`now_core::ExecConfig::Pooled`])
    /// with the runner-supplied worker count.
    Threaded,
    /// The event-driven network runtime
    /// ([`now_core::ExecConfig::Event`]): each step's operations become
    /// messages on a seeded discrete-event network shaped by the
    /// phase's `latency`/`jitter`/`drop`/`partition` knobs, and the
    /// protocol reacts in delivery order.
    Event,
}

/// One phase of a campaign: a style, its knob overrides, and a trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name (report key).
    pub name: String,
    /// The adversarial regime.
    pub style: PhaseStyle,
    /// Target-selection policy for targeted styles.
    pub target: ClusterPick,
    /// Batch width override (`None` = campaign default).
    pub width: Option<usize>,
    /// Driver corruption-budget override (`None` = campaign τ). Only
    /// the *driver's* budget changes; the system's parameter bound is
    /// fixed at build time.
    pub tau: Option<f64>,
    /// Execution engine for this phase.
    pub exec: PhaseExec,
    /// Per-link network model for [`PhaseExec::Event`] phases
    /// (latency/jitter/loss/partition). Must stay at
    /// [`EventNetConfig::ideal`] on the other engines — they have no
    /// network to apply it to, and a silently ignored knob would make
    /// the campaign file lie about what ran.
    pub net: EventNetConfig,
    /// Hand-over condition.
    pub trigger: Trigger,
}

impl Phase {
    /// A phase of the given style ending after `steps` steps, with the
    /// campaign's default width/τ, threaded execution, and (for
    /// targeted styles) the largest-cluster pick.
    pub fn new(name: impl Into<String>, style: PhaseStyle, trigger: Trigger) -> Self {
        Phase {
            name: name.into(),
            style,
            target: ClusterPick::Largest,
            width: None,
            tau: None,
            exec: PhaseExec::Threaded,
            net: EventNetConfig::ideal(),
            trigger,
        }
    }

    /// Overrides the batch width.
    pub fn width(mut self, width: usize) -> Self {
        self.width = Some(width);
        self
    }

    /// Overrides the driver's corruption budget.
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = Some(tau);
        self
    }

    /// Sets the target-selection policy for a targeted style.
    pub fn target(mut self, pick: ClusterPick) -> Self {
        self.target = pick;
        self
    }

    /// Sets the execution engine.
    pub fn exec(mut self, exec: PhaseExec) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the network model and switches the phase onto the event
    /// runtime (the only engine that can honor it).
    pub fn net(mut self, net: EventNetConfig) -> Self {
        self.net = net;
        self.exec = PhaseExec::Event;
        self
    }
}

/// A declarative multi-phase attack campaign.
///
/// System-level knobs mirror [`now_sim::Scenario`]; phases then run on
/// the *same* system in order, so regime N + 1 inherits whatever state
/// regime N left behind — the evaluation shape of phased-adversary
/// work (Dynamic Byzantine Reliable Broadcast, mobile Byzantine
/// faults) the single-style runners cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (report key).
    pub name: String,
    /// Capacity parameter `N`.
    pub capacity: u64,
    /// Security parameter `k`.
    pub k: usize,
    /// Band constant `l`.
    pub l: f64,
    /// Corruption bound τ (parameters and default driver budget).
    pub tau: f64,
    /// Slack ε.
    pub epsilon: f64,
    /// Initial population (0 = 10 clusters' worth).
    pub initial_population: usize,
    /// Master seed: system init and per-phase driver streams derive
    /// from it.
    pub seed: u64,
    /// Default batch width for phases that do not override it.
    pub width: usize,
    /// Whether exchange shuffling is enabled (`false` = the §3.3
    /// baseline ablation).
    pub shuffle: bool,
    /// Flight-recorder capacity: `Some(n)` enables the system's ring
    /// buffer of the last `n` protocol events before the first phase
    /// runs, and the report carries the trace (plus the first
    /// violation's causal-neighborhood dump, if any). `None` records
    /// nothing.
    pub trace: Option<usize>,
    /// Whether the metrics registry is enabled; the report then carries
    /// the canonical metrics JSON. Metrics are protocol outcomes only,
    /// so they are part of the byte-diffed determinism surface.
    pub metrics: bool,
    /// The phases, in execution order.
    pub phases: Vec<Phase>,
}

impl Campaign {
    /// A campaign with the standard scenario defaults (`k = 2`,
    /// `l = 1.5`, `τ = 0.10`, `ε = 0.05`, width 4, shuffling on) and no
    /// phases yet.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Campaign {
            name: name.into(),
            capacity,
            k: 2,
            l: 1.5,
            tau: 0.10,
            epsilon: 0.05,
            initial_population: 0,
            seed: 0,
            width: 4,
            shuffle: true,
            trace: None,
            metrics: false,
            phases: Vec::new(),
        }
    }

    /// Appends a phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Enables the flight recorder with a ring buffer of `capacity`
    /// events.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = Some(capacity);
        self
    }

    /// Enables the metrics registry.
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Validates the campaign's shape (phase list, widths, triggers).
    /// Parameter validity (τ bounds etc.) is checked by
    /// [`now_core::NowParams`] at build time.
    ///
    /// # Errors
    /// [`NowError::CampaignReport`] naming the defect.
    pub fn check(&self) -> Result<(), NowError> {
        let fail = |reason: String| Err(NowError::CampaignReport { reason });
        if self.phases.is_empty() {
            return fail(format!("campaign `{}` has no phases", self.name));
        }
        if self.width == 0 {
            return fail("campaign batch width must be positive".into());
        }
        if self.trace == Some(0) {
            return fail("campaign trace capacity must be positive".into());
        }
        for p in &self.phases {
            if p.width == Some(0) {
                return fail(format!("phase `{}`: batch width must be positive", p.name));
            }
            if p.trigger.max_steps() == 0 {
                return fail(format!("phase `{}`: trigger allows zero steps", p.name));
            }
            if let PhaseStyle::Sawtooth { low, high } = p.style {
                if low >= high {
                    return fail(format!(
                        "phase `{}`: sawtooth needs low < high, got [{low}, {high}]",
                        p.name
                    ));
                }
            }
            if let Some(tau) = p.tau {
                if !(0.0..1.0).contains(&tau) {
                    return fail(format!("phase `{}`: tau {tau} outside [0, 1)", p.name));
                }
            }
            if p.net != EventNetConfig::ideal() && p.exec != PhaseExec::Event {
                return fail(format!(
                    "phase `{}`: network knobs (latency/jitter/drop/partition) \
                     require `exec event`",
                    p.name
                ));
            }
            if !(0.0..=1.0).contains(&p.net.drop) {
                return fail(format!(
                    "phase `{}`: drop {} outside [0, 1]",
                    p.name, p.net.drop
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_knobs() {
        let c = Campaign::new("t", 1 << 10)
            .phase(Phase::new("a", PhaseStyle::Balanced, Trigger::Steps(5)))
            .phase(
                Phase::new("b", PhaseStyle::JoinLeave, Trigger::Steps(3))
                    .width(8)
                    .tau(0.2)
                    .target(ClusterPick::First)
                    .exec(PhaseExec::Scheduled),
            );
        assert_eq!(c.k, 2);
        assert_eq!(c.width, 4);
        assert!(c.shuffle);
        assert_eq!(c.phases.len(), 2);
        assert_eq!(c.phases[1].width, Some(8));
        assert_eq!(c.phases[1].exec, PhaseExec::Scheduled);
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_rejects_defects() {
        let empty = Campaign::new("e", 1 << 10);
        assert!(matches!(
            empty.check(),
            Err(NowError::CampaignReport { .. })
        ));

        let zero_width = Campaign::new("z", 1 << 10)
            .phase(Phase::new("a", PhaseStyle::Quiet, Trigger::Steps(1)).width(0));
        assert!(zero_width.check().is_err());

        let zero_steps = Campaign::new("s", 1 << 10).phase(Phase::new(
            "a",
            PhaseStyle::Quiet,
            Trigger::Steps(0),
        ));
        assert!(zero_steps.check().is_err());

        let bad_saw = Campaign::new("w", 1 << 10).phase(Phase::new(
            "a",
            PhaseStyle::Sawtooth { low: 9, high: 9 },
            Trigger::Steps(1),
        ));
        assert!(bad_saw.check().is_err());

        let bad_tau = Campaign::new("t", 1 << 10)
            .phase(Phase::new("a", PhaseStyle::Quiet, Trigger::Steps(1)).tau(1.5));
        assert!(bad_tau.check().is_err());
    }

    #[test]
    fn net_knobs_require_the_event_engine() {
        let net = EventNetConfig::ideal().with_latency(3).with_drop(0.2);
        // The builder switches the engine along with the model.
        let ok = Campaign::new("n", 1 << 10)
            .phase(Phase::new("a", PhaseStyle::Balanced, Trigger::Steps(2)).net(net));
        assert_eq!(ok.phases[0].exec, PhaseExec::Event);
        assert!(ok.check().is_ok());

        // Hand-assembled knobs on a non-event engine are a defect.
        let mut bad = ok.clone();
        bad.phases[0].exec = PhaseExec::Threaded;
        let Err(NowError::CampaignReport { reason }) = bad.check() else {
            panic!("net knobs without exec event must fail");
        };
        assert!(reason.contains("exec event"), "{reason}");

        let mut bad_drop = Campaign::new("d", 1 << 10).phase(Phase::new(
            "a",
            PhaseStyle::Quiet,
            Trigger::Steps(1),
        ));
        bad_drop.phases[0].exec = PhaseExec::Event;
        bad_drop.phases[0].net = EventNetConfig::ideal().with_drop(1.5);
        assert!(bad_drop.check().is_err());
    }

    #[test]
    fn trigger_caps() {
        assert_eq!(Trigger::Steps(7).max_steps(), 7);
        assert_eq!(
            Trigger::PopulationAbove {
                target: 100,
                cap: 50
            }
            .max_steps(),
            50
        );
        assert_eq!(Trigger::FirstViolation { cap: 9 }.max_steps(), 9);
    }

    #[test]
    fn style_names_and_targeting() {
        assert_eq!(PhaseStyle::JoinLeave.name(), "join-leave");
        assert!(PhaseStyle::SplitForcing.is_targeted());
        assert!(!PhaseStyle::Balanced.is_targeted());
        assert_eq!(PhaseStyle::Sawtooth { low: 1, high: 2 }.name(), "sawtooth");
        assert_eq!(PhaseStyle::MergeForcing.name(), "merge-forcing");
        assert!(PhaseStyle::MergeForcing.is_targeted());
        assert_eq!(PhaseStyle::BurstChurn.name(), "burst");
        assert!(!PhaseStyle::BurstChurn.is_targeted());
    }
}
