//! Dense undirected graph used for analysis snapshots.
//!
//! Vertices are `0..n`. The OVER overlay keeps its own keyed adjacency
//! (clusters come and go); for every *measurement* (expansion, degree
//! audit, walk statistics) it exports a dense snapshot into this type.
//! Neighbor sets are ordered (`BTreeSet`) so that iteration order — and
//! therefore every random walk driven by indexed neighbor choice — is
//! deterministic.

use std::collections::BTreeSet;

/// Simple undirected graph on vertices `0..n` without self-loops or
/// parallel edges.
///
/// # Example
/// ```
/// use now_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
    edges: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge
    /// was new.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loops are excluded by construction in the
    /// overlay: a cluster is trivially "linked" to itself) or if either
    /// endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop {u}-{v} not allowed");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge ({u},{v}) out of range for {} vertices",
            self.adj.len()
        );
        let inserted = self.adj[u].insert(v);
        if inserted {
            self.adj[v].insert(u);
            self.edges += 1;
        }
        inserted
    }

    /// Removes the edge `{u, v}` if present; returns `true` if removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        let removed = self.adj[u].remove(&v);
        if removed {
            self.adj[v].remove(&u);
            self.edges -= 1;
        }
        removed
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|s| s.contains(&v))
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Ordered neighbor set of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// The `i`-th neighbor of `v` in ascending order (used by walks for
    /// deterministic indexed choice).
    ///
    /// # Panics
    /// Panics if `v` is out of range or `i >= degree(v)`.
    pub fn neighbor_at(&self, v: usize, i: usize) -> usize {
        *self.adj[v]
            .iter()
            .nth(i)
            // INVARIANT: documented contract — callers index below
            // `degree(v)`, which is this set's exact length.
            .expect("neighbor index out of range")
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(|s| s.len()).min().unwrap_or(0)
    }

    /// Mean degree (`2m/n`; 0 for the empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adj.len() as f64
        }
    }

    /// All edges as `(u, v)` pairs with `u < v`, in lexicographic order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs.iter() {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Number of edges crossing the cut `(S, S̄)` where membership in `S`
    /// is given by `in_s`.
    ///
    /// # Panics
    /// Panics if `in_s.len() != vertex_count()`.
    pub fn cut_size(&self, in_s: &[bool]) -> usize {
        assert_eq!(in_s.len(), self.adj.len(), "cut indicator length mismatch");
        let mut cut = 0;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if !in_s[u] {
                continue;
            }
            for &v in nbrs.iter() {
                if !in_s[v] {
                    cut += 1;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "parallel edge rejected");
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn neighbor_at_is_sorted() {
        let mut g = Graph::new(5);
        g.add_edge(2, 4);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        assert_eq!(g.neighbor_at(2, 0), 0);
        assert_eq!(g.neighbor_at(2, 1), 3);
        assert_eq!(g.neighbor_at(2, 2), 4);
    }

    #[test]
    fn degree_stats() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new(0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn edges_lists_each_once() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn cut_size_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert_eq!(g.cut_size(&[true, false, false]), 2);
        assert_eq!(g.cut_size(&[true, true, false]), 2);
        assert_eq!(g.cut_size(&[true, true, true]), 0);
        assert_eq!(g.cut_size(&[false, false, false]), 0);
    }

    proptest! {
        /// Handshake lemma: sum of degrees is twice the edge count, for
        /// arbitrary edge scripts (inserts and deletes interleaved).
        #[test]
        fn handshake_lemma(script in proptest::collection::vec((0usize..12, 0usize..12, any::<bool>()), 0..200)) {
            let mut g = Graph::new(12);
            for (u, v, insert) in script {
                if u == v { continue; }
                if insert { g.add_edge(u, v); } else { g.remove_edge(u, v); }
            }
            let degree_sum: usize = (0..12).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
            // Symmetry: u in N(v) iff v in N(u).
            for u in 0..12 {
                for v in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u));
                }
            }
        }

        /// A cut and its complement have the same size.
        #[test]
        fn cut_is_symmetric(edges in proptest::collection::vec((0usize..10, 0usize..10), 0..40),
                            mask in proptest::collection::vec(any::<bool>(), 10)) {
            let mut g = Graph::new(10);
            for (u, v) in edges {
                if u != v { g.add_edge(u, v); }
            }
            let flipped: Vec<bool> = mask.iter().map(|b| !b).collect();
            prop_assert_eq!(g.cut_size(&mask), g.cut_size(&flipped));
        }
    }
}
