//! Isoperimetric (edge-expansion) constants.
//!
//! Property 1 of the paper: `I(Ĝᴿ) = inf_{S ⊂ V, |S| ≤ n/2} E(S,S̄)/|S|
//! ≥ log^{1+α}N / 2` whp. This module provides:
//!
//! * [`exact_isoperimetric`] — exact value by Gray-code subset
//!   enumeration (graphs up to 24 vertices; `O(2^n)` with `O(1)` work
//!   per subset), used to *validate the estimators* and to measure small
//!   overlays exactly.
//! * [`cheeger_lower_bound`] — `λ₂/2 ≤ I(G)` from the discrete Cheeger
//!   inequality for edge expansion.
//! * [`sweep_cut_upper_bound`] — the classic Fiedler sweep: sort
//!   vertices by Fiedler value and take the best prefix cut; any cut
//!   upper-bounds the infimum.

use crate::graph::Graph;
use crate::spectral::{fiedler_vector, SpectralOptions};

/// Largest graph accepted by [`exact_isoperimetric`].
pub const EXACT_LIMIT: usize = 24;

/// Exact isoperimetric constant `min_{1 ≤ |S| ≤ n/2} E(S,S̄)/|S|`.
///
/// Uses Gray-code enumeration with bitmask adjacency: flipping one vertex
/// in/out of `S` updates the cut size in `O(1)` word operations.
///
/// Returns `f64::INFINITY` for graphs with fewer than 2 vertices (the
/// infimum ranges over an empty set).
///
/// # Panics
/// Panics if the graph has more than [`EXACT_LIMIT`] vertices.
///
/// # Example
/// ```
/// use now_graph::{gen, exact_isoperimetric};
/// // Complete graph on 6 vertices: worst S has |S| = 3, cut = 9, I = 3.
/// assert_eq!(exact_isoperimetric(&gen::complete(6)), 3.0);
/// ```
pub fn exact_isoperimetric(g: &Graph) -> f64 {
    let n = g.vertex_count();
    assert!(
        n <= EXACT_LIMIT,
        "exact isoperimetric limited to {EXACT_LIMIT} vertices, got {n}"
    );
    if n < 2 {
        return f64::INFINITY;
    }
    // Bitmask adjacency.
    let adj: Vec<u32> = (0..n)
        .map(|u| {
            let mut m = 0u32;
            for v in g.neighbors(u) {
                m |= 1 << v;
            }
            m
        })
        .collect();

    let mut s_mask: u32 = 0;
    let mut size: usize = 0;
    let mut cut: i64 = 0;
    let mut best = f64::INFINITY;
    let total: u64 = 1u64 << n;
    for i in 1..total {
        // Gray code: the bit flipped between g(i-1) and g(i).
        let flip = i.trailing_zeros() as usize;
        let bit = 1u32 << flip;
        let nbrs_in_s = (adj[flip] & s_mask).count_ones() as i64;
        let deg = adj[flip].count_ones() as i64;
        if s_mask & bit == 0 {
            // v enters S: edges to S̄ added = deg − nbrs_in_s; edges to S
            // removed from the cut = nbrs_in_s.
            cut += deg - 2 * nbrs_in_s;
            s_mask |= bit;
            size += 1;
        } else {
            s_mask &= !bit;
            size -= 1;
            let nbrs_in_s_after = (adj[flip] & s_mask).count_ones() as i64;
            cut -= deg - 2 * nbrs_in_s_after;
        }
        let eff = size.min(n - size);
        if eff > 0 {
            let ratio = cut as f64 / eff as f64;
            if ratio < best {
                best = ratio;
            }
        }
    }
    best
}

/// Cheeger-style lower bound on the isoperimetric constant: `λ₂ / 2`.
///
/// This is the bound `I(G) ≥ λ₂/2` for the combinatorial Laplacian; it
/// is what experiment X-P12 reports for overlays too large for
/// [`exact_isoperimetric`].
pub fn cheeger_lower_bound(lambda2: f64) -> f64 {
    lambda2 / 2.0
}

/// Upper bound on `I(G)` by the best Fiedler sweep cut.
///
/// Sorts vertices by Fiedler value and evaluates every prefix `S`,
/// returning the minimum `E(S,S̄)/min(|S|, n−|S|)`. Returns
/// `f64::INFINITY` for graphs with fewer than 2 vertices.
pub fn sweep_cut_upper_bound(g: &Graph, opts: SpectralOptions) -> f64 {
    let n = g.vertex_count();
    if n < 2 {
        return f64::INFINITY;
    }
    let f = fiedler_vector(g, opts);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| f[a].partial_cmp(&f[b]).unwrap_or(std::cmp::Ordering::Equal));

    let mut in_s = vec![false; n];
    let mut cut: i64 = 0;
    let mut best = f64::INFINITY;
    for (prefix_len, &v) in order.iter().enumerate() {
        // v enters S.
        let mut nbrs_in_s = 0i64;
        let deg = g.degree(v) as i64;
        for w in g.neighbors(v) {
            if in_s[w] {
                nbrs_in_s += 1;
            }
        }
        cut += deg - 2 * nbrs_in_s;
        in_s[v] = true;
        let size = prefix_len + 1;
        let eff = size.min(n - size);
        if eff > 0 {
            let ratio = cut as f64 / eff as f64;
            if ratio < best {
                best = ratio;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::spectral::algebraic_connectivity;
    use now_net::DetRng;
    use proptest::prelude::*;

    #[test]
    fn complete_graph_expansion() {
        // K_n: worst case |S| = ⌊n/2⌋, I = n − ⌊n/2⌋ = ⌈n/2⌉.
        assert_eq!(exact_isoperimetric(&gen::complete(4)), 2.0);
        assert_eq!(exact_isoperimetric(&gen::complete(6)), 3.0);
        assert_eq!(exact_isoperimetric(&gen::complete(7)), 4.0);
    }

    #[test]
    fn ring_expansion_is_poor() {
        // C_n: best S is an arc of length n/2, cut = 2.
        let n = 12;
        let i = exact_isoperimetric(&gen::ring(n));
        assert!((i - 2.0 / (n as f64 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn path_expansion() {
        // P_n: cut an end half with 1 edge: I = 1/⌊n/2⌋.
        let i = exact_isoperimetric(&gen::path(8));
        assert!((i - 0.25).abs() < 1e-12);
    }

    #[test]
    fn star_expansion() {
        // Star on n=7: S = 3 leaves, cut 3 → ratio 1.
        let i = exact_isoperimetric(&gen::star(7));
        assert!((i - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_zero_expansion() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(exact_isoperimetric(&g), 0.0);
    }

    #[test]
    fn degenerate_sizes_give_infinity() {
        assert_eq!(exact_isoperimetric(&Graph::new(0)), f64::INFINITY);
        assert_eq!(exact_isoperimetric(&Graph::new(1)), f64::INFINITY);
        assert_eq!(
            sweep_cut_upper_bound(&Graph::new(1), SpectralOptions::default()),
            f64::INFINITY
        );
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn exact_rejects_large_graphs() {
        let _ = exact_isoperimetric(&Graph::new(30));
    }

    #[test]
    fn sweep_cut_finds_barbell_bottleneck() {
        let mut g = Graph::new(10);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
                g.add_edge(u + 5, v + 5);
            }
        }
        g.add_edge(4, 5);
        let ub = sweep_cut_upper_bound(&g, SpectralOptions::default());
        assert!((ub - 0.2).abs() < 1e-9, "barbell bottleneck 1/5, got {ub}");
        assert_eq!(exact_isoperimetric(&g), 0.2);
    }

    proptest! {
        /// The sandwich Cheeger-lower ≤ exact ≤ sweep-upper holds on
        /// random connected-ish graphs.
        #[test]
        fn bounds_sandwich_exact(seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let g = gen::ring_with_chords(14, 6, &mut rng);
            let exact = exact_isoperimetric(&g);
            let l2 = algebraic_connectivity(&g, SpectralOptions::default());
            let lower = cheeger_lower_bound(l2);
            let upper = sweep_cut_upper_bound(&g, SpectralOptions::default());
            prop_assert!(lower <= exact + 1e-6, "lower {} > exact {}", lower, exact);
            prop_assert!(upper >= exact - 1e-9, "upper {} < exact {}", upper, exact);
        }

        /// Exact expansion is zero iff the graph is disconnected (n ≥ 2).
        #[test]
        fn zero_iff_disconnected(edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20)) {
            let mut g = Graph::new(8);
            for (u, v) in edges {
                if u != v { g.add_edge(u, v); }
            }
            let i = exact_isoperimetric(&g);
            let connected = crate::traversal::is_connected(&g);
            if connected {
                prop_assert!(i > 0.0);
            } else {
                prop_assert_eq!(i, 0.0);
            }
        }
    }
}
