//! Weighted sampling utilities.
//!
//! `randCl` selects clusters with probability proportional to their size
//! (`|Cᵢ|/n`). The walk achieves that online, but the analysis layer and
//! the L1 execution path frequently need direct size-biased draws — the
//! [`WeightedAlias`] table gives `O(1)` draws after `O(n)` setup
//! (Walker/Vose alias method), and [`sample_weighted_linear`] is the
//! simple `O(n)` fallback used for one-off draws on freshly changed
//! weight vectors.

use rand::Rng;

/// Walker/Vose alias table for repeated O(1) draws from a fixed discrete
/// distribution.
///
/// # Example
/// ```
/// use now_graph::WeightedAlias;
/// use now_net::DetRng;
/// use rand::Rng;
///
/// let table = WeightedAlias::new(&[1.0, 3.0]).unwrap();
/// let mut rng = DetRng::new(1);
/// let mut hits = [0u32; 2];
/// for _ in 0..10_000 { hits[table.sample(&mut rng)] += 1; }
/// assert!(hits[1] > hits[0] * 2); // index 1 is 3× as likely
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAlias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedAlias {
    /// Builds the table. Returns `None` if `weights` is empty, contains a
    /// negative/NaN entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let sum: f64 = weights.iter().sum();
        if sum.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
        {
            return None;
        }
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            // INVARIANT: the loop condition just checked both stacks
            // non-empty.
            let s = small.pop().expect("checked non-empty");
            // INVARIANT: same loop condition covers the large stack.
            let l = *large.last().expect("checked non-empty");
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(WeightedAlias { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructed that way,
    /// kept for the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_bool(self.prob[i].clamp(0.0, 1.0)) {
            i
        } else {
            self.alias[i]
        }
    }
}

/// One-off `O(n)` weighted draw (inverse-CDF scan). Returns `None` under
/// the same conditions as [`WeightedAlias::new`].
pub fn sample_weighted_linear<R: Rng>(weights: &[f64], rng: &mut R) -> Option<usize> {
    let sum: f64 = weights.iter().sum();
    if weights.is_empty()
        || sum.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
    {
        return None;
    }
    let mut t = rng.gen_range(0.0..sum);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return Some(i);
        }
        t -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// In-place Fisher–Yates shuffle (deterministic given the RNG stream —
/// used by clusterization's random node ordering).
pub fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices from `0..n` (partial Fisher–Yates).
/// Returns fewer than `k` if `k > n`.
pub fn sample_distinct<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::DetRng;
    use proptest::prelude::*;

    #[test]
    fn alias_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = WeightedAlias::new(&weights).unwrap();
        let mut rng = DetRng::new(1);
        let trials = 100_000;
        let mut hits = [0u64; 4];
        for _ in 0..trials {
            hits[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = hits[i] as f64 / trials as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "category {i}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn alias_rejects_bad_inputs() {
        assert!(WeightedAlias::new(&[]).is_none());
        assert!(WeightedAlias::new(&[0.0, 0.0]).is_none());
        assert!(WeightedAlias::new(&[1.0, -1.0]).is_none());
        assert!(WeightedAlias::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn alias_single_category() {
        let table = WeightedAlias::new(&[5.0]).unwrap();
        let mut rng = DetRng::new(2);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn alias_zero_weight_category_never_drawn() {
        let table = WeightedAlias::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = DetRng::new(3);
        for _ in 0..5000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn linear_sampler_matches_weights() {
        let weights = [2.0, 0.0, 6.0];
        let mut rng = DetRng::new(4);
        let trials = 50_000;
        let mut hits = [0u64; 3];
        for _ in 0..trials {
            hits[sample_weighted_linear(&weights, &mut rng).unwrap()] += 1;
        }
        assert_eq!(hits[1], 0);
        let ratio = hits[2] as f64 / hits[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn linear_sampler_rejects_bad_inputs() {
        let mut rng = DetRng::new(5);
        assert!(sample_weighted_linear(&[], &mut rng).is_none());
        assert!(sample_weighted_linear(&[0.0], &mut rng).is_none());
        assert!(sample_weighted_linear(&[-1.0, 2.0], &mut rng).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = DetRng::new(7);
        let s = sample_distinct(10, 4, &mut rng);
        assert_eq!(s.len(), 4);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 4);
        assert!(s.iter().all(|&x| x < 10));
        // k > n clamps.
        assert_eq!(sample_distinct(3, 10, &mut rng).len(), 3);
        assert!(sample_distinct(0, 5, &mut rng).is_empty());
    }

    proptest! {
        #[test]
        fn alias_always_returns_valid_index(weights in proptest::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let table = WeightedAlias::new(&weights).unwrap();
            let mut rng = DetRng::new(seed);
            for _ in 0..100 {
                let i = table.sample(&mut rng);
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
            }
        }

        #[test]
        fn distinct_samples_are_distinct(n in 0usize..40, k in 0usize..50, seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let s = sample_distinct(n, k, &mut rng);
            let set: std::collections::HashSet<_> = s.iter().collect();
            prop_assert_eq!(set.len(), s.len());
            prop_assert_eq!(s.len(), k.min(n));
        }
    }
}
