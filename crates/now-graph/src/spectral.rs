//! Spectral estimates: algebraic connectivity λ₂ and the Fiedler vector.
//!
//! Property 1 of the paper lower-bounds the isoperimetric constant of
//! the overlay. Computing `I(G)` exactly is NP-hard, so for overlays of
//! realistic size we bracket it: the discrete Cheeger inequality gives
//! `I(G) ≥ λ₂/2` (with λ₂ the second-smallest eigenvalue of the
//! combinatorial Laplacian `L = D − A`), and a Fiedler sweep cut gives an
//! upper bound (see [`crate::expansion`]).
//!
//! λ₂ is found by power iteration on the spectral complement
//! `B = 2Δ·I − L` restricted to the space orthogonal to the all-ones
//! vector (the kernel of `L` on a connected graph). This is dependency-
//! free and `O(iters · m)`, ample for overlays of up to a few thousand
//! clusters.

use crate::graph::Graph;

/// Tuning knobs for the power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralOptions {
    /// Maximum number of power-iteration steps.
    pub max_iters: usize,
    /// Relative tolerance on the Rayleigh quotient for early stopping.
    pub tol: f64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            max_iters: 3000,
            tol: 1e-10,
        }
    }
}

/// Applies the combinatorial Laplacian: `y = (D − A) x`.
fn laplacian_apply(g: &Graph, x: &[f64], y: &mut [f64]) {
    for u in 0..g.vertex_count() {
        let mut acc = g.degree(u) as f64 * x[u];
        for v in g.neighbors(u) {
            acc -= x[v];
        }
        y[u] = acc;
    }
}

/// Deterministic pseudo-random start vector (no RNG needed: the spectral
/// result does not depend on the start vector except in degenerate ties,
/// and determinism keeps experiment outputs stable).
fn start_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(31);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn project_out_ones(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
    norm
}

fn fiedler_iteration(g: &Graph, opts: SpectralOptions) -> (f64, Vec<f64>) {
    let n = g.vertex_count();
    if n < 2 {
        return (0.0, vec![0.0; n]);
    }
    let shift = 2.0 * g.max_degree() as f64 + 1.0;
    let mut x = start_vector(n);
    project_out_ones(&mut x);
    if normalize(&mut x) == 0.0 {
        return (0.0, vec![0.0; n]);
    }
    let mut y = vec![0.0; n];
    let mut lambda_prev = f64::INFINITY;
    let mut lambda = 0.0;
    for iter in 0..opts.max_iters {
        // y = B x = shift * x − L x
        laplacian_apply(g, &x, &mut y);
        for i in 0..n {
            y[i] = shift * x[i] - y[i];
        }
        project_out_ones(&mut y);
        if normalize(&mut y) == 0.0 {
            // x was (numerically) in the kernel of B on 1⊥: λ₂ = shift.
            return (shift, x);
        }
        std::mem::swap(&mut x, &mut y);
        // Rayleigh quotient of L at x (x is unit-norm).
        laplacian_apply(g, &x, &mut y);
        lambda = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum::<f64>();
        if iter % 8 == 7 {
            if (lambda - lambda_prev).abs() <= opts.tol * lambda.abs().max(1e-12) {
                break;
            }
            lambda_prev = lambda;
        }
    }
    (lambda.max(0.0), x)
}

/// Second-smallest eigenvalue λ₂ of the combinatorial Laplacian
/// (algebraic connectivity). Zero iff the graph is disconnected (or has
/// fewer than two vertices).
///
/// # Example
/// ```
/// use now_graph::{gen, algebraic_connectivity, SpectralOptions};
/// let g = gen::complete(6);
/// let l2 = algebraic_connectivity(&g, SpectralOptions::default());
/// assert!((l2 - 6.0).abs() < 1e-6); // λ₂(K_n) = n
/// ```
pub fn algebraic_connectivity(g: &Graph, opts: SpectralOptions) -> f64 {
    fiedler_iteration(g, opts).0
}

/// Unit-norm Fiedler vector (eigenvector of λ₂), used for sweep cuts.
/// For graphs with fewer than two vertices returns a zero vector.
pub fn fiedler_vector(g: &Graph, opts: SpectralOptions) -> Vec<f64> {
    fiedler_iteration(g, opts).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use now_net::DetRng;

    fn lambda2(g: &Graph) -> f64 {
        algebraic_connectivity(g, SpectralOptions::default())
    }

    #[test]
    fn complete_graph_lambda2_is_n() {
        for n in [3usize, 5, 9] {
            let l2 = lambda2(&gen::complete(n));
            assert!((l2 - n as f64).abs() < 1e-6, "K_{n}: got {l2}");
        }
    }

    #[test]
    fn ring_lambda2_matches_closed_form() {
        for n in [4usize, 8, 16] {
            let expect = 2.0 * (1.0 - (2.0 * std::f64::consts::PI / n as f64).cos());
            let l2 = lambda2(&gen::ring(n));
            assert!((l2 - expect).abs() < 1e-6, "C_{n}: got {l2}, want {expect}");
        }
    }

    #[test]
    fn path_lambda2_matches_closed_form() {
        for n in [3usize, 6, 10] {
            let expect = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
            let l2 = lambda2(&gen::path(n));
            assert!((l2 - expect).abs() < 1e-6, "P_{n}: got {l2}, want {expect}");
        }
    }

    #[test]
    fn star_lambda2_is_one() {
        let l2 = lambda2(&gen::star(9));
        assert!((l2 - 1.0).abs() < 1e-6, "star: got {l2}");
    }

    #[test]
    fn disconnected_graph_has_zero_lambda2() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        let l2 = lambda2(&g);
        assert!(l2.abs() < 1e-7, "disconnected: got {l2}");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(lambda2(&Graph::new(0)), 0.0);
        assert_eq!(lambda2(&Graph::new(1)), 0.0);
    }

    /// Dense ER graphs expand, over a 5-seed quantile ensemble (ROADMAP
    /// "statistical-test robustness"). Measured λ₂ ensemble on the
    /// vendored stream: [2.61, 3.20, 4.42, 4.66, 4.91].
    #[test]
    fn er_lambda2_positive_when_connected() {
        let mut l2s = Vec::new();
        for seed in [6u64, 7, 8, 9, 10] {
            let mut rng = DetRng::new(seed);
            let g = gen::erdos_renyi(80, 0.15, &mut rng);
            assert!(
                crate::traversal::is_connected(&g),
                "dense ER disconnected (seed {seed})"
            );
            l2s.push(lambda2(&g));
        }
        l2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            l2s[l2s.len() / 2] > 1.5,
            "median λ₂ of dense ER too small: {l2s:?}"
        );
        assert!(l2s[0] > 0.5, "worst-seed λ₂ of dense ER too small: {l2s:?}");
    }

    #[test]
    fn fiedler_vector_is_unit_and_mean_free() {
        let g = gen::ring(12);
        let v = fiedler_vector(&g, SpectralOptions::default());
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn fiedler_vector_separates_barbell() {
        // Two K_5 cliques joined by one edge: Fiedler vector should give
        // opposite signs to the two cliques.
        let mut g = Graph::new(10);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
                g.add_edge(u + 5, v + 5);
            }
        }
        g.add_edge(4, 5);
        let f = fiedler_vector(&g, SpectralOptions::default());
        let left_sign = f[0].signum();
        for x in &f[..5] {
            assert_eq!(x.signum(), left_sign, "clique A coherent");
        }
        for x in &f[5..10] {
            assert_eq!(x.signum(), -left_sign, "clique B opposite");
        }
    }

    #[test]
    fn lambda2_monotone_under_edge_addition_examples() {
        // Adding edges can only increase λ₂ (interlacing); check on a
        // concrete sequence.
        let mut g = gen::ring(10);
        let base = lambda2(&g);
        g.add_edge(0, 5);
        let denser = lambda2(&g);
        assert!(denser >= base - 1e-9, "{denser} < {base}");
    }
}
