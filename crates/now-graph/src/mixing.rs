//! Mixing-time estimation and graph export.
//!
//! The paper's `randCl` cost hinges on how fast the CTRW mixes on the
//! overlay — its "walks of length O(log²n)" is a worst-case budget.
//! These utilities measure the actual mixing profile (empirical TV
//! distance vs walk duration, spectral relaxation time) so experiment
//! X-RC can place the operating point, and export overlays to GraphViz
//! for inspection.

use crate::graph::Graph;
use crate::spectral::{algebraic_connectivity, SpectralOptions};
use crate::walks::{endpoint_distribution, total_variation, uniform_distribution};
use rand::Rng;
use std::fmt::Write as _;

/// One point of a mixing profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixingPoint {
    /// CTRW duration.
    pub duration: f64,
    /// Empirical total-variation distance from uniform.
    pub tv: f64,
}

/// Empirical mixing profile: TV distance from uniform after CTRWs of
/// each duration in `durations`, from the worst of `starts` (the
/// profile takes the max over start vertices, matching the worst-case
/// definition of mixing time).
pub fn mixing_profile<R: Rng>(
    g: &Graph,
    starts: &[usize],
    durations: &[f64],
    trials: usize,
    rng: &mut R,
) -> Vec<MixingPoint> {
    let target = uniform_distribution(g.vertex_count());
    durations
        .iter()
        .map(|&duration| {
            let mut worst = 0.0f64;
            for &s in starts {
                let emp = endpoint_distribution(g, s, duration, trials, rng);
                worst = worst.max(total_variation(&emp, &target));
            }
            MixingPoint {
                duration,
                tv: worst,
            }
        })
        .collect()
}

/// Spectral relaxation time of the CTRW: `1/λ₂` of the combinatorial
/// Laplacian (per-edge rate 1). TV from uniform decays like
/// `√n · e^{−λ₂ t}`, so duration `≈ relaxation · ln(n/ε²)/2` suffices
/// for TV ≤ ε. Returns `f64::INFINITY` for disconnected graphs.
pub fn relaxation_time(g: &Graph) -> f64 {
    let l2 = algebraic_connectivity(g, SpectralOptions::default());
    if l2 <= 1e-12 {
        f64::INFINITY
    } else {
        1.0 / l2
    }
}

/// Duration sufficient for TV ≤ `eps` by the spectral bound (see
/// [`relaxation_time`]); `f64::INFINITY` if disconnected.
pub fn sufficient_duration(g: &Graph, eps: f64) -> f64 {
    let n = g.vertex_count().max(2) as f64;
    let relax = relaxation_time(g);
    if !relax.is_finite() {
        return f64::INFINITY;
    }
    relax * ((n.sqrt() / eps.max(1e-9)).ln()).max(0.0)
}

/// Renders the graph in GraphViz DOT format (undirected), with optional
/// per-vertex labels.
pub fn to_dot(g: &Graph, labels: Option<&[String]>) -> String {
    let mut out = String::from("graph overlay {\n  node [shape=circle];\n");
    for v in 0..g.vertex_count() {
        let label = labels
            .and_then(|l| l.get(v))
            .cloned()
            .unwrap_or_else(|| v.to_string());
        let _ = writeln!(out, "  v{v} [label=\"{label}\"];");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  v{u} -- v{v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use now_net::DetRng;

    /// Longer walks mix better, over a 5-seed quantile ensemble
    /// (ROADMAP "statistical-test robustness"). Measured long-walk TV
    /// ensemble on the vendored stream:
    /// [0.036, 0.037, 0.039, 0.040, 0.043].
    #[test]
    fn profile_is_monotone_decreasing_on_expander() {
        let mut long_tvs = Vec::new();
        for seed in [1u64, 2, 3, 4, 5] {
            let mut rng = DetRng::new(seed);
            let g = gen::erdos_renyi(40, 0.25, &mut rng);
            let profile = mixing_profile(&g, &[0, 7], &[0.1, 1.0, 8.0], 4000, &mut rng);
            assert_eq!(profile.len(), 3);
            assert!(
                profile[0].tv > profile[2].tv,
                "short walks should be further from uniform (seed {seed}): {profile:?}"
            );
            long_tvs.push(profile[2].tv);
        }
        long_tvs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            long_tvs[long_tvs.len() / 2] < 0.08,
            "median long-walk TV too large: {long_tvs:?}"
        );
        assert!(
            *long_tvs.last().unwrap() < 0.12,
            "worst-seed long-walk TV too large: {long_tvs:?}"
        );
    }

    #[test]
    fn relaxation_time_matches_known_graphs() {
        // K_n: λ₂ = n → relaxation 1/n.
        let g = gen::complete(8);
        assert!((relaxation_time(&g) - 1.0 / 8.0).abs() < 1e-6);
        // Disconnected: infinite.
        let mut h = Graph::new(4);
        h.add_edge(0, 1);
        assert!(relaxation_time(&h).is_infinite());
    }

    #[test]
    fn sufficient_duration_actually_suffices() {
        let mut rng = DetRng::new(2);
        let g = gen::erdos_renyi(30, 0.3, &mut rng);
        let t = sufficient_duration(&g, 0.05);
        assert!(t.is_finite());
        let profile = mixing_profile(&g, &[0], &[t], 20_000, &mut rng);
        // Empirical TV ≤ eps + sampling noise.
        let noise = (30.0f64 / (2.0 * std::f64::consts::PI * 20_000.0)).sqrt();
        assert!(
            profile[0].tv <= 0.05 + 3.0 * noise,
            "TV {} at spectral duration {t}",
            profile[0].tv
        );
    }

    #[test]
    fn dot_export_shape() {
        let g = gen::path(3);
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("graph overlay {"));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v1 -- v2;"));
        assert!(dot.ends_with("}\n"));
        let labeled = to_dot(&g, Some(&["a".into(), "b".into(), "c".into()]));
        assert!(labeled.contains("label=\"b\""));
    }
}
