//! Graph generators.
//!
//! [`erdos_renyi`] is the model OVER bootstraps from (the paper links
//! each pair of clusters with probability `p = log^{1+α}N / √N` at
//! initialization). The remaining topologies are references with known
//! expansion behavior, used to validate the spectral and isoperimetric
//! estimators: rings expand poorly (`I ≈ 2/(n/2)`), complete graphs
//! expand maximally (`I = ⌈n/2⌉`), stars have conductance bottlenecks.

use crate::graph::Graph;
use rand::Rng;

/// Samples `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// # Panics
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability {p} not in [0,1]"
    );
    let mut g = Graph::new(n);
    if p == 0.0 {
        return g;
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Cycle `C_n` (requires `n ≥ 3`; smaller `n` yields a path or a single
/// edge without panicking, which keeps generators total for tests).
pub fn ring(n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    for u in 0..n.saturating_sub(1) {
        g.add_edge(u, u + 1);
    }
    if n >= 3 {
        g.add_edge(n - 1, 0);
    }
    g
}

/// Simple path `P_n`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n.saturating_sub(1) {
        g.add_edge(u, u + 1);
    }
    g
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Ring plus `chords` random chords — a cheap "small-world" expander-ish
/// construction used as a fixture in walk tests.
pub fn ring_with_chords<R: Rng>(n: usize, chords: usize, rng: &mut R) -> Graph {
    let mut g = ring(n);
    if n < 4 {
        return g;
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < chords * 20 + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

/// Near-`d`-regular random graph via the configuration-model pairing with
/// rejection of loops/multi-edges (retrying a bounded number of times).
/// The result may miss a few edges of exact regularity; callers needing
/// exact degrees should check [`Graph::min_degree`]/[`Graph::max_degree`].
///
/// # Panics
/// Panics if `d >= n`.
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d < n, "degree {d} must be below vertex count {n}");
    let mut g = Graph::new(n);
    if n == 0 || d == 0 {
        return g;
    }
    // Stub list: each vertex appears d times; pair stubs randomly.
    for _round in 0..40 {
        let mut stubs: Vec<usize> = Vec::new();
        for v in 0..n {
            let deficit = d.saturating_sub(g.degree(v));
            stubs.extend(std::iter::repeat(v).take(deficit));
        }
        if stubs.len() < 2 {
            break;
        }
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        for pair in stubs.chunks(2) {
            if let [u, v] = *pair {
                if u != v && !g.has_edge(u, v) && g.degree(u) < d && g.degree(v) < d {
                    g.add_edge(u, v);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::DetRng;
    use proptest::prelude::*;

    #[test]
    fn er_p0_is_empty_p1_is_complete() {
        let mut rng = DetRng::new(1);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let mut rng = DetRng::new(2);
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn er_rejects_bad_probability() {
        let mut rng = DetRng::new(1);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }

    #[test]
    fn er_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 0.2, &mut DetRng::new(42));
        let b = erdos_renyi(50, 0.2, &mut DetRng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), 5);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn ring_is_2_regular() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn tiny_rings_degenerate_gracefully() {
        assert_eq!(ring(0).edge_count(), 0);
        assert_eq!(ring(1).edge_count(), 0);
        assert_eq!(ring(2).edge_count(), 1);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.degree(0), 4);
        for v in 1..5 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn ring_with_chords_adds_requested_chords() {
        let mut rng = DetRng::new(3);
        let g = ring_with_chords(30, 10, &mut rng);
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn near_regular_hits_target_degree() {
        let mut rng = DetRng::new(4);
        let g = near_regular(40, 6, &mut rng);
        assert!(g.max_degree() <= 6);
        // Configuration model with retries should get very close.
        assert!(
            g.min_degree() >= 5,
            "min degree {} too far below 6",
            g.min_degree()
        );
    }

    proptest! {
        #[test]
        fn er_never_exceeds_complete(n in 0usize..30, seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let g = erdos_renyi(n, 0.5, &mut rng);
            prop_assert!(g.edge_count() <= n.saturating_sub(1) * n / 2);
            prop_assert_eq!(g.vertex_count(), n);
        }

        #[test]
        fn near_regular_respects_cap(n in 2usize..30, seed in any::<u64>()) {
            let d = (n - 1).min(5);
            let mut rng = DetRng::new(seed);
            let g = near_regular(n, d, &mut rng);
            prop_assert!(g.max_degree() <= d);
        }
    }
}
