//! Graph substrate for the NOW/OVER reproduction.
//!
//! The paper's overlay Ĝᴿ is analyzed through three lenses, all provided
//! here:
//!
//! * **Generation** ([`gen`]): Erdős–Rényi `G(n,p)` graphs — OVER starts
//!   from one with `p = log^{1+α}N / √N` — plus reference topologies used
//!   in tests (rings, stars, complete graphs, near-regular graphs).
//! * **Expansion** ([`expansion`], [`spectral`]): the isoperimetric
//!   constant `I(G) = min_{|S| ≤ n/2} E(S,S̄)/|S|` of Property 1, computed
//!   exactly for small graphs and bracketed by the Cheeger-style spectral
//!   lower bound `λ₂/2` and a Fiedler sweep-cut upper bound for large
//!   ones.
//! * **Random walks** ([`walks`]): discrete walks and the continuous-time
//!   random walk (CTRW) of `randCl`. With every edge firing at rate 1,
//!   the CTRW's stationary distribution is *uniform over vertices* even
//!   on irregular graphs — the property the paper imports from Aldous &
//!   Fill and the reason NOW uses CTRWs rather than discrete walks.
//!
//! All randomness flows through [`rand::Rng`], so callers pass
//! `now_net::DetRng` for reproducibility.
//!
//! # Example
//!
//! ```
//! use now_graph::{gen, algebraic_connectivity, SpectralOptions};
//! use now_net::DetRng;
//!
//! let mut rng = DetRng::new(1);
//! let g = gen::erdos_renyi(64, 0.2, &mut rng);
//! let lambda2 = algebraic_connectivity(&g, SpectralOptions::default());
//! assert!(lambda2 > 0.0); // connected whp at this density
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod expansion;
pub mod gen;
pub mod graph;
pub mod mixing;
pub mod sample;
pub mod spectral;
pub mod traversal;
pub mod walks;

pub use expansion::{cheeger_lower_bound, exact_isoperimetric, sweep_cut_upper_bound};
pub use graph::Graph;
pub use mixing::{mixing_profile, relaxation_time, sufficient_duration, to_dot, MixingPoint};
pub use sample::WeightedAlias;
pub use spectral::{algebraic_connectivity, fiedler_vector, SpectralOptions};
pub use walks::{ctrw_endpoint, discrete_walk, endpoint_distribution, total_variation, CtrwHop};
