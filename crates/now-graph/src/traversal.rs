//! Breadth-first traversal, connectivity, and distance utilities.
//!
//! The initialization phase of NOW needs the *diameter restricted to
//! edges adjacent to at least one honest node* (the discovery flooding
//! terminates within that many rounds); the tests here and in `now-core`
//! use these primitives to verify that bound.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS distances from `start`; unreachable vertices get `usize::MAX`.
///
/// # Panics
/// Panics if `start` is out of range.
pub fn bfs_distances(g: &Graph, start: usize) -> Vec<usize> {
    assert!(start < g.vertex_count(), "start vertex out of range");
    let mut dist = vec![usize::MAX; g.vertex_count()];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components as a vector of vertex lists, each sorted, ordered
/// by smallest member.
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Whether the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.vertex_count() <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(|&d| d != usize::MAX)
}

/// Exact diameter via all-pairs BFS; `None` if the graph is disconnected
/// or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.vertex_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for s in 0..n {
        let dist = bfs_distances(g, s);
        for &d in &dist {
            if d == usize::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Eccentricity of `v` (max distance to any reachable vertex); `None` if
/// some vertex is unreachable.
pub fn eccentricity(g: &Graph, v: usize) -> Option<usize> {
    let dist = bfs_distances(g, v);
    let mut best = 0;
    for &d in &dist {
        if d == usize::MAX {
            return None;
        }
        best = best.max(d);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use now_net::DetRng;
    use proptest::prelude::*;

    #[test]
    fn bfs_on_path() {
        let g = gen::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn components_of_two_islands() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&gen::ring(6)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameters_of_known_graphs() {
        assert_eq!(diameter(&gen::complete(5)), Some(1));
        assert_eq!(diameter(&gen::path(5)), Some(4));
        assert_eq!(diameter(&gen::ring(8)), Some(4));
        assert_eq!(diameter(&gen::star(7)), Some(2));
        let mut g = Graph::new(2);
        assert_eq!(diameter(&g), None, "disconnected");
        g.add_edge(0, 1);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn eccentricity_of_path_center_and_end() {
        let g = gen::path(5);
        assert_eq!(eccentricity(&g, 2), Some(2));
        assert_eq!(eccentricity(&g, 0), Some(4));
    }

    #[test]
    fn dense_er_is_connected_with_small_diameter() {
        let mut rng = DetRng::new(5);
        let g = gen::erdos_renyi(100, 0.15, &mut rng);
        assert!(is_connected(&g));
        let d = diameter(&g).unwrap();
        assert!(d <= 4, "ER(100, 0.15) should have tiny diameter, got {d}");
    }

    proptest! {
        /// Diameter is an upper bound for every eccentricity, and is
        /// achieved by at least one vertex.
        #[test]
        fn diameter_is_max_eccentricity(seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let g = gen::ring_with_chords(20, 5, &mut rng);
            let d = diameter(&g).expect("ring with chords is connected");
            let eccs: Vec<usize> = (0..20).map(|v| eccentricity(&g, v).unwrap()).collect();
            prop_assert_eq!(d, *eccs.iter().max().unwrap());
        }

        /// Components partition the vertex set.
        #[test]
        fn components_partition(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..30)) {
            let mut g = Graph::new(15);
            for (u, v) in edges {
                if u != v { g.add_edge(u, v); }
            }
            let comps = connected_components(&g);
            let mut all: Vec<usize> = comps.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..15).collect::<Vec<_>>());
        }
    }
}
