//! Random walks: discrete and continuous-time (CTRW).
//!
//! The paper's `randCl` primitive samples a cluster by a *continuous-time
//! random walk* on the overlay: with every edge firing at rate 1, the
//! walk jumps from `v` after an `Exp(deg(v))` holding time to a uniformly
//! random neighbor. The jump chain favors high-degree vertices, but the
//! shorter holding times there exactly compensate: the stationary
//! distribution over vertices is **uniform**, irrespective of degree
//! irregularity (Aldous & Fill). A discrete-time walk, in contrast,
//! converges to the degree-biased distribution `deg(v)/2m`. The tests at
//! the bottom demonstrate both facts on an irregular graph — this
//! contrast is exactly why NOW uses CTRWs.

use crate::graph::Graph;
use rand::Rng;

/// Result of one CTRW run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwHop {
    /// Vertex the walk ended on.
    pub endpoint: usize,
    /// Number of jumps taken (each jump is one inter-cluster message
    /// round in `randCl`'s accounting).
    pub hops: usize,
    /// Total simulated time consumed (≥ the requested duration).
    pub elapsed: f64,
}

/// Runs a discrete-time simple random walk for `steps` jumps and returns
/// the endpoint. A vertex with no neighbors absorbs the walk.
///
/// # Panics
/// Panics if `start` is out of range.
pub fn discrete_walk<R: Rng>(g: &Graph, start: usize, steps: usize, rng: &mut R) -> usize {
    assert!(start < g.vertex_count(), "start vertex out of range");
    let mut v = start;
    for _ in 0..steps {
        let d = g.degree(v);
        if d == 0 {
            break;
        }
        v = g.neighbor_at(v, rng.gen_range(0..d));
    }
    v
}

/// Runs a continuous-time random walk (per-edge rate 1) for `duration`
/// units of time starting at `start`; returns endpoint and hop count.
///
/// The holding time at `v` is `Exp(deg(v))`; the jump goes to a uniform
/// neighbor. An isolated vertex absorbs the walk (its holding time is
/// infinite).
///
/// # Panics
/// Panics if `start` is out of range or `duration` is negative/NaN.
pub fn ctrw_endpoint<R: Rng>(g: &Graph, start: usize, duration: f64, rng: &mut R) -> CtrwHop {
    assert!(start < g.vertex_count(), "start vertex out of range");
    assert!(duration >= 0.0, "duration must be non-negative");
    let mut v = start;
    let mut remaining = duration;
    let mut hops = 0usize;
    let mut elapsed = 0.0;
    loop {
        let d = g.degree(v);
        if d == 0 {
            // Absorbing: waits out the whole duration.
            elapsed += remaining;
            break;
        }
        // Exponential holding time with rate = degree (inverse-transform;
        // same construction as DetRng::exp but generic over Rng).
        let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        let hold = -u.ln() / d as f64;
        if hold >= remaining {
            elapsed += remaining;
            break;
        }
        remaining -= hold;
        elapsed += hold;
        v = g.neighbor_at(v, rng.gen_range(0..d));
        hops += 1;
    }
    CtrwHop {
        endpoint: v,
        hops,
        elapsed,
    }
}

/// Empirical endpoint distribution of `trials` independent CTRWs of the
/// given `duration` from `start`. Returns a probability vector over
/// vertices.
pub fn endpoint_distribution<R: Rng>(
    g: &Graph,
    start: usize,
    duration: f64,
    trials: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut counts = vec![0u64; g.vertex_count()];
    for _ in 0..trials {
        let hop = ctrw_endpoint(g, start, duration, rng);
        counts[hop.endpoint] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / trials.max(1) as f64)
        .collect()
}

/// Total variation distance `½ Σ |p_i − q_i|` between two distributions.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Stationary distribution of the *discrete* walk: `deg(v) / 2m`.
/// Returns all-zeros for an edgeless graph.
pub fn discrete_stationary(g: &Graph) -> Vec<f64> {
    let two_m = 2.0 * g.edge_count() as f64;
    if two_m == 0.0 {
        return vec![0.0; g.vertex_count()];
    }
    (0..g.vertex_count())
        .map(|v| g.degree(v) as f64 / two_m)
        .collect()
}

/// Uniform distribution over vertices (the CTRW's stationary law).
pub fn uniform_distribution(n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    vec![1.0 / n as f64; n]
}

/// Smallest duration `T` from `durations` whose empirical CTRW endpoint
/// distribution is within `eps` total-variation of uniform, or `None` if
/// none qualifies. Used to calibrate walk lengths in `randCl`.
pub fn calibrate_ctrw_duration<R: Rng>(
    g: &Graph,
    start: usize,
    durations: &[f64],
    trials: usize,
    eps: f64,
    rng: &mut R,
) -> Option<f64> {
    let target = uniform_distribution(g.vertex_count());
    for &t in durations {
        let emp = endpoint_distribution(g, start, t, trials, rng);
        if total_variation(&emp, &target) <= eps {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use now_net::DetRng;

    /// An intentionally irregular connected graph: a star glued to a ring.
    fn irregular() -> Graph {
        let mut g = gen::ring(8);
        // vertex 0 becomes a hub.
        for v in [2usize, 3, 5, 6] {
            g.add_edge(0, v);
        }
        g
    }

    #[test]
    fn discrete_walk_stays_in_graph() {
        let g = irregular();
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            let end = discrete_walk(&g, 3, 17, &mut rng);
            assert!(end < g.vertex_count());
        }
    }

    #[test]
    fn walk_on_isolated_vertex_is_absorbed() {
        let g = Graph::new(3); // no edges
        let mut rng = DetRng::new(2);
        assert_eq!(discrete_walk(&g, 1, 10, &mut rng), 1);
        let hop = ctrw_endpoint(&g, 1, 5.0, &mut rng);
        assert_eq!(hop.endpoint, 1);
        assert_eq!(hop.hops, 0);
        assert!((hop.elapsed - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ctrw_zero_duration_stays_put() {
        let g = irregular();
        let mut rng = DetRng::new(3);
        let hop = ctrw_endpoint(&g, 4, 0.0, &mut rng);
        assert_eq!(hop.endpoint, 4);
        assert_eq!(hop.hops, 0);
    }

    #[test]
    fn ctrw_hop_count_grows_with_duration() {
        let g = irregular();
        let mut rng = DetRng::new(4);
        let short: usize = (0..200)
            .map(|_| ctrw_endpoint(&g, 0, 1.0, &mut rng).hops)
            .sum();
        let long: usize = (0..200)
            .map(|_| ctrw_endpoint(&g, 0, 10.0, &mut rng).hops)
            .sum();
        assert!(long > short * 5, "short {short}, long {long}");
    }

    /// The headline property: on an irregular graph the CTRW endpoint
    /// distribution converges to uniform, while the discrete walk
    /// converges to the degree-biased law — so only the CTRW gives the
    /// unbiased cluster sampling `randCl` needs.
    #[test]
    fn ctrw_uniform_but_discrete_walk_degree_biased() {
        let g = irregular();
        let n = g.vertex_count();
        let mut rng = DetRng::new(5);
        let trials = 30_000;

        let uniform = uniform_distribution(n);
        let degree_law = discrete_stationary(&g);
        assert!(
            total_variation(&uniform, &degree_law) > 0.1,
            "fixture must be irregular"
        );

        // CTRW: long enough to mix.
        let emp_ctrw = endpoint_distribution(&g, 0, 40.0, trials, &mut rng);
        let tv_ctrw_uniform = total_variation(&emp_ctrw, &uniform);
        assert!(
            tv_ctrw_uniform < 0.02,
            "CTRW should be uniform, TV = {tv_ctrw_uniform}"
        );

        // Discrete walk with many steps: matches degree law, not uniform.
        let mut counts = vec![0u64; n];
        for _ in 0..trials {
            // Odd/even step parity can matter on bipartite-ish graphs;
            // use a random large step count to de-phase.
            let steps = 60 + rng.gen_range(0..2usize);
            counts[discrete_walk(&g, 0, steps, &mut rng)] += 1;
        }
        let emp_disc: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        let tv_disc_degree = total_variation(&emp_disc, &degree_law);
        let tv_disc_uniform = total_variation(&emp_disc, &uniform);
        assert!(
            tv_disc_degree < 0.03,
            "discrete walk should match degree law, TV = {tv_disc_degree}"
        );
        assert!(
            tv_disc_uniform > 0.08,
            "discrete walk should NOT be uniform, TV = {tv_disc_uniform}"
        );
    }

    #[test]
    fn tv_distance_properties() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.0, 0.5, 0.5];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tv_rejects_mismatched_lengths() {
        let _ = total_variation(&[0.5], &[0.5, 0.5]);
    }

    #[test]
    fn calibration_finds_mixing_duration() {
        let g = irregular();
        let mut rng = DetRng::new(7);
        let t = calibrate_ctrw_duration(&g, 0, &[0.5, 2.0, 8.0, 32.0], 20_000, 0.05, &mut rng);
        let t = t.expect("some duration should mix");
        assert!(t <= 32.0);
        assert!(t >= 2.0, "0.5 is too short to mix on this graph, got {t}");
    }

    #[test]
    fn endpoint_distribution_sums_to_one() {
        let g = gen::ring(6);
        let mut rng = DetRng::new(8);
        let d = endpoint_distribution(&g, 0, 3.0, 1000, &mut rng);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
