//! Quorum certificates — the cryptographic quorum rule of Remark 1.
//!
//! The counting quorum rule (more than half of a cluster sends the
//! identical message) requires the receiver to hear from the cluster
//! *directly*. With signatures (Remark 1: "one can tolerate a fraction
//! of Byzantine nodes up to 1/2 − ε, but then we need to use
//! cryptographic tools"), a cluster's endorsement becomes a
//! **transferable certificate**: any party holding `⌊|C|/2⌋+1` valid
//! member signatures over the same message can convince any other party
//! — no direct channel to `C` needed, and relays cannot forge or alter
//! it. This is what lets the overlay broadcast and walk hand-offs be
//! relayed through intermediate clusters at τ < 1/2.

use crate::crypto::{SigOracle, Signature};
use now_net::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A collectable, verifiable, forwardable proof that a cluster endorsed
/// a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumCertificate {
    /// The endorsed message (already hashed by the caller if large).
    pub message: u64,
    /// One signature per endorsing member (keyed by the claimed signer;
    /// claims are checked against the oracle at verification).
    pub signatures: BTreeMap<NodeId, Signature>,
}

/// Errors from certificate assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertificateError {
    /// Fewer than `⌊|C|/2⌋+1` valid member signatures were available.
    InsufficientSignatures {
        /// Valid signatures collected.
        have: usize,
        /// Signatures required.
        need: usize,
    },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::InsufficientSignatures { have, need } => {
                write!(f, "insufficient signatures: have {have}, need {need}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

impl QuorumCertificate {
    /// Assembles a certificate for `message` from `endorsements`
    /// (member → signature), validating each against the oracle and the
    /// member set, and requiring more than half of `members`.
    ///
    /// # Errors
    /// [`CertificateError::InsufficientSignatures`] if the valid
    /// endorsements do not clear the threshold.
    pub fn assemble(
        message: u64,
        endorsements: &[(NodeId, Signature)],
        members: &BTreeSet<NodeId>,
        oracle: &SigOracle,
    ) -> Result<Self, CertificateError> {
        let mut signatures = BTreeMap::new();
        for (member, sig) in endorsements {
            if members.contains(member) && oracle.verify(member.raw() as usize, message, *sig) {
                signatures.entry(*member).or_insert(*sig);
            }
        }
        let need = members.len() / 2 + 1;
        if signatures.len() < need {
            return Err(CertificateError::InsufficientSignatures {
                have: signatures.len(),
                need,
            });
        }
        Ok(QuorumCertificate {
            message,
            signatures,
        })
    }

    /// Verifies the certificate against a member set and the oracle:
    /// more than half of `members` validly signed this exact message.
    /// Transferability is the point — any holder can run this check.
    pub fn verify(&self, members: &BTreeSet<NodeId>, oracle: &SigOracle) -> bool {
        let valid = self
            .signatures
            .iter()
            .filter(|(member, sig)| {
                members.contains(member)
                    && oracle.verify(member.raw() as usize, self.message, **sig)
            })
            .count();
        valid >= members.len() / 2 + 1
    }

    /// Number of signatures carried.
    pub fn weight(&self) -> usize {
        self.signatures.len()
    }
}

/// Convenience: have every honest member of a cluster sign `message`
/// and assemble the certificate (Byzantine members abstain — the worst
/// case for assembly).
///
/// # Errors
/// Propagates [`CertificateError::InsufficientSignatures`] when honest
/// members alone cannot clear the bar (i.e. Byzantine ≥ 1/2).
pub fn certify_by_honest(
    message: u64,
    members: &BTreeSet<NodeId>,
    byz: &BTreeSet<NodeId>,
    oracle: &mut SigOracle,
) -> Result<QuorumCertificate, CertificateError> {
    let endorsements: Vec<(NodeId, Signature)> = members
        .iter()
        .filter(|m| !byz.contains(m))
        .map(|&m| (m, oracle.sign(m.raw() as usize, message)))
        .collect();
    QuorumCertificate::assemble(message, &endorsements, members, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u64) -> BTreeSet<NodeId> {
        (0..n).map(NodeId::from_raw).collect()
    }

    #[test]
    fn honest_majority_certifies_and_transfers() {
        let m = members(7);
        let byz: BTreeSet<NodeId> = [5u64, 6].into_iter().map(NodeId::from_raw).collect();
        let mut oracle = SigOracle::new();
        let cert = certify_by_honest(42, &m, &byz, &mut oracle).unwrap();
        assert_eq!(cert.weight(), 5);
        // Transferability: an unrelated verifier with the same oracle
        // view accepts it.
        assert!(cert.verify(&m, &oracle));
    }

    #[test]
    fn byzantine_half_blocks_assembly() {
        let m = members(6);
        let byz: BTreeSet<NodeId> = (0..3).map(NodeId::from_raw).collect();
        let mut oracle = SigOracle::new();
        // 3 honest of 6 — exactly half, below the ⌊6/2⌋+1 = 4 bar.
        let err = certify_by_honest(42, &m, &byz, &mut oracle).unwrap_err();
        assert_eq!(
            err,
            CertificateError::InsufficientSignatures { have: 3, need: 4 }
        );
    }

    #[test]
    fn tau_below_half_always_certifies() {
        // Remark 1's regime: any Byzantine fraction < 1/2 leaves enough
        // honest signers.
        for n in [5u64, 9, 15, 21] {
            let m = members(n);
            let byz: BTreeSet<NodeId> = (0..(n - 1) / 2).map(NodeId::from_raw).collect();
            let mut oracle = SigOracle::new();
            let cert = certify_by_honest(7, &m, &byz, &mut oracle)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(cert.verify(&m, &oracle));
        }
    }

    #[test]
    fn forged_signatures_do_not_count() {
        let m = members(5);
        let mut oracle = SigOracle::new();
        // Two real signatures…
        let mut endorsements: Vec<(NodeId, Signature)> = (0..2)
            .map(|i| {
                let id = NodeId::from_raw(i);
                (id, oracle.sign(i as usize, 9))
            })
            .collect();
        // …plus forged handles claiming other members signed (they
        // never did — a Byzantine relay fabricating weight).
        let real = endorsements[0].1;
        endorsements.push((NodeId::from_raw(3), real));
        endorsements.push((NodeId::from_raw(4), real));
        let err = QuorumCertificate::assemble(9, &endorsements, &m, &oracle).unwrap_err();
        assert!(matches!(
            err,
            CertificateError::InsufficientSignatures { have: 2, need: 3 }
        ));
    }

    #[test]
    fn certificate_bound_to_exact_message() {
        let m = members(5);
        let mut oracle = SigOracle::new();
        let cert = certify_by_honest(100, &m, &BTreeSet::new(), &mut oracle).unwrap();
        // Tamper with the claimed message: signatures no longer verify.
        let mut tampered = cert.clone();
        tampered.message = 101;
        assert!(!tampered.verify(&m, &oracle));
        assert!(cert.verify(&m, &oracle));
    }

    #[test]
    fn non_member_signatures_ignored() {
        let m = members(3);
        let mut oracle = SigOracle::new();
        let outsiders: Vec<(NodeId, Signature)> = (10..20u64)
            .map(|i| {
                let id = NodeId::from_raw(i);
                (id, oracle.sign(i as usize, 5))
            })
            .collect();
        let err = QuorumCertificate::assemble(5, &outsiders, &m, &oracle).unwrap_err();
        assert!(matches!(
            err,
            CertificateError::InsufficientSignatures { have: 0, need: 2 }
        ));
    }

    #[test]
    fn verification_against_wrong_membership_fails() {
        let m = members(5);
        let mut oracle = SigOracle::new();
        let cert = certify_by_honest(1, &m, &BTreeSet::new(), &mut oracle).unwrap();
        // Against a larger (post-exchange) member set, the old
        // certificate's weight may no longer clear the bar.
        let bigger = members(11);
        assert!(!cert.verify(&bigger, &oracle));
    }
}
