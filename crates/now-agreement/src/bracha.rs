//! Bracha reliable broadcast (`f < n/3`, no signatures).
//!
//! The transport under `randNum`'s commit–reveal: its *consistency*
//! (no two honest nodes deliver different values from the same source)
//! and *totality* (if one honest node delivers, all do) are exactly what
//! makes the honest members of a cluster agree on the set of valid
//! contributions.
//!
//! Message flow for source value `v`:
//! * `Init(v)` from the sender;
//! * on `Init(v)`: send `Echo(v)` (once);
//! * on `⌈(n+f+1)/2⌉` `Echo(v)`: send `Ready(v)` (once);
//! * on `f+1` `Ready(v)`: send `Ready(v)` (amplification, once);
//! * on `2f+1` `Ready(v)`: deliver `v`.
//!
//! In a synchronous network the whole exchange settles within a handful
//! of rounds; the runner executes a fixed schedule long enough for any
//! reachable delivery.

use crate::outcome::{ByzPlan, ProtocolResult};
use now_net::{Bus, CostKind, Ledger};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Init(u64),
    Echo(u64),
    Ready(u64),
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    echoed: bool,
    readied: bool,
    delivered: Option<u64>,
    echo_counts: BTreeMap<u64, BTreeSet<usize>>,
    ready_counts: BTreeMap<u64, BTreeSet<usize>>,
}

fn byz_message<R: Rng>(plan: ByzPlan, to: usize, make: fn(u64) -> Msg, rng: &mut R) -> Option<Msg> {
    match plan {
        ByzPlan::Silent => None,
        ByzPlan::ConstantValue(v) => Some(make(v)),
        ByzPlan::Equivocate(a, b) => Some(make(if to % 2 == 0 { a } else { b })),
        ByzPlan::Random => Some(make(rng.gen())),
    }
}

/// Runs one Bracha broadcast from `sender` among `n` ports.
///
/// `f` is the assumed resilience (thresholds are computed from it);
/// correctness needs `n > 3f` and `byz.len() ≤ f`. Byzantine nodes
/// follow `plan` in every role (sender and echo/ready participants).
///
/// Honest decisions are `Some(v)` (delivered) or `None`. Costs are
/// recorded under [`CostKind::Agreement`].
///
/// # Panics
/// Panics if `n == 0` or `sender ≥ n`.
// Protocol entry point: takes the full (n, sender, value, byz, f, plan,
// ledger, rng) tuple by design — bundling would hide the paper's inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_bracha<R: Rng>(
    n: usize,
    sender: usize,
    value: u64,
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    ledger: &mut Ledger,
    rng: &mut R,
) -> ProtocolResult<Option<u64>> {
    assert!(n > 0, "bracha needs at least one node");
    assert!(sender < n, "sender {sender} out of range for n={n}");

    ledger.begin(CostKind::Agreement);
    let mut bus: Bus<Msg> = Bus::new(n);
    let mut state: Vec<NodeState> = vec![NodeState::default(); n];
    let echo_threshold = (n + f + 1).div_ceil(2);
    let ready_amplify = f + 1;
    let deliver_threshold = 2 * f + 1;

    // Dispatch round.
    if byz.contains(&sender) {
        for to in 0..n {
            if to == sender {
                continue;
            }
            if let Some(m) = byz_message(plan, to, Msg::Init, rng) {
                bus.send(sender, to, m);
            }
        }
    } else {
        bus.broadcast(sender, Msg::Init(value));
        // The sender echoes its own value.
        state[sender].echoed = true;
        state[sender]
            .echo_counts
            .entry(value)
            .or_default()
            .insert(sender);
        bus.broadcast(sender, Msg::Echo(value));
    }

    // Enough rounds for init→echo→ready→amplify→deliver on a synchronous
    // bus, with slack.
    let schedule_rounds = 8;
    for _ in 0..schedule_rounds {
        bus.step();
        let mut outgoing: Vec<(usize, Msg)> = Vec::new();
        let mut byz_outgoing: Vec<(usize, usize, Msg)> = Vec::new();
        for p in 0..n {
            let inbox = bus.recv(p);
            if byz.contains(&p) {
                // Byzantine participants: one adversarial echo+ready volley.
                if !state[p].echoed {
                    state[p].echoed = true;
                    for to in 0..n {
                        if to == p {
                            continue;
                        }
                        if let Some(m) = byz_message(plan, to, Msg::Echo, rng) {
                            byz_outgoing.push((p, to, m));
                        }
                        if let Some(m) = byz_message(plan, to, Msg::Ready, rng) {
                            byz_outgoing.push((p, to, m));
                        }
                    }
                }
                continue;
            }
            for (from, msg) in inbox {
                match msg {
                    Msg::Init(v) => {
                        if from == sender && !state[p].echoed {
                            state[p].echoed = true;
                            state[p].echo_counts.entry(v).or_default().insert(p);
                            outgoing.push((p, Msg::Echo(v)));
                        }
                    }
                    Msg::Echo(v) => {
                        state[p].echo_counts.entry(v).or_default().insert(from);
                    }
                    Msg::Ready(v) => {
                        state[p].ready_counts.entry(v).or_default().insert(from);
                    }
                }
            }
            // Threshold transitions (evaluated after draining the inbox).
            if !state[p].readied {
                let ready_for: Option<u64> = state[p]
                    .echo_counts
                    .iter()
                    .find(|(_, s)| s.len() >= echo_threshold)
                    .map(|(&v, _)| v)
                    .or_else(|| {
                        state[p]
                            .ready_counts
                            .iter()
                            .find(|(_, s)| s.len() >= ready_amplify)
                            .map(|(&v, _)| v)
                    });
                if let Some(v) = ready_for {
                    state[p].readied = true;
                    state[p].ready_counts.entry(v).or_default().insert(p);
                    outgoing.push((p, Msg::Ready(v)));
                }
            }
            if state[p].delivered.is_none() {
                if let Some((&v, _)) = state[p]
                    .ready_counts
                    .iter()
                    .find(|(_, s)| s.len() >= deliver_threshold)
                {
                    state[p].delivered = Some(v);
                }
            }
        }
        for (p, msg) in outgoing {
            bus.broadcast(p, msg);
        }
        for (p, to, msg) in byz_outgoing {
            bus.send(p, to, msg);
        }
    }

    ledger.add_messages(bus.messages_sent());
    ledger.add_rounds(bus.round());
    ledger.end();

    ProtocolResult {
        decisions: (0..n)
            .filter(|p| !byz.contains(p))
            .map(|p| (p, state[p].delivered))
            .collect(),
        rounds: bus.round(),
        messages: bus.messages_sent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::DetRng;
    use proptest::prelude::*;

    fn run(
        n: usize,
        sender: usize,
        value: u64,
        byz: &[usize],
        f: usize,
        plan: ByzPlan,
        seed: u64,
    ) -> ProtocolResult<Option<u64>> {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_bracha(n, sender, value, &byz, f, plan, &mut ledger, &mut rng)
    }

    #[test]
    fn honest_sender_all_deliver() {
        let r = run(7, 0, 5, &[], 2, ByzPlan::Silent, 1);
        assert_eq!(r.unanimous(), Some(&Some(5)));
    }

    #[test]
    fn honest_sender_with_noisy_byzantines() {
        for plan in [
            ByzPlan::Silent,
            ByzPlan::ConstantValue(1),
            ByzPlan::Equivocate(1, 2),
            ByzPlan::Random,
        ] {
            let r = run(7, 0, 5, &[3, 6], 2, plan, 2);
            assert_eq!(r.unanimous(), Some(&Some(5)), "plan {plan:?}");
        }
    }

    #[test]
    fn silent_byzantine_sender_delivers_nothing() {
        let r = run(7, 1, 5, &[1], 2, ByzPlan::Silent, 3);
        assert_eq!(r.unanimous(), Some(&None));
    }

    #[test]
    fn equivocating_sender_consistency() {
        // No two honest nodes may deliver *different* values — the core
        // consistency property. (Some may deliver nothing.)
        for seed in 0..20u64 {
            let r = run(7, 0, 0, &[0, 3], 2, ByzPlan::Equivocate(10, 20), seed);
            let delivered: BTreeSet<u64> = r.decisions.values().flatten().copied().collect();
            assert!(
                delivered.len() <= 1,
                "seed {seed}: two values delivered: {delivered:?}"
            );
        }
    }

    #[test]
    fn totality_under_equivocation() {
        // If any honest node delivers, all honest nodes deliver.
        for seed in 0..20u64 {
            let r = run(10, 0, 0, &[0, 4, 7], 3, ByzPlan::Equivocate(8, 9), seed);
            let some = r.decisions.values().filter(|d| d.is_some()).count();
            assert!(
                some == 0 || some == r.decisions.len(),
                "seed {seed}: partial delivery ({some}/{})",
                r.decisions.len()
            );
        }
    }

    #[test]
    fn quadratic_message_complexity() {
        let r = run(10, 0, 1, &[], 3, ByzPlan::Silent, 4);
        // init n−1, echo n(n−1), ready n(n−1) — below 3n².
        assert!(
            r.messages <= 3 * 10 * 10,
            "messages {} exceed 3n²",
            r.messages
        );
    }

    #[test]
    fn single_node_trivially_delivers() {
        let r = run(1, 0, 9, &[], 0, ByzPlan::Silent, 5);
        assert_eq!(r.unanimous(), Some(&Some(9)));
    }

    proptest! {
        /// Consistency + totality for any byzantine subset of size ≤ f
        /// and any plan (n = 10, f = 3).
        #[test]
        fn consistency_and_totality(
            seed in any::<u64>(),
            byz_set in proptest::collection::btree_set(0usize..10, 0..4),
            sender in 0usize..10,
            plan_idx in 0usize..4,
        ) {
            let plan = [
                ByzPlan::Silent,
                ByzPlan::ConstantValue(5),
                ByzPlan::Equivocate(1, 2),
                ByzPlan::Random,
            ][plan_idx];
            let byz: Vec<usize> = byz_set.into_iter().collect();
            let r = run(10, sender, 33, &byz, 3, plan, seed);
            let delivered: BTreeSet<u64> = r.decisions.values().flatten().copied().collect();
            prop_assert!(delivered.len() <= 1, "consistency violated: {:?}", delivered);
            let some = r.decisions.values().filter(|d| d.is_some()).count();
            prop_assert!(some == 0 || some == r.decisions.len(), "totality violated");
            if !byz.contains(&sender) {
                prop_assert_eq!(r.unanimous(), Some(&Some(33)), "validity violated");
            }
        }
    }
}
