//! Phase-King synchronous Byzantine agreement (Berman–Garay–Perry).
//!
//! Multivalued agreement over `u64` tolerating `f < n/4`. Each of the
//! `f+1` phases has two rounds:
//!
//! 1. **Exchange**: every node broadcasts its current value; each node
//!    computes the most frequent value it saw (`maj`) and its count
//!    (`cnt`), counting its own value once.
//! 2. **King**: the phase's king broadcasts its `maj`. A node keeps its
//!    own `maj` if `cnt > n/2 + f`, otherwise adopts the king's value.
//!
//! With `n > 4f` there are `f+1` kings among which at least one is
//! honest; after that king's phase all honest nodes hold the same value
//! and the threshold keeps them there. NOW's initialization uses this to
//! agree on the random partition seed; the paper notes any BA protocol
//! will do.

use crate::outcome::{ByzPlan, ProtocolResult};
use now_net::{Bus, CostKind, Ledger};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Value(u64),
    KingValue(u64),
}

fn byz_value<R: Rng>(plan: ByzPlan, to: usize, rng: &mut R) -> Option<u64> {
    match plan {
        ByzPlan::Silent => None,
        ByzPlan::ConstantValue(v) => Some(v),
        ByzPlan::Equivocate(a, b) => Some(if to % 2 == 0 { a } else { b }),
        ByzPlan::Random => Some(rng.gen()),
    }
}

/// Most frequent value with deterministic tie-breaking (smallest value
/// wins ties), plus its multiplicity.
fn majority(counts: &BTreeMap<u64, usize>) -> (u64, usize) {
    let mut best_v = 0u64;
    let mut best_c = 0usize;
    for (&v, &c) in counts {
        if c > best_c {
            best_v = v;
            best_c = c;
        }
    }
    (best_v, best_c)
}

/// Runs Phase-King among `n = inputs.len()` ports, with `byz` ports
/// controlled by `plan`.
///
/// `f_max` is the resilience the protocol is configured for (number of
/// phases is `f_max + 1`); correctness requires `n > 4·f_max` **and**
/// `byz.len() ≤ f_max`. Running outside those bounds is allowed (tests
/// do, to demonstrate failure modes) — the protocol simply loses its
/// guarantees.
///
/// Costs are recorded under [`CostKind::Agreement`] in `ledger`.
///
/// # Panics
/// Panics if `inputs` is empty or a port in `byz` is out of range.
pub fn run_phase_king<R: Rng>(
    inputs: &[u64],
    byz: &BTreeSet<usize>,
    f_max: usize,
    plan: ByzPlan,
    ledger: &mut Ledger,
    rng: &mut R,
) -> ProtocolResult<u64> {
    let n = inputs.len();
    assert!(n > 0, "phase king needs at least one node");
    if let Some(&p) = byz.iter().next_back() {
        assert!(p < n, "byzantine port {p} out of range for n={n}");
    }

    ledger.begin(CostKind::Agreement);
    let mut bus: Bus<Msg> = Bus::new(n);
    let mut value: Vec<u64> = inputs.to_vec();
    let threshold = n / 2 + f_max;

    for phase in 0..=f_max {
        let king = phase % n;

        // Round 1: exchange values.
        for p in 0..n {
            if byz.contains(&p) {
                for to in 0..n {
                    if to != p {
                        if let Some(v) = byz_value(plan, to, rng) {
                            bus.send(p, to, Msg::Value(v));
                        }
                    }
                }
            } else {
                bus.broadcast(p, Msg::Value(value[p]));
            }
        }
        bus.step();
        let mut maj = vec![0u64; n];
        let mut cnt = vec![0usize; n];
        for p in 0..n {
            let received = bus.recv(p);
            if byz.contains(&p) {
                continue;
            }
            let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
            *counts.entry(value[p]).or_default() += 1; // own value
            for (_, msg) in received {
                if let Msg::Value(v) = msg {
                    *counts.entry(v).or_default() += 1;
                }
            }
            let (m, c) = majority(&counts);
            maj[p] = m;
            cnt[p] = c;
        }

        // Round 2: king broadcast.
        if byz.contains(&king) {
            for to in 0..n {
                if to != king {
                    if let Some(v) = byz_value(plan, to, rng) {
                        bus.send(king, to, Msg::KingValue(v));
                    }
                }
            }
        } else {
            bus.broadcast(king, Msg::KingValue(maj[king]));
        }
        bus.step();
        for p in 0..n {
            let received = bus.recv(p);
            if byz.contains(&p) {
                continue;
            }
            let king_value = received.iter().find_map(|(from, msg)| match msg {
                Msg::KingValue(v) if *from == king => Some(*v),
                _ => None,
            });
            if p == king || cnt[p] > threshold {
                value[p] = maj[p];
            } else {
                // Adopt the king's value; a silent king leaves maj.
                value[p] = king_value.unwrap_or(maj[p]);
            }
        }
    }

    ledger.add_messages(bus.messages_sent());
    ledger.add_rounds(bus.round());
    ledger.end();

    ProtocolResult {
        decisions: (0..n)
            .filter(|p| !byz.contains(p))
            .map(|p| (p, value[p]))
            .collect(),
        rounds: bus.round(),
        messages: bus.messages_sent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{check_agreement, check_validity};
    use now_net::DetRng;
    use proptest::prelude::*;

    fn run(
        inputs: &[u64],
        byz: &[usize],
        f_max: usize,
        plan: ByzPlan,
        seed: u64,
    ) -> ProtocolResult<u64> {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_phase_king(inputs, &byz, f_max, plan, &mut ledger, &mut rng)
    }

    #[test]
    fn all_honest_same_input_decides_it() {
        let r = run(&[7; 9], &[], 2, ByzPlan::Silent, 1);
        assert!(check_agreement(&r));
        assert_eq!(r.unanimous(), Some(&7));
    }

    #[test]
    fn validity_with_byzantine_noise() {
        // n = 9, f = 2 ≤ f_max = 2, n > 4f.
        let inputs = [5u64; 9];
        for plan in [
            ByzPlan::Silent,
            ByzPlan::ConstantValue(9),
            ByzPlan::Equivocate(1, 2),
            ByzPlan::Random,
        ] {
            let r = run(&inputs, &[0, 4], 2, plan, 2);
            assert!(
                check_validity(&inputs, &[0, 4].into_iter().collect(), &r),
                "validity broken under {plan:?}"
            );
        }
    }

    #[test]
    fn agreement_with_split_inputs_and_byzantine_kings() {
        // Kings 0 and 1 are Byzantine; the third phase's king is honest.
        let inputs = [1u64, 2, 1, 2, 1, 2, 1, 2, 1];
        for plan in [
            ByzPlan::Equivocate(1, 2),
            ByzPlan::ConstantValue(3),
            ByzPlan::Random,
            ByzPlan::Silent,
        ] {
            let r = run(&inputs, &[0, 1], 2, plan, 3);
            assert!(check_agreement(&r), "agreement broken under {plan:?}");
        }
    }

    #[test]
    fn single_node_decides_own_input() {
        let r = run(&[3], &[], 0, ByzPlan::Silent, 4);
        assert_eq!(r.unanimous(), Some(&3));
    }

    #[test]
    fn rounds_are_two_per_phase() {
        let r = run(&[0; 5], &[], 1, ByzPlan::Silent, 5);
        assert_eq!(r.rounds, 4, "(f_max+1) phases × 2 rounds");
    }

    #[test]
    fn message_complexity_is_quadratic_per_phase() {
        let n = 9u64;
        let r = run(&[0; 9], &[], 2, ByzPlan::Silent, 6);
        // 3 phases × (n(n−1) exchange + (n−1) king).
        assert_eq!(r.messages, 3 * (n * (n - 1) + (n - 1)));
    }

    #[test]
    fn ledger_captures_agreement_cost() {
        let byz = BTreeSet::new();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(7);
        let r = run_phase_king(&[1; 5], &byz, 1, ByzPlan::Silent, &mut ledger, &mut rng);
        let s = ledger.stats(CostKind::Agreement);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, r.messages);
        assert_eq!(s.total_rounds, r.rounds);
    }

    #[test]
    fn too_many_byzantine_can_break_agreement_sometimes() {
        // Sanity check that the f < n/4 bound is load-bearing: with 3
        // byzantine of 9 (f_max still 2), equivocation is *allowed* to
        // break things. We only assert the run completes.
        let inputs = [1u64, 2, 1, 2, 1, 2, 1, 2, 1];
        let r = run(&inputs, &[0, 1, 2], 2, ByzPlan::Equivocate(1, 2), 8);
        assert_eq!(r.decisions.len(), 6);
    }

    proptest! {
        /// Agreement and validity hold for random inputs, any ≤ f_max
        /// byzantine set, and all plans, when n > 4·f_max.
        #[test]
        fn agreement_validity_hold_in_regime(
            seed in any::<u64>(),
            inputs in proptest::collection::vec(0u64..4, 9),
            byz_pair in proptest::collection::btree_set(0usize..9, 0..3),
            plan_idx in 0usize..4,
        ) {
            let plan = [
                ByzPlan::Silent,
                ByzPlan::ConstantValue(77),
                ByzPlan::Equivocate(0, 1),
                ByzPlan::Random,
            ][plan_idx];
            let byz: Vec<usize> = byz_pair.into_iter().take(2).collect();
            let r = run(&inputs, &byz, 2, plan, seed);
            prop_assert!(check_agreement(&r));
            prop_assert!(check_validity(&inputs, &byz.into_iter().collect(), &r));
        }
    }
}
