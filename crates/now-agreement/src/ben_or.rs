//! Ben-Or randomized binary consensus under asynchrony (`f < n/5`).
//!
//! The paper's §6 lists removing the synchrony assumption as future
//! work. This module supplies the asynchronous agreement building block
//! that substitution needs: Ben-Or's classic protocol (PODC 1983),
//! executed event-by-event on [`now_net::AsyncNet`] — no rounds, no
//! clocks; every transition is triggered by a single message delivery.
//!
//! Per phase `r`, with `n` nodes and resilience parameter `f`:
//!
//! 1. **Report**: broadcast `R(r, x)`; wait for `n − f` phase-`r`
//!    reports. If more than `(n + f)/2` carry the same value `v`,
//!    propose `v`, else propose `⊥`.
//! 2. **Proposal**: broadcast `P(r, proposal)`; wait for `n − f`
//!    phase-`r` proposals. If some value `v` has more than `(n + f)/2`
//!    proposals, **decide** `v` (and keep participating so others
//!    terminate). If `v` has at least `f + 1` proposals, adopt `x = v`.
//!    Otherwise flip a fair local coin for `x`. Enter phase `r + 1`.
//!
//! Safety (agreement + validity) holds under any message scheduling
//! with `n > 5f`; termination holds with probability 1 because once
//! every honest coin lands the same way the next phase decides. The
//! expected phase count is constant for random scheduling (what the
//! delay-randomizing [`AsyncNet`] produces) but exponential against a
//! worst-case scheduler — the gap the **common coin** closes:
//! [`run_ben_or_with_coin`] with [`CoinMode::Common`] is Rabin's
//! variant, where a shared per-phase beacon (the ideal functionality of
//! a threshold signature) gives an O(1) expected phase count against
//! any scheduler.
//!
//! [`AsyncNet`]: now_net::AsyncNet

use crate::outcome::{ByzPlan, ProtocolResult};
use now_net::{AsyncNet, CostKind, DetRng, EventNet, EventNetConfig, Ledger};
use rand::{Rng, RngCore};
use std::collections::{BTreeMap, BTreeSet};

/// The state machine's view of a network: both the delay-randomizing
/// [`AsyncNet`] and the seeded discrete-event [`EventNet`] drive the
/// *same* Ben-Or transition code, so the two execution paths cannot
/// diverge semantically — only in who schedules (and who may drop)
/// the deliveries.
trait Transport {
    fn send(&mut self, from: usize, to: usize, m: Msg, rng: &mut DetRng);
    fn bcast(&mut self, from: usize, m: Msg, rng: &mut DetRng);
    fn pop(&mut self) -> Option<(usize, usize, Msg)>;
    fn messages_sent(&self) -> u64;
    fn now(&self) -> u64;
    fn dropped(&self) -> u64;
}

impl Transport for AsyncNet<Msg> {
    fn send(&mut self, from: usize, to: usize, m: Msg, rng: &mut DetRng) {
        AsyncNet::send(self, from, to, m, rng);
    }
    fn bcast(&mut self, from: usize, m: Msg, rng: &mut DetRng) {
        self.broadcast(from, m, rng);
    }
    fn pop(&mut self) -> Option<(usize, usize, Msg)> {
        AsyncNet::pop(self).map(|(_, env)| (env.from, env.to, env.payload))
    }
    fn messages_sent(&self) -> u64 {
        AsyncNet::messages_sent(self)
    }
    fn now(&self) -> u64 {
        AsyncNet::now(self)
    }
    fn dropped(&self) -> u64 {
        // The async net delivers everything (no loss model, and Ben-Or
        // never kills a port).
        0
    }
}

impl Transport for EventNet<Msg> {
    fn send(&mut self, from: usize, to: usize, m: Msg, _rng: &mut DetRng) {
        // Loss/partition outcomes are the model's to decide; the
        // counters and the report's `dropped` carry the verdict.
        let _ = EventNet::send(self, from, to, m);
    }
    fn bcast(&mut self, from: usize, m: Msg, _rng: &mut DetRng) {
        for to in 0..self.ports() {
            if to != from {
                let _ = EventNet::send(self, from, to, m);
            }
        }
    }
    fn pop(&mut self) -> Option<(usize, usize, Msg)> {
        EventNet::pop(self).map(|(_, env)| (env.from, env.to, env.payload))
    }
    fn messages_sent(&self) -> u64 {
        EventNet::messages_sent(self)
    }
    fn now(&self) -> u64 {
        EventNet::now(self)
    }
    fn dropped(&self) -> u64 {
        EventNet::dropped(self)
    }
}

/// Where the protocol's phase coin comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinMode {
    /// Each node flips privately (Ben-Or 1983). Terminates w.p. 1, in
    /// expected O(1) phases under *random* scheduling but exponentially
    /// many against a worst-case scheduler.
    Local,
    /// All honest nodes see the same per-phase coin (Rabin 1983) — the
    /// ideal functionality a threshold-signature beacon implements. One
    /// common flip landing on the adopted value finishes the phase, so
    /// the expected phase count is O(1) against *any* scheduler.
    Common {
        /// Beacon seed (models the setup's shared key material).
        seed: u64,
    },
}

impl CoinMode {
    fn flip(self, phase: u64, rng: &mut DetRng) -> u64 {
        match self {
            CoinMode::Local => rng.gen_range(0..2),
            CoinMode::Common { seed } => {
                // SplitMix64 over (seed, phase): identical at every node.
                let mut z = seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1
            }
        }
    }
}

/// One Ben-Or message: a phase-stamped report or proposal. `None` in a
/// proposal is the protocol's `⊥`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Report { phase: u64, value: u64 },
    Proposal { phase: u64, value: Option<u64> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    AwaitReports,
    AwaitProposals,
}

#[derive(Debug, Clone)]
struct Node {
    x: u64,
    phase: u64,
    stage: Stage,
    decided: Option<u64>,
    decided_at_phase: Option<u64>,
    /// `reports[phase][sender] = value` (first message per sender wins;
    /// equivocation across recipients is already point-to-point).
    reports: BTreeMap<u64, BTreeMap<usize, u64>>,
    proposals: BTreeMap<u64, BTreeMap<usize, Option<u64>>>,
}

impl Node {
    fn new(input: u64) -> Self {
        Node {
            x: input,
            phase: 0,
            stage: Stage::AwaitReports,
            decided: None,
            decided_at_phase: None,
            reports: BTreeMap::new(),
            proposals: BTreeMap::new(),
        }
    }
}

/// Outcome of one asynchronous Ben-Or execution, beyond the common
/// [`ProtocolResult`] fields.
#[derive(Debug, Clone)]
pub struct BenOrReport {
    /// Decisions and message/“round” costs (rounds = highest phase any
    /// honest node reached — phases are the async analogue of rounds).
    pub result: ProtocolResult<u64>,
    /// Phase at which each honest node decided.
    pub decision_phases: BTreeMap<usize, u64>,
    /// Virtual time of the last delivery the execution consumed.
    pub virtual_time: u64,
    /// Whether every honest node decided before the event horizon.
    pub all_decided: bool,
    /// Messages the network model dropped (loss or partition). Always
    /// zero on [`AsyncNet`]; on the event runtime
    /// ([`run_ben_or_event`]) a non-zero count explains a stalled
    /// execution — Ben-Or has no retransmission, so enough losses leave
    /// thresholds forever unmet and `all_decided` false.
    pub dropped: u64,
}

fn byz_volley<T: Transport>(
    net: &mut T,
    p: usize,
    n: usize,
    phase: u64,
    plan: ByzPlan,
    rng: &mut DetRng,
) {
    for to in 0..n {
        if to == p {
            continue;
        }
        let (report_v, proposal_v) = match plan {
            ByzPlan::Silent => continue,
            ByzPlan::ConstantValue(v) => (v % 2, Some(v % 2)),
            ByzPlan::Equivocate(a, b) => {
                let v = if to % 2 == 0 { a % 2 } else { b % 2 };
                (v, Some(v))
            }
            ByzPlan::Random => {
                let v: u64 = rng.gen_range(0..2);
                let prop = if rng.gen_bool(0.5) {
                    None
                } else {
                    Some(rng.gen_range(0..2))
                };
                (v, prop)
            }
        };
        net.send(
            p,
            to,
            Msg::Report {
                phase,
                value: report_v,
            },
            rng,
        );
        net.send(
            p,
            to,
            Msg::Proposal {
                phase,
                value: proposal_v,
            },
            rng,
        );
    }
}

/// Runs asynchronous Ben-Or binary consensus among `n` ports with
/// binary `inputs` (`inputs[p] ∈ {0, 1}`), Byzantine set `byz` following
/// `plan`, and random message delays in `1..=max_delay`.
///
/// `f` is the resilience parameter the thresholds are computed from;
/// safety needs `n > 5f` and `byz.len() ≤ f`. Execution stops when all
/// honest nodes decide or any reaches `max_phases` (reported via
/// [`BenOrReport::all_decided`]). Costs land under
/// [`CostKind::Agreement`]: messages as counted by the net, rounds as
/// the highest phase reached.
///
/// # Panics
/// Panics if `n == 0`, any input is not 0/1, or `f ≥ n`.
// Protocol entry point: the full (n, inputs, byz, f, plan, …) tuple is
// the paper's interface; bundling would hide which knobs exist.
#[allow(clippy::too_many_arguments)]
pub fn run_ben_or(
    n: usize,
    inputs: &[u64],
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    max_delay: u64,
    max_phases: u64,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> BenOrReport {
    run_ben_or_with_coin(
        n,
        inputs,
        byz,
        f,
        plan,
        CoinMode::Local,
        max_delay,
        max_phases,
        ledger,
        rng,
    )
}

/// [`run_ben_or`] with an explicit [`CoinMode`] — `CoinMode::Common`
/// is Rabin's variant: a shared per-phase beacon makes the expected
/// phase count O(1) against any scheduler (the beacon itself is the
/// ideal functionality of a threshold signature; simulated here like
/// the rest of the crate's cryptography).
///
/// # Panics
/// As [`run_ben_or`].
// Same interface as run_ben_or plus the coin mode — by design.
#[allow(clippy::too_many_arguments)]
pub fn run_ben_or_with_coin(
    n: usize,
    inputs: &[u64],
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    coin: CoinMode,
    max_delay: u64,
    max_phases: u64,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> BenOrReport {
    let mut net: AsyncNet<Msg> = AsyncNet::new(n, max_delay);
    run_core(
        &mut net, n, inputs, byz, f, plan, coin, max_phases, ledger, rng,
    )
}

/// [`run_ben_or_with_coin`] on the **event runtime**: the same Ben-Or
/// state machine, scheduled by a seeded [`EventNet`] whose per-link
/// latency/jitter/loss/partition models come from `net` — the
/// asynchronous agreement building block running over the same network
/// substrate as the event-driven NOW engine. The net's seed is drawn
/// from `rng`, so the full execution — delivery order, losses,
/// decisions — is a pure function of `(rng seed, net config)`.
///
/// Unlike [`AsyncNet`], the model may *drop* messages (loss, or a
/// partition still unhealed at a message's scheduled delivery time).
/// Ben-Or has no retransmission, so dropped messages can leave
/// thresholds forever unmet: the run then ends with
/// [`BenOrReport::all_decided`] `false` and the loss count in
/// [`BenOrReport::dropped`] — liveness needs the network to deliver,
/// which is exactly the asynchronous-model caveat the paper's §6
/// points at. Safety (agreement + validity among the decided) holds
/// regardless, since a lossy network is just one more asynchronous
/// scheduler.
///
/// # Panics
/// As [`run_ben_or`].
// Same interface as run_ben_or plus the event-net config — by design.
#[allow(clippy::too_many_arguments)]
pub fn run_ben_or_event(
    n: usize,
    inputs: &[u64],
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    coin: CoinMode,
    net: EventNetConfig,
    max_phases: u64,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> BenOrReport {
    let seed = rng.next_u64();
    let mut net: EventNet<Msg> = EventNet::new(n, net, seed);
    run_core(
        &mut net, n, inputs, byz, f, plan, coin, max_phases, ledger, rng,
    )
}

// The transport-generic core threads every public knob through — the
// arity mirrors the three public entry points it backs.
#[allow(clippy::too_many_arguments)]
fn run_core<T: Transport>(
    net: &mut T,
    n: usize,
    inputs: &[u64],
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    coin: CoinMode,
    max_phases: u64,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> BenOrReport {
    assert!(n > 0, "ben-or needs nodes");
    assert_eq!(inputs.len(), n, "one input per port");
    assert!(inputs.iter().all(|&v| v <= 1), "inputs must be binary");
    assert!(f < n, "resilience parameter must be below n");

    ledger.begin(CostKind::Agreement);
    let mut nodes: Vec<Node> = inputs.iter().map(|&v| Node::new(v)).collect();
    let half = |count: usize| 2 * count > n + f; // "more than (n+f)/2"

    // Opening volley: every honest node reports for phase 0; Byzantine
    // nodes fire their phase-0 volley immediately.
    let mut byz_acted: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
    for p in 0..n {
        if byz.contains(&p) {
            byz_acted[p].insert(0);
            byz_volley(net, p, n, 0, plan, rng);
        } else {
            let x = nodes[p].x;
            net.bcast(p, Msg::Report { phase: 0, value: x }, rng);
            // Self-delivery is immediate (a node knows its own value).
            nodes[p].reports.entry(0).or_default().insert(p, x);
        }
    }

    let all_honest_decided = |nodes: &[Node]| {
        (0..n)
            .filter(|p| !byz.contains(p))
            .all(|p| nodes[p].decided.is_some())
    };

    let mut aborted = false;
    while let Some((from, p, payload)) = net.pop() {
        if byz.contains(&p) {
            // Byzantine nodes track phases to keep injecting volleys
            // (total silence would stall nothing — thresholds use n−f —
            // but active plans need a trigger).
            let phase = match payload {
                Msg::Report { phase, .. } | Msg::Proposal { phase, .. } => phase,
            };
            if byz_acted[p].insert(phase) {
                byz_volley(net, p, n, phase, plan, rng);
            }
            continue;
        }

        // Record the delivery (first message per sender/phase/type).
        match payload {
            Msg::Report { phase, value } => {
                nodes[p]
                    .reports
                    .entry(phase)
                    .or_default()
                    .entry(from)
                    .or_insert(value % 2);
            }
            Msg::Proposal { phase, value } => {
                nodes[p]
                    .proposals
                    .entry(phase)
                    .or_default()
                    .entry(from)
                    .or_insert(value.map(|v| v % 2));
            }
        }

        // Drive the node's state machine as far as the new message
        // allows (a single delivery can complete several stages if the
        // buffers were already full).
        loop {
            let node = &nodes[p];
            let phase = node.phase;
            match node.stage {
                Stage::AwaitReports => {
                    let Some(received) = node.reports.get(&phase) else {
                        break;
                    };
                    if received.len() < n - f {
                        break;
                    }
                    // Tally values among the first n−f (all received —
                    // thresholds only grow with more evidence).
                    let mut counts = [0usize; 2];
                    for &v in received.values() {
                        // INVARIANT: `% 2` lands in {0, 1} — the array's exact
                        // index set.
                        counts[(v % 2) as usize] += 1;
                    }
                    let [zeros, ones] = counts;
                    let proposal = if half(zeros) {
                        Some(0)
                    } else if half(ones) {
                        Some(1)
                    } else {
                        None
                    };
                    let m = Msg::Proposal {
                        phase,
                        value: proposal,
                    };
                    net.bcast(p, m, rng);
                    nodes[p]
                        .proposals
                        .entry(phase)
                        .or_default()
                        .insert(p, proposal);
                    nodes[p].stage = Stage::AwaitProposals;
                }
                Stage::AwaitProposals => {
                    let Some(received) = node.proposals.get(&phase) else {
                        break;
                    };
                    if received.len() < n - f {
                        break;
                    }
                    let mut counts = [0usize; 2];
                    for v in received.values().flatten() {
                        // INVARIANT: `% 2` lands in {0, 1} — the array's exact
                        // index set.
                        counts[(*v % 2) as usize] += 1;
                    }
                    let [zeros, ones] = counts;
                    let strong = if half(zeros) {
                        Some(0u64)
                    } else if half(ones) {
                        Some(1)
                    } else {
                        None
                    };
                    let weak = if zeros > f {
                        Some(0u64)
                    } else if ones > f {
                        Some(1)
                    } else {
                        None
                    };
                    if let Some(v) = strong {
                        if nodes[p].decided.is_none() {
                            nodes[p].decided = Some(v);
                            nodes[p].decided_at_phase = Some(phase);
                        }
                        nodes[p].x = v;
                    } else if let Some(v) = weak {
                        nodes[p].x = v;
                    } else {
                        nodes[p].x = coin.flip(phase, rng);
                    }
                    // Enter the next phase (decided nodes keep
                    // participating so laggards reach their thresholds).
                    let next = phase + 1;
                    nodes[p].phase = next;
                    nodes[p].stage = Stage::AwaitReports;
                    if next >= max_phases {
                        aborted = true;
                        break;
                    }
                    let m = Msg::Report {
                        phase: next,
                        value: nodes[p].x,
                    };
                    net.bcast(p, m, rng);
                    let x = nodes[p].x;
                    nodes[p].reports.entry(next).or_default().insert(p, x);
                }
            }
        }

        if aborted || all_honest_decided(&nodes) {
            break;
        }
    }

    let decisions: BTreeMap<usize, u64> = (0..n)
        .filter(|p| !byz.contains(p))
        .filter_map(|p| nodes[p].decided.map(|v| (p, v)))
        .collect();
    let decision_phases: BTreeMap<usize, u64> = (0..n)
        .filter(|p| !byz.contains(p))
        .filter_map(|p| nodes[p].decided_at_phase.map(|r| (p, r)))
        .collect();
    let max_phase = nodes
        .iter()
        .enumerate()
        .filter(|(p, _)| !byz.contains(p))
        .map(|(_, s)| s.phase)
        .max()
        .unwrap_or(0);
    let all_decided = all_honest_decided(&nodes);

    ledger.add_messages(net.messages_sent());
    ledger.add_rounds(max_phase + 1);
    ledger.end();

    BenOrReport {
        result: ProtocolResult {
            decisions,
            rounds: max_phase + 1,
            messages: net.messages_sent(),
        },
        decision_phases,
        virtual_time: net.now(),
        all_decided,
        dropped: net.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{check_agreement, check_validity};

    fn go(
        n: usize,
        inputs: &[u64],
        byz: &[usize],
        f: usize,
        plan: ByzPlan,
        seed: u64,
    ) -> BenOrReport {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_ben_or(n, inputs, &byz, f, plan, 20, 400, &mut ledger, &mut rng)
    }

    #[test]
    fn unanimous_inputs_decide_that_value_fast() {
        for value in [0u64, 1] {
            let inputs = vec![value; 10];
            let report = go(10, &inputs, &[], 1, ByzPlan::Silent, 1);
            assert!(report.all_decided);
            assert_eq!(report.result.unanimous(), Some(&value));
            // Validity path: decided in the very first phase.
            assert!(report.decision_phases.values().all(|&r| r == 0));
        }
    }

    #[test]
    fn validity_holds_with_byzantine_noise() {
        let inputs = vec![1u64; 11];
        for (seed, plan) in [
            (2, ByzPlan::Silent),
            (3, ByzPlan::ConstantValue(0)),
            (4, ByzPlan::Equivocate(0, 1)),
            (5, ByzPlan::Random),
        ] {
            let report = go(11, &inputs, &[7, 9], 2, plan, seed);
            assert!(report.all_decided, "{plan:?} stalled");
            let byz: BTreeSet<usize> = [7, 9].into_iter().collect();
            assert!(check_validity(&inputs, &byz, &report.result), "{plan:?}");
            assert!(check_agreement(&report.result), "{plan:?}");
            assert_eq!(report.result.decisions.len(), 9);
        }
    }

    #[test]
    fn split_inputs_still_agree() {
        // Mixed inputs: consensus on *some* value, all honest agreeing.
        for seed in 10..20u64 {
            let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
            let report = go(10, &inputs, &[3], 1, ByzPlan::Equivocate(0, 1), seed);
            assert!(report.all_decided, "seed {seed} stalled");
            assert!(check_agreement(&report.result), "seed {seed}");
            let v = *report.result.unanimous().unwrap();
            assert!(v <= 1);
        }
    }

    #[test]
    fn coin_flips_resolve_split_within_reasonable_phases() {
        let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
        let report = go(10, &inputs, &[], 1, ByzPlan::Silent, 21);
        assert!(report.all_decided);
        let worst = report.decision_phases.values().max().unwrap();
        assert!(
            *worst < 50,
            "random scheduling should converge quickly, took {worst} phases"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
        let a = go(10, &inputs, &[2], 1, ByzPlan::Random, 30);
        let b = go(10, &inputs, &[2], 1, ByzPlan::Random, 30);
        assert_eq!(a.result.decisions, b.result.decisions);
        assert_eq!(a.result.messages, b.result.messages);
        assert_eq!(a.virtual_time, b.virtual_time);
    }

    #[test]
    fn async_delays_do_not_break_agreement() {
        // Large delay bound = heavily reordered deliveries.
        let inputs = vec![1u64; 11];
        let byz: BTreeSet<usize> = [0, 5].into_iter().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(40);
        let report = run_ben_or(
            11,
            &inputs,
            &byz,
            2,
            ByzPlan::Equivocate(0, 1),
            500, // delays up to 500 time units
            400,
            &mut ledger,
            &mut rng,
        );
        assert!(report.all_decided);
        assert!(check_agreement(&report.result));
        assert!(check_validity(&inputs, &byz, &report.result));
    }

    #[test]
    fn costs_are_accounted() {
        let inputs = vec![0u64; 10];
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(50);
        let report = run_ben_or(
            10,
            &inputs,
            &BTreeSet::new(),
            1,
            ByzPlan::Silent,
            10,
            400,
            &mut ledger,
            &mut rng,
        );
        let s = ledger.stats(CostKind::Agreement);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, report.result.messages);
        assert!(report.result.messages >= 10 * 9, "at least one full volley");
        assert!(report.virtual_time > 0);
    }

    fn go_common(
        n: usize,
        inputs: &[u64],
        byz: &[usize],
        f: usize,
        plan: ByzPlan,
        seed: u64,
    ) -> BenOrReport {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_ben_or_with_coin(
            n,
            inputs,
            &byz,
            f,
            plan,
            CoinMode::Common { seed: 0xC01 },
            20,
            400,
            &mut ledger,
            &mut rng,
        )
    }

    #[test]
    fn common_coin_preserves_agreement_and_validity() {
        let inputs = vec![1u64; 11];
        let byz: BTreeSet<usize> = [7, 9].into_iter().collect();
        for (seed, plan) in [
            (70, ByzPlan::Silent),
            (71, ByzPlan::Equivocate(0, 1)),
            (72, ByzPlan::Random),
        ] {
            let report = go_common(11, &inputs, &[7, 9], 2, plan, seed);
            assert!(report.all_decided, "{plan:?}");
            assert!(check_agreement(&report.result), "{plan:?}");
            assert!(check_validity(&inputs, &byz, &report.result), "{plan:?}");
        }
    }

    #[test]
    fn common_coin_bounds_the_phase_tail() {
        // Rabin's point: the phase count is O(1) in expectation with a
        // shared coin *against any scheduler*. The random-delay net is
        // a benign scheduler, so local coins are fast here too — the
        // testable guarantee is the bounded tail of the common-coin
        // runs (each undecided phase ends with probability ≥ 1/2 when
        // the shared flip matches any weakly adopted value).
        let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
        let mut worst_common = 0u64;
        for seed in 100..120u64 {
            let common = go_common(10, &inputs, &[3], 1, ByzPlan::Equivocate(0, 1), seed);
            assert!(common.all_decided, "seed {seed}");
            worst_common = worst_common.max(*common.decision_phases.values().max().unwrap());
        }
        assert!(
            worst_common <= 8,
            "common coin should settle fast, worst {worst_common}"
        );
    }

    #[test]
    fn common_coin_is_actually_common() {
        // The beacon is a pure function of (seed, phase).
        let a = CoinMode::Common { seed: 5 };
        let mut rng1 = DetRng::new(1);
        let mut rng2 = DetRng::new(999);
        for phase in 0..50 {
            assert_eq!(a.flip(phase, &mut rng1), a.flip(phase, &mut rng2));
        }
        // And not constant.
        let flips: BTreeSet<u64> = (0..50).map(|p| a.flip(p, &mut rng1)).collect();
        assert_eq!(flips.len(), 2, "both values appear over 50 phases");
    }

    fn go_event(
        n: usize,
        inputs: &[u64],
        byz: &[usize],
        f: usize,
        plan: ByzPlan,
        net: EventNetConfig,
        seed: u64,
    ) -> BenOrReport {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_ben_or_event(
            n,
            inputs,
            &byz,
            f,
            plan,
            CoinMode::Local,
            net,
            400,
            &mut ledger,
            &mut rng,
        )
    }

    #[test]
    fn event_runtime_reaches_consensus_on_reliable_links() {
        let net = EventNetConfig::ideal().with_latency(3).with_jitter(7);
        for seed in [80u64, 81, 82] {
            let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
            let report = go_event(10, &inputs, &[3], 1, ByzPlan::Equivocate(0, 1), net, seed);
            assert!(report.all_decided, "seed {seed} stalled");
            assert_eq!(report.dropped, 0);
            assert!(check_agreement(&report.result), "seed {seed}");
        }
    }

    #[test]
    fn event_runtime_is_deterministic_per_seed_and_config() {
        let net = EventNetConfig::ideal()
            .with_latency(2)
            .with_jitter(9)
            .with_drop(0.05);
        let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
        let a = go_event(10, &inputs, &[2], 1, ByzPlan::Random, net, 90);
        let b = go_event(10, &inputs, &[2], 1, ByzPlan::Random, net, 90);
        assert_eq!(a.result.decisions, b.result.decisions);
        assert_eq!(a.result.messages, b.result.messages);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.virtual_time, b.virtual_time);
    }

    #[test]
    fn lossy_links_stall_without_breaking_safety() {
        // 40% loss with no retransmission: some honest nodes can stall
        // below their n−f thresholds. Whatever happens, the decided
        // nodes must still agree on a valid value.
        let inputs = vec![1u64; 11];
        let mut stalled = 0u32;
        for seed in 100..110u64 {
            let net = EventNetConfig::ideal().with_drop(0.4);
            let report = go_event(11, &inputs, &[7], 2, ByzPlan::Silent, net, seed);
            assert!(report.dropped > 0, "seed {seed}: 40% loss drops messages");
            assert!(report.result.decisions.values().all(|&v| v == 1));
            if !report.all_decided {
                stalled += 1;
            }
        }
        assert!(stalled > 0, "heavy loss should stall at least one run");
    }

    #[test]
    fn partition_stalls_and_heal_restores_liveness() {
        let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
        // Unhealed split: every cross-group message is severed, so no
        // node can gather n − f = 9 phase-0 reports.
        let cut = go_event(
            10,
            &inputs,
            &[],
            1,
            ByzPlan::Silent,
            EventNetConfig::ideal().with_latency(5).with_partition(2),
            120,
        );
        assert!(!cut.all_decided, "a permanent split cannot decide");
        assert!(cut.dropped > 0);
        assert!(cut.result.decisions.is_empty());
        // Same config healing before the first deliveries land (latency
        // 5, heal at 3): nothing is severed, consensus goes through.
        let healed = go_event(
            10,
            &inputs,
            &[],
            1,
            ByzPlan::Silent,
            EventNetConfig::ideal()
                .with_latency(5)
                .with_partition(2)
                .healing_at(3),
            120,
        );
        assert!(healed.all_decided, "heal before delivery restores liveness");
        assert!(check_agreement(&healed.result));
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_inputs_rejected() {
        let _ = go(4, &[0, 1, 2, 0], &[], 0, ByzPlan::Silent, 60);
    }

    #[test]
    #[should_panic(expected = "one input per port")]
    fn input_length_mismatch_rejected() {
        let _ = go(5, &[0, 1], &[], 0, ByzPlan::Silent, 61);
    }
}
