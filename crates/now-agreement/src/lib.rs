//! Byzantine agreement and broadcast substrate for NOW.
//!
//! The paper uses these as black boxes; we build them as genuinely
//! executing per-node state machines over the synchronous bus of
//! [`now_net`] (fidelity level L0):
//!
//! * [`phase_king::run_phase_king`] — multivalued synchronous Byzantine
//!   agreement tolerating `f < n/4` (Berman–Garay–Perry). Used by the
//!   clusterization step of NOW's initialization; the paper permits "any
//!   Byzantine agreement protocol" there.
//! * [`dolev_strong::run_dolev_strong`] — authenticated broadcast
//!   tolerating any number of faults in `f+1` rounds, over simulated
//!   unforgeable signatures ([`crypto::SigOracle`]). This is the
//!   cryptographic route of the paper's Remark 1 (τ < 1/2).
//! * [`bracha::run_bracha`] — reliable broadcast tolerating `f < n/3`;
//!   the transport under the commit–reveal `randNum`.
//! * [`ben_or::run_ben_or`] — **asynchronous** randomized binary
//!   consensus (`f < n/5`) over the event-driven
//!   [`now_net::AsyncNet`]: the building block for the paper's §6
//!   future-work item of removing the synchrony assumption.
//! * [`rand_num_async::rand_num_async`] — that substitution carried
//!   through: the intra-cluster `randNum` rebuilt for asynchrony as
//!   commit–reveal + agreement-on-a-common-subset (one Ben-Or
//!   inclusion instance per contribution).
//! * [`rand_num`] — the intra-cluster distributed random number
//!   generator: a full commit–reveal protocol over Bracha broadcast, plus
//!   the *ideal functionality* used by the cluster-level execution path
//!   (uniform when Byzantine < 1/3 of the cluster, adversary-chosen
//!   otherwise — the security threshold the paper states).
//! * [`quorum`] — the inter-cluster acceptance rule: a node accepts a
//!   message from cluster `C` iff more than half of `C`'s members sent
//!   the identical message.
//!
//! Byzantine behavior in every protocol is driven by a [`ByzPlan`]
//! describing the classic attack shapes (silence, constant lies,
//! equivocation, randomized noise).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Crate-level allow-list, audited per PR 8: each surviving lint is
// justified below and still fires somewhere in this crate (stale allows
// get dropped — `clippy::too_many_arguments` moved to per-fn allows at
// the protocol entry points that actually need it).
#![allow(
    // The per-node state machines index `state`/`value` arrays by
    // process id on purpose (`for p in 0..n`): the index IS the port.
    // Fires in bracha, dolev_strong, phase_king, rand_num.
    clippy::needless_range_loop,
    // `x >= n/2 + 1` is the literal "strict majority" phrasing of the
    // quorum rule; rewriting as `x > n/2` would obscure the paper's
    // formula. Fires in certificate and quorum.
    clippy::int_plus_one
)]

pub mod ben_or;
pub mod bracha;
pub mod certificate;
pub mod crypto;
pub mod dolev_strong;
pub mod outcome;
pub mod phase_king;
pub mod quorum;
pub mod rand_num;
pub mod rand_num_async;

pub use ben_or::{run_ben_or, run_ben_or_event, run_ben_or_with_coin, BenOrReport, CoinMode};
pub use bracha::run_bracha;
pub use certificate::{certify_by_honest, CertificateError, QuorumCertificate};
pub use crypto::{commit_value, verify_commitment, Commitment, SigOracle};
pub use dolev_strong::run_dolev_strong;
pub use outcome::{check_agreement, check_validity, ByzPlan, ProtocolResult};
pub use phase_king::run_phase_king;
pub use quorum::{accept_cluster_message, QuorumDecision};
pub use rand_num::{rand_num_commit_reveal, rand_num_ideal, RandNumSecurity};
pub use rand_num_async::{rand_num_async, AsyncRandNum};
