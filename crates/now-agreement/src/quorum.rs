//! The inter-cluster quorum acceptance rule.
//!
//! From the paper (§3.2): *"a node receiving a message from all the
//! nodes of a particular cluster considers this message valid if and
//! only if it receives the same message from more than half of the nodes
//! of this cluster."* Together with every cluster having more than two
//! thirds honest members, this single rule is what makes clusters usable
//! as reliable super-nodes.
//!
//! The rule's two failure thresholds structure the whole audit story:
//! * Byzantine ≥ 1/3 of a cluster → `randNum` can be biased
//!   ([`crate::rand_num::RandNumSecurity`]);
//! * Byzantine > 1/2 of a cluster → the adversary alone clears the
//!   quorum and can forge arbitrary cluster messages
//!   ([`forgery_possible`]).

use now_net::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of validating one batch of votes from a purported cluster
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuorumDecision<V> {
    /// More than half of the cluster's members sent this identical value.
    Accepted(V),
    /// No value reached the `> |C|/2` bar.
    Rejected,
}

impl<V> QuorumDecision<V> {
    /// The accepted value, if any.
    pub fn accepted(&self) -> Option<&V> {
        match self {
            QuorumDecision::Accepted(v) => Some(v),
            QuorumDecision::Rejected => None,
        }
    }
}

/// Applies the quorum rule to `votes` claimed to originate from the
/// cluster with member set `members`.
///
/// Votes from non-members are discarded (identities are unforgeable);
/// only a member's first vote counts (later ones model duplicate or
/// contradictory channel traffic and are ignored, as a receiving node
/// keeps one message per private channel per round).
///
/// Accepts the unique value backed by **more than half** of `|members|`
/// — "half plus one" in the paper's phrasing. At most one value can
/// clear that bar.
pub fn accept_cluster_message<V: Clone + Eq + Ord>(
    votes: &[(NodeId, V)],
    members: &BTreeSet<NodeId>,
) -> QuorumDecision<V> {
    let mut first_vote: BTreeMap<NodeId, &V> = BTreeMap::new();
    for (voter, value) in votes {
        if members.contains(voter) {
            first_vote.entry(*voter).or_insert(value);
        }
    }
    let mut tally: BTreeMap<&V, usize> = BTreeMap::new();
    for value in first_vote.values() {
        *tally.entry(value).or_default() += 1;
    }
    let need = members.len() / 2 + 1;
    for (value, count) in tally {
        if count >= need {
            return QuorumDecision::Accepted(value.clone());
        }
    }
    QuorumDecision::Rejected
}

/// Whether a cluster with `byz` Byzantine members out of `size` can have
/// messages forged in its name (the adversary alone clears `> size/2`).
pub fn forgery_possible(byz: usize, size: usize) -> bool {
    byz >= size / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(raws: &[u64]) -> Vec<NodeId> {
        raws.iter().map(|&r| NodeId::from_raw(r)).collect()
    }

    fn member_set(raws: &[u64]) -> BTreeSet<NodeId> {
        ids(raws).into_iter().collect()
    }

    #[test]
    fn honest_majority_accepted() {
        let members = member_set(&[0, 1, 2, 3, 4]);
        let votes: Vec<(NodeId, u32)> = ids(&[0, 1, 2]).into_iter().map(|id| (id, 7u32)).collect();
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Accepted(7)
        );
    }

    #[test]
    fn exactly_half_is_rejected() {
        let members = member_set(&[0, 1, 2, 3]);
        let votes: Vec<(NodeId, u32)> = ids(&[0, 1]).into_iter().map(|id| (id, 7u32)).collect();
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Rejected,
            "2 of 4 is not more than half"
        );
    }

    #[test]
    fn minority_liars_cannot_block() {
        let members = member_set(&[0, 1, 2, 3, 4]);
        let mut votes: Vec<(NodeId, u32)> =
            ids(&[0, 1, 2]).into_iter().map(|id| (id, 7u32)).collect();
        votes.push((NodeId::from_raw(3), 9));
        votes.push((NodeId::from_raw(4), 9));
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Accepted(7)
        );
    }

    #[test]
    fn byzantine_majority_can_forge() {
        // The 1/2 threshold is the forgery line: 3 byzantine of 5 push a
        // lie through.
        let members = member_set(&[0, 1, 2, 3, 4]);
        let votes: Vec<(NodeId, u32)> =
            ids(&[2, 3, 4]).into_iter().map(|id| (id, 666u32)).collect();
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Accepted(666)
        );
        assert!(forgery_possible(3, 5));
        assert!(!forgery_possible(2, 5));
    }

    #[test]
    fn non_member_votes_ignored() {
        let members = member_set(&[0, 1, 2]);
        let votes: Vec<(NodeId, u32)> = ids(&[5, 6, 7, 8])
            .into_iter()
            .map(|id| (id, 1u32))
            .collect();
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Rejected
        );
    }

    #[test]
    fn duplicate_votes_count_once() {
        let members = member_set(&[0, 1, 2]);
        let id0 = NodeId::from_raw(0);
        let votes = vec![(id0, 5u32), (id0, 5u32), (id0, 5u32)];
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Rejected,
            "one member repeating itself is not a quorum"
        );
    }

    #[test]
    fn equivocating_member_first_vote_wins() {
        let members = member_set(&[0, 1, 2]);
        let votes = vec![
            (NodeId::from_raw(0), 5u32),
            (NodeId::from_raw(0), 9u32), // later contradiction ignored
            (NodeId::from_raw(1), 5u32),
        ];
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Accepted(5)
        );
    }

    #[test]
    fn empty_votes_rejected() {
        let members = member_set(&[0, 1, 2]);
        let votes: Vec<(NodeId, u32)> = Vec::new();
        assert_eq!(
            accept_cluster_message(&votes, &members),
            QuorumDecision::Rejected
        );
    }

    #[test]
    fn forgery_threshold_boundaries() {
        assert!(!forgery_possible(0, 1));
        assert!(forgery_possible(1, 1));
        assert!(!forgery_possible(1, 3));
        assert!(forgery_possible(2, 3));
        assert!(!forgery_possible(5, 10));
        assert!(forgery_possible(6, 10));
    }

    proptest! {
        /// At most one value can be accepted, and only with support from
        /// more than half of the membership.
        #[test]
        fn acceptance_requires_majority(
            votes in proptest::collection::vec((0u64..8, 0u32..3), 0..20),
            members in proptest::collection::btree_set(0u64..8, 1..8),
        ) {
            let member_ids: BTreeSet<NodeId> =
                members.iter().map(|&r| NodeId::from_raw(r)).collect();
            let vote_pairs: Vec<(NodeId, u32)> = votes
                .iter()
                .map(|&(r, v)| (NodeId::from_raw(r), v))
                .collect();
            if let QuorumDecision::Accepted(winner) =
                accept_cluster_message(&vote_pairs, &member_ids)
            {
                // Count distinct members whose first vote was the winner.
                let mut seen = BTreeSet::new();
                let mut support = 0usize;
                for (id, v) in &vote_pairs {
                    if member_ids.contains(id) && seen.insert(*id) && *v == winner {
                        support += 1;
                    }
                }
                prop_assert!(support > member_ids.len() / 2);
            }
        }
    }
}
