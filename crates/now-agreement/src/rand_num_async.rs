//! Asynchronous `randNum` — the §6 substitution, end to end.
//!
//! The paper's future-work direction ("alleviate the need of the
//! assumption of synchronous nodes") ultimately has to replace the one
//! primitive NOW runs constantly: the intra-cluster `randNum`. This
//! module composes the crate's asynchronous pieces into that
//! replacement, following the classic **agreement-on-a-common-subset**
//! shape (Ben-Or, Canetti, Rabin):
//!
//! 1. every node commits to a private contribution and broadcasts the
//!    commitment, then its reveal, over the delay-adversarial
//!    [`now_net::AsyncNet`];
//! 2. for each node `i`, a binary [`crate::ben_or`] instance decides
//!    whether `i`'s contribution is **included**; each honest node
//!    votes 1 iff it saw `i`'s valid reveal before the instance starts.
//!    Validation of Ben-Or guarantees: contributions every honest node
//!    received are included, contributions nobody received are not;
//! 3. the agreed subset's revealed values are folded (XOR) into the
//!    output, reduced to `0..range`.
//!
//! Security matches the synchronous commit–reveal's argument: the
//! adversary fixes its contributions at commitment time, at least one
//! *honest* contribution lands in the agreed subset (honest reveals
//! reach everyone eventually, so their instances get unanimous honest
//! 1-votes), and XOR with one uniform honest value is uniform. The
//! resilience is Ben-Or's `f < n/5` — stricter than the synchronous
//! path's `f < n/3`; experiment X-ASYNC's conclusion about τ sizing
//! applies verbatim.

use crate::ben_or::{run_ben_or_with_coin, CoinMode};
use crate::crypto::{commit_value, verify_commitment, Commitment};
use crate::outcome::ByzPlan;
use now_net::{AsyncNet, CostKind, DetRng, Ledger};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// One message of the asynchronous commit–reveal transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Commit(Commitment),
    Reveal { value: u64, nonce: u64 },
}

/// Outcome of one asynchronous `randNum` run.
#[derive(Debug, Clone)]
pub struct AsyncRandNum {
    /// The agreed value in `0..range` (one entry per honest node; all
    /// equal iff the run agreed, which the tests assert).
    pub decisions: BTreeMap<usize, u64>,
    /// The agreed inclusion set (ports whose contributions fold into
    /// the output).
    pub included: BTreeSet<usize>,
    /// Messages sent across the transport and all Ben-Or instances.
    pub messages: u64,
    /// Ben-Or phases summed over the `n` inclusion instances.
    pub total_phases: u64,
    /// Whether every honest node decided in every instance.
    pub complete: bool,
}

impl AsyncRandNum {
    /// The common output if all honest nodes agree, else `None`.
    pub fn unanimous(&self) -> Option<u64> {
        let mut iter = self.decisions.values();
        let first = *iter.next()?;
        iter.all(|&v| v == first).then_some(first)
    }
}

/// Runs the asynchronous `randNum` among `n` ports over `0..range`,
/// with Byzantine set `byz` (following `plan` inside each Ben-Or
/// instance; Byzantine contributions are adversarially chosen
/// constants, and Byzantine reveals may be withheld — the classic
/// bias attempt that commitments + the agreed subset neutralize).
///
/// Costs land under [`CostKind::RandNum`]. Resilience: `n > 5·|byz|`.
///
/// # Panics
/// Panics if `n == 0` or `range == 0`.
pub fn rand_num_async(
    n: usize,
    range: u64,
    byz: &BTreeSet<usize>,
    plan: ByzPlan,
    max_delay: u64,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> AsyncRandNum {
    assert!(n > 0, "rand_num_async needs nodes");
    assert!(range > 0, "range must be positive");
    let f = byz.len();

    ledger.begin(CostKind::RandNum);
    let mut net: AsyncNet<Msg> = AsyncNet::new(n, max_delay);

    // Phase 1 — commitments and reveals in flight. Honest nodes draw a
    // private contribution; Byzantine nodes pick adversarial constants
    // and *withhold reveals from half the network* (the strongest
    // omission bias available to them: selective reveal delivery).
    let mut value = vec![0u64; n];
    let mut nonce = vec![0u64; n];
    for p in 0..n {
        value[p] = rng.gen();
        nonce[p] = rng.gen();
        let c = commit_value(value[p], nonce[p], p);
        net.broadcast(p, Msg::Commit(c), rng);
    }
    for p in 0..n {
        let reveal = Msg::Reveal {
            value: value[p],
            nonce: nonce[p],
        };
        if byz.contains(&p) {
            // Selective omission: reveal only to even ports.
            for to in (0..n).step_by(2) {
                if to != p {
                    net.send(p, to, reveal, rng);
                }
            }
        } else {
            net.broadcast(p, reveal, rng);
        }
    }

    // Drain the transport. Reveals may outrun their commitments under
    // async reordering, so they are buffered and verified once the
    // drain completes (every sent commitment has arrived by then).
    let mut commitment: Vec<Vec<Option<Commitment>>> = vec![vec![None; n]; n];
    let mut pending: Vec<(usize, usize, u64, u64)> = Vec::new();
    while let Some((_, env)) = net.pop() {
        match env.payload {
            Msg::Commit(c) => commitment[env.to][env.from] = Some(c),
            Msg::Reveal {
                value: v,
                nonce: no,
            } => {
                pending.push((env.to, env.from, v, no));
            }
        }
    }
    let mut seen_reveal: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
    // Self-knowledge is immediate.
    for p in 0..n {
        seen_reveal[p][p] = Some(value[p]);
    }
    for (to, from, v, no) in pending {
        let ok = commitment[to][from]
            .map(|c| verify_commitment(c, v, no, from))
            .unwrap_or(false);
        if ok {
            seen_reveal[to][from] = Some(v);
        }
    }
    let transport_messages = net.messages_sent();

    // Phase 2 — one Ben-Or inclusion instance per contributor.
    let mut included = BTreeSet::new();
    let mut messages = transport_messages;
    let mut total_phases = 0u64;
    let mut complete = true;
    let mut per_honest_output: BTreeMap<usize, u64> = (0..n)
        .filter(|p| !byz.contains(p))
        .map(|p| (p, 0u64))
        .collect();
    for i in 0..n {
        let inputs: Vec<u64> = (0..n)
            .map(|p| u64::from(seen_reveal[p][i].is_some()))
            .collect();
        let mut inner = Ledger::new();
        let report = run_ben_or_with_coin(
            n,
            &inputs,
            byz,
            f,
            plan,
            CoinMode::Common {
                seed: 0xAC5 ^ i as u64,
            },
            max_delay,
            400,
            &mut inner,
            rng,
        );
        messages += report.result.messages;
        total_phases += report.result.rounds;
        complete &= report.all_decided;
        if report.result.unanimous() == Some(&1) {
            included.insert(i);
            // Fold i's revealed value into every honest node's output.
            // (An honest node that voted 0 still learns the value from
            // any of the > n/2 honest nodes that have it — one extra
            // fetch round, accounted below.)
            for (&p, out) in per_honest_output.iter_mut() {
                let v = seen_reveal[p][i].unwrap_or(value[i]);
                *out ^= v;
            }
        }
    }
    // Fetch round for included-but-unseen reveals: at most one
    // request/response per (node, included contributor).
    messages += (included.len() * n) as u64 / 2;

    let decisions: BTreeMap<usize, u64> = per_honest_output
        .into_iter()
        .map(|(p, v)| (p, v % range))
        .collect();

    ledger.add_messages(messages);
    ledger.add_rounds(total_phases.max(1));
    ledger.end();

    AsyncRandNum {
        decisions,
        included,
        messages,
        total_phases,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn go(n: usize, byz: &[usize], plan: ByzPlan, seed: u64) -> AsyncRandNum {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        rand_num_async(n, 1 << 20, &byz, plan, 15, &mut ledger, &mut rng)
    }

    #[test]
    fn honest_run_agrees_and_includes_everyone() {
        let out = go(10, &[], ByzPlan::Silent, 1);
        assert!(out.complete);
        assert!(out.unanimous().is_some());
        assert_eq!(out.included.len(), 10, "all reveals arrive eventually");
        assert!(out.unanimous().unwrap() < (1 << 20));
    }

    #[test]
    fn byzantine_omission_cannot_split_the_output() {
        for (seed, plan) in [
            (2, ByzPlan::Silent),
            (3, ByzPlan::Equivocate(0, 1)),
            (4, ByzPlan::Random),
        ] {
            let out = go(11, &[3, 8], plan, seed);
            assert!(out.complete, "{plan:?} stalled");
            assert!(
                out.unanimous().is_some(),
                "{plan:?}: honest outputs diverged: {:?}",
                out.decisions
            );
            assert_eq!(out.decisions.len(), 9);
        }
    }

    #[test]
    fn agreed_subset_contains_all_honest_contributions() {
        let out = go(11, &[0, 5], ByzPlan::Equivocate(0, 1), 5);
        for p in 0..11 {
            if ![0usize, 5].contains(&p) {
                assert!(
                    out.included.contains(&p),
                    "honest contribution {p} excluded"
                );
            }
        }
    }

    #[test]
    fn outputs_vary_across_runs() {
        // Uniformity smoke test: distinct seeds give distinct outputs
        // (a constant output would mean the adversary or a bug pinned it).
        let outputs: BTreeSet<u64> = (10..20u64)
            .map(|seed| {
                go(10, &[2], ByzPlan::ConstantValue(0), seed)
                    .unanimous()
                    .unwrap()
            })
            .collect();
        assert!(
            outputs.len() >= 8,
            "only {} distinct outputs",
            outputs.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = go(10, &[4], ByzPlan::Random, 30);
        let b = go(10, &[4], ByzPlan::Random, 30);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.included, b.included);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn costs_are_accounted_under_rand_num() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(40);
        let out = rand_num_async(
            10,
            100,
            &BTreeSet::new(),
            ByzPlan::Silent,
            10,
            &mut ledger,
            &mut rng,
        );
        let s = ledger.stats(CostKind::RandNum);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_messages, out.messages);
        assert!(out.messages > 0);
        assert!(out.decisions.values().all(|&v| v < 100));
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        let _ = rand_num_async(
            4,
            0,
            &BTreeSet::new(),
            ByzPlan::Silent,
            5,
            &mut Ledger::new(),
            &mut DetRng::new(1),
        );
    }
}
