//! Shared protocol-outcome types, Byzantine plans, and correctness
//! checkers used by every agreement/broadcast implementation and its
//! tests.

use std::collections::BTreeMap;

/// What each Byzantine node does inside a protocol run.
///
/// These are the canonical attack shapes from the agreement literature;
/// every runner interprets them in its own message space. Equivocation
/// (sending different claims to different receivers) is the attack the
/// quorum rule and signature chains exist to defeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzPlan {
    /// Send nothing at all (crash-like, but chosen adversarially).
    Silent,
    /// Always claim this value, to everyone.
    ConstantValue(u64),
    /// Claim the first value to even ports and the second to odd ports.
    Equivocate(u64, u64),
    /// Claim fresh pseudo-random values (seeded by the runner's RNG).
    Random,
}

/// Result of a protocol execution.
///
/// `decisions` holds one entry per **honest** port (Byzantine "outputs"
/// are meaningless). Costs are measured from the bus, so they reflect
/// messages actually sent, including Byzantine traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolResult<V> {
    /// Decision of each honest port.
    pub decisions: BTreeMap<usize, V>,
    /// Number of synchronous communication rounds used.
    pub rounds: u64,
    /// Number of point-to-point messages sent.
    pub messages: u64,
}

impl<V: PartialEq> ProtocolResult<V> {
    /// The common decision if all honest ports agree, else `None`.
    pub fn unanimous(&self) -> Option<&V> {
        let mut iter = self.decisions.values();
        let first = iter.next()?;
        if iter.all(|v| v == first) {
            Some(first)
        } else {
            None
        }
    }
}

/// Agreement property: every honest port decided the same value.
pub fn check_agreement<V: PartialEq>(result: &ProtocolResult<V>) -> bool {
    result.decisions.is_empty() || result.unanimous().is_some()
}

/// Validity property: if every honest port had the same input `v`, then
/// every honest port decided `v`.
///
/// `inputs[p]` is the input of port `p`; ports in `byz` are ignored.
pub fn check_validity<V: PartialEq + Copy>(
    inputs: &[V],
    byz: &std::collections::BTreeSet<usize>,
    result: &ProtocolResult<V>,
) -> bool {
    let honest_inputs: Vec<V> = inputs
        .iter()
        .enumerate()
        .filter(|(p, _)| !byz.contains(p))
        .map(|(_, v)| *v)
        .collect();
    let Some(&first) = honest_inputs.first() else {
        return true;
    };
    if !honest_inputs.iter().all(|v| *v == first) {
        return true; // precondition not met: vacuously valid
    }
    result.decisions.values().all(|v| *v == first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn result_of(pairs: &[(usize, u64)]) -> ProtocolResult<u64> {
        ProtocolResult {
            decisions: pairs.iter().copied().collect(),
            rounds: 1,
            messages: 0,
        }
    }

    #[test]
    fn unanimous_detects_agreement() {
        assert_eq!(result_of(&[(0, 5), (1, 5)]).unanimous(), Some(&5));
        assert_eq!(result_of(&[(0, 5), (1, 6)]).unanimous(), None);
        assert_eq!(result_of(&[]).unanimous(), None);
    }

    #[test]
    fn agreement_checker() {
        assert!(check_agreement(&result_of(&[(0, 1), (2, 1)])));
        assert!(!check_agreement(&result_of(&[(0, 1), (2, 2)])));
        assert!(check_agreement(&result_of(&[])), "vacuous");
    }

    #[test]
    fn validity_checker_happy_path() {
        let byz: BTreeSet<usize> = [1].into_iter().collect();
        let inputs = vec![7u64, 9, 7];
        let good = result_of(&[(0, 7), (2, 7)]);
        assert!(check_validity(&inputs, &byz, &good));
        let bad = result_of(&[(0, 7), (2, 8)]);
        assert!(!check_validity(&inputs, &byz, &bad));
    }

    #[test]
    fn validity_vacuous_when_honest_inputs_differ() {
        let byz = BTreeSet::new();
        let inputs = vec![1u64, 2];
        let any = result_of(&[(0, 9), (1, 9)]);
        assert!(check_validity(&inputs, &byz, &any));
    }
}
