//! `randNum` — intra-cluster distributed random number generation.
//!
//! The paper assumes "a distributed random number generation protocol,
//! enabling the nodes of a cluster to agree on a common integer chosen
//! uniformly at random from the interval (0, r)", secure while the
//! cluster has more than two thirds honest members, and defers the
//! construction to its long version. We provide both:
//!
//! * [`rand_num_commit_reveal`] — a genuinely executing commit–reveal
//!   protocol: every member Bracha-broadcasts a commitment to a local
//!   draw, then Bracha-broadcasts the opening; the result is the sum
//!   (mod `r`) of all correctly opened contributions. Bracha's
//!   consistency + totality make the honest members agree on the valid
//!   set, hence on the result, for `f < n/3`. A Byzantine member's only
//!   leverage is *selective abort* (withholding its opening), which is
//!   visible and bounded — it cannot steer the sum because commitments
//!   are binding and at least one honest contribution is uniform.
//! * [`rand_num_ideal`] — the ideal functionality used by the
//!   cluster-level (L1) execution path: uniform while Byzantine < 1/3 of
//!   the cluster, adversary-chosen otherwise, with the paper's stated
//!   cost of `O(log²N)` accounted as `2·c·(c−1)` messages in 2 rounds
//!   for a cluster of `c` members.

use crate::crypto::{commit_value, verify_commitment, Commitment};
use crate::outcome::{ByzPlan, ProtocolResult};
use now_net::{Bus, CostKind, Ledger};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Whether a cluster's composition keeps `randNum` secure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandNumSecurity {
    /// Byzantine members are fewer than one third: output is uniform.
    Secure,
    /// Byzantine members reached one third: the adversary may control
    /// the output.
    Compromised,
}

impl RandNumSecurity {
    /// Classifies a cluster of `size` members with `byz` Byzantine ones.
    pub fn from_counts(byz: usize, size: usize) -> Self {
        if 3 * byz < size {
            RandNumSecurity::Secure
        } else {
            RandNumSecurity::Compromised
        }
    }

    /// Convenience predicate.
    pub fn is_secure(self) -> bool {
        matches!(self, RandNumSecurity::Secure)
    }
}

/// Ideal-functionality `randNum` used by the L1 execution path.
///
/// Returns a uniform draw from `0..range` while the cluster is
/// [`RandNumSecurity::Secure`]; otherwise returns `adversary_pick`
/// (clamped into range; defaults to `range − 1` — "the adversary chooses
/// freely" and any fixed choice is the worst case for the caller).
///
/// Accounts the paper's stated cost: one all-to-all commit round and one
/// all-to-all reveal round among `cluster_size` members.
///
/// # Panics
/// Panics if `range == 0` or `cluster_size == 0`.
pub fn rand_num_ideal<R: Rng>(
    range: u64,
    cluster_size: usize,
    byz_in_cluster: usize,
    adversary_pick: Option<u64>,
    ledger: &mut Ledger,
    rng: &mut R,
) -> u64 {
    assert!(range > 0, "randNum range must be positive");
    assert!(cluster_size > 0, "randNum needs a non-empty cluster");
    ledger.begin(CostKind::RandNum);
    let c = cluster_size as u64;
    ledger.add_messages(2 * c * (c - 1));
    ledger.add_rounds(2);
    ledger.end();
    match RandNumSecurity::from_counts(byz_in_cluster, cluster_size) {
        RandNumSecurity::Secure => rng.gen_range(0..range),
        RandNumSecurity::Compromised => adversary_pick.unwrap_or(range - 1).min(range - 1),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Item {
    Commit(u64),
    Reveal(u64, u64),
}

impl Item {
    fn phase(self) -> u8 {
        match self {
            Item::Commit(_) => 0,
            Item::Reveal(..) => 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Init,
    Echo,
    Ready,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Msg {
    kind: Kind,
    src: usize,
    item: Item,
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    echoed: BTreeSet<(usize, u8)>,
    readied: BTreeSet<(usize, u8)>,
    echo_counts: BTreeMap<(usize, Item), BTreeSet<usize>>,
    ready_counts: BTreeMap<(usize, Item), BTreeSet<usize>>,
    delivered: BTreeMap<(usize, u8), Item>,
}

/// One phase of parallel Bracha broadcasts: every port in `initiators`
/// broadcasts its item; everyone echoes/readies. Returns nothing —
/// deliveries accumulate in `state`.
// Phase helper shared by both randNum variants: carries the whole
// per-phase protocol context (bus, state, items, byz, plan, …) flat.
#[allow(clippy::too_many_arguments)]
fn run_parallel_bracha_phase<R: Rng>(
    bus: &mut Bus<Msg>,
    state: &mut [NodeState],
    items: &BTreeMap<usize, Item>,
    byz: &BTreeSet<usize>,
    plan: ByzPlan,
    f: usize,
    rounds: usize,
    rng: &mut R,
) {
    let n = state.len();
    let echo_threshold = (n + f + 1).div_ceil(2);
    let ready_amplify = f + 1;
    let deliver_threshold = 2 * f + 1;

    // Dispatch.
    for (&src, &item) in items {
        if byz.contains(&src) {
            match plan {
                ByzPlan::Silent => {}
                ByzPlan::Equivocate(a, b) => {
                    // Equivocate the *commitment digest* (or the reveal
                    // value): different item to even vs odd ports.
                    for to in 0..n {
                        if to == src {
                            continue;
                        }
                        let forged = match item {
                            Item::Commit(_) => Item::Commit(if to % 2 == 0 { a } else { b }),
                            Item::Reveal(_, nonce) => {
                                Item::Reveal(if to % 2 == 0 { a } else { b }, nonce)
                            }
                        };
                        bus.send(
                            src,
                            to,
                            Msg {
                                kind: Kind::Init,
                                src,
                                item: forged,
                            },
                        );
                    }
                }
                _ => {
                    // ConstantValue/Random byzantines follow the wire
                    // format (their *contribution* was already chosen by
                    // the plan at the caller).
                    for to in 0..n {
                        if to != src {
                            bus.send(
                                src,
                                to,
                                Msg {
                                    kind: Kind::Init,
                                    src,
                                    item,
                                },
                            );
                        }
                    }
                }
            }
        } else {
            for to in 0..n {
                if to != src {
                    bus.send(
                        src,
                        to,
                        Msg {
                            kind: Kind::Init,
                            src,
                            item,
                        },
                    );
                }
            }
            // Self-echo.
            let key = (src, item);
            state[src].echoed.insert((src, item.phase()));
            state[src].echo_counts.entry(key).or_default().insert(src);
            for to in 0..n {
                if to != src {
                    bus.send(
                        src,
                        to,
                        Msg {
                            kind: Kind::Echo,
                            src,
                            item,
                        },
                    );
                }
            }
        }
    }

    for _ in 0..rounds {
        bus.step();
        let mut outgoing: Vec<(usize, Msg)> = Vec::new();
        for p in 0..n {
            let inbox = bus.recv(p);
            if byz.contains(&p) {
                if matches!(plan, ByzPlan::Random) {
                    // Random echo noise for a random source.
                    let src = rng.gen_range(0..n);
                    let item = Item::Commit(rng.gen());
                    for to in 0..n {
                        if to != p {
                            bus.send(
                                p,
                                to,
                                Msg {
                                    kind: Kind::Echo,
                                    src,
                                    item,
                                },
                            );
                        }
                    }
                }
                continue;
            }
            for (from, msg) in inbox {
                let key = (msg.src, msg.item);
                match msg.kind {
                    Kind::Init => {
                        if from == msg.src
                            && !state[p].echoed.contains(&(msg.src, msg.item.phase()))
                        {
                            state[p].echoed.insert((msg.src, msg.item.phase()));
                            state[p].echo_counts.entry(key).or_default().insert(p);
                            outgoing.push((
                                p,
                                Msg {
                                    kind: Kind::Echo,
                                    ..msg
                                },
                            ));
                        }
                    }
                    Kind::Echo => {
                        state[p].echo_counts.entry(key).or_default().insert(from);
                    }
                    Kind::Ready => {
                        state[p].ready_counts.entry(key).or_default().insert(from);
                    }
                }
            }
            // Threshold transitions.
            let mut to_ready: Vec<(usize, Item)> = Vec::new();
            for (&(src, item), echoes) in &state[p].echo_counts {
                if echoes.len() >= echo_threshold
                    && !state[p].readied.contains(&(src, item.phase()))
                {
                    to_ready.push((src, item));
                }
            }
            for (&(src, item), readies) in &state[p].ready_counts {
                if readies.len() >= ready_amplify
                    && !state[p].readied.contains(&(src, item.phase()))
                {
                    to_ready.push((src, item));
                }
            }
            for (src, item) in to_ready {
                if state[p].readied.insert((src, item.phase())) {
                    state[p]
                        .ready_counts
                        .entry((src, item))
                        .or_default()
                        .insert(p);
                    outgoing.push((
                        p,
                        Msg {
                            kind: Kind::Ready,
                            src,
                            item,
                        },
                    ));
                }
            }
            let mut to_deliver: Vec<(usize, Item)> = Vec::new();
            for (&(src, item), readies) in &state[p].ready_counts {
                if readies.len() >= deliver_threshold
                    && !state[p].delivered.contains_key(&(src, item.phase()))
                {
                    to_deliver.push((src, item));
                }
            }
            for (src, item) in to_deliver {
                state[p].delivered.insert((src, item.phase()), item);
            }
        }
        for (p, msg) in outgoing {
            bus.broadcast(p, msg);
        }
    }
}

/// Full commit–reveal `randNum` among `n` ports over parallel Bracha
/// broadcasts (fidelity level L0).
///
/// Every honest port draws a uniform contribution from `0..range`,
/// commits, then reveals; the agreed result is the sum of valid openings
/// mod `range`. Byzantine ports follow `plan`:
/// * `Silent` — contribute nothing (selective abort);
/// * `ConstantValue(v)` — contribute `v mod range` honestly on the wire
///   (bias attempt by choosing rather than drawing — harmless);
/// * `Equivocate(a, b)` — equivocate commitments/reveals (defeated by
///   Bracha consistency);
/// * `Random` — random contribution plus random echo noise.
///
/// Returns each honest port's computed result; agreement across honest
/// ports holds whenever `byz.len() < n/3`. Costs are recorded under
/// [`CostKind::RandNum`].
///
/// # Panics
/// Panics if `n == 0` or `range == 0`.
pub fn rand_num_commit_reveal<R: Rng>(
    n: usize,
    range: u64,
    byz: &BTreeSet<usize>,
    plan: ByzPlan,
    ledger: &mut Ledger,
    rng: &mut R,
) -> ProtocolResult<u64> {
    assert!(n > 0, "randNum needs at least one node");
    assert!(range > 0, "randNum range must be positive");
    let f = (n.saturating_sub(1)) / 3;

    ledger.begin(CostKind::RandNum);
    let mut bus: Bus<Msg> = Bus::new(n);
    let mut state: Vec<NodeState> = vec![NodeState::default(); n];

    // Local draws.
    let mut xs = vec![0u64; n];
    let mut nonces = vec![0u64; n];
    for p in 0..n {
        xs[p] = match plan {
            ByzPlan::ConstantValue(v) if byz.contains(&p) => v % range,
            _ => rng.gen_range(0..range),
        };
        nonces[p] = rng.gen();
    }

    // Phase 1: commitments.
    let commits: BTreeMap<usize, Item> = (0..n)
        .filter(|p| !(byz.contains(p) && matches!(plan, ByzPlan::Silent)))
        .map(|p| (p, Item::Commit(commit_value(xs[p], nonces[p], p).0)))
        .collect();
    run_parallel_bracha_phase(&mut bus, &mut state, &commits, byz, plan, f, 8, rng);

    // Phase 2: reveals.
    let reveals: BTreeMap<usize, Item> = (0..n)
        .filter(|p| !(byz.contains(p) && matches!(plan, ByzPlan::Silent)))
        .map(|p| (p, Item::Reveal(xs[p], nonces[p])))
        .collect();
    run_parallel_bracha_phase(&mut bus, &mut state, &reveals, byz, plan, f, 8, rng);

    ledger.add_messages(bus.messages_sent());
    ledger.add_rounds(bus.round());
    ledger.end();

    // Result extraction per honest node.
    let mut decisions = BTreeMap::new();
    for p in 0..n {
        if byz.contains(&p) {
            continue;
        }
        let mut sum: u64 = 0;
        for src in 0..n {
            let Some(Item::Commit(digest)) = state[p].delivered.get(&(src, 0)).copied() else {
                continue;
            };
            let Some(Item::Reveal(x, nonce)) = state[p].delivered.get(&(src, 1)).copied() else {
                continue;
            };
            if x < range && verify_commitment(Commitment(digest), x, nonce, src) {
                sum = ((sum as u128 + x as u128) % range as u128) as u64;
            }
        }
        decisions.insert(p, sum);
    }

    ProtocolResult {
        decisions,
        rounds: bus.round(),
        messages: bus.messages_sent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::check_agreement;
    use now_net::DetRng;

    fn run(n: usize, range: u64, byz: &[usize], plan: ByzPlan, seed: u64) -> ProtocolResult<u64> {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        rand_num_commit_reveal(n, range, &byz, plan, &mut ledger, &mut rng)
    }

    #[test]
    fn all_honest_agree_in_range() {
        let r = run(7, 100, &[], ByzPlan::Silent, 1);
        assert!(check_agreement(&r));
        let v = *r.unanimous().unwrap();
        assert!(v < 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(7, 1000, &[], ByzPlan::Silent, 9);
        let b = run(7, 1000, &[], ByzPlan::Silent, 9);
        assert_eq!(a.unanimous(), b.unanimous());
    }

    #[test]
    fn silent_byzantine_cannot_break_agreement() {
        let r = run(7, 50, &[2, 5], ByzPlan::Silent, 2);
        assert!(check_agreement(&r));
    }

    #[test]
    fn equivocating_byzantine_cannot_break_agreement() {
        for seed in 0..10u64 {
            let r = run(7, 50, &[0, 3], ByzPlan::Equivocate(7, 13), seed);
            assert!(check_agreement(&r), "seed {seed}: {:?}", r.decisions);
        }
    }

    #[test]
    fn constant_contribution_cannot_fix_output() {
        // A byzantine member contributing a constant cannot force the
        // result: honest contributions randomize the sum. Across seeds
        // the outputs must not all equal the constant.
        let outputs: BTreeSet<u64> = (0..12u64)
            .map(|seed| {
                *run(7, 97, &[1], ByzPlan::ConstantValue(42), seed)
                    .unanimous()
                    .unwrap()
            })
            .collect();
        assert!(
            outputs.len() > 4,
            "outputs suspiciously concentrated: {outputs:?}"
        );
    }

    #[test]
    fn random_noise_byzantine_cannot_break_agreement() {
        let r = run(10, 64, &[4, 8], ByzPlan::Random, 3);
        assert!(check_agreement(&r));
    }

    #[test]
    fn outputs_spread_over_range() {
        // Coarse uniformity check: over 40 seeds with range 8, every
        // bucket should be hit at least once and none should dominate.
        let mut counts = [0u32; 8];
        for seed in 0..40u64 {
            let v = *run(5, 8, &[], ByzPlan::Silent, seed).unanimous().unwrap();
            counts[v as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c >= 1),
            "never-hit bucket: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c <= 20),
            "dominant bucket: {counts:?}"
        );
    }

    #[test]
    fn ideal_secure_is_uniformish_and_cheap() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(4);
        let mut seen = BTreeSet::new();
        for _ in 0..64 {
            seen.insert(rand_num_ideal(16, 20, 6, None, &mut ledger, &mut rng));
        }
        assert!(seen.len() > 8, "secure ideal should spread: {seen:?}");
        let s = ledger.stats(CostKind::RandNum);
        assert_eq!(s.count, 64);
        assert_eq!(s.total_messages / 64, 2 * 20 * 19);
        assert_eq!(s.total_rounds / 64, 2);
    }

    #[test]
    fn ideal_compromised_is_adversary_controlled() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(5);
        // 7 byzantine of 20: 3·7 = 21 ≥ 20 → compromised.
        let v = rand_num_ideal(10, 20, 7, Some(3), &mut ledger, &mut rng);
        assert_eq!(v, 3);
        let w = rand_num_ideal(10, 20, 7, None, &mut ledger, &mut rng);
        assert_eq!(w, 9, "default adversary pick is range−1");
    }

    #[test]
    fn security_threshold_is_one_third() {
        assert!(RandNumSecurity::from_counts(6, 19).is_secure());
        assert!(!RandNumSecurity::from_counts(7, 19).is_secure(), "3·7 > 19");
        assert!(
            !RandNumSecurity::from_counts(7, 21).is_secure(),
            "3·7 = 21 boundary"
        );
        assert!(RandNumSecurity::from_counts(0, 1).is_secure());
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(6);
        let _ = rand_num_ideal(0, 5, 0, None, &mut ledger, &mut rng);
    }
}
