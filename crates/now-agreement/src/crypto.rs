//! Simulated cryptographic primitives.
//!
//! The paper assumes unforgeable node identities everywhere, and Remark 1
//! additionally allows "cryptographic tools" (signatures for broadcast)
//! to push the tolerated fraction to τ < 1/2. In a closed simulation we
//! do not need real cryptography — we need its *guarantees*:
//!
//! * **Signatures**: the [`SigOracle`] records every signature actually
//!   produced. Verification asks the oracle, so a Byzantine node can sign
//!   anything *as itself* but can never exhibit a signature an honest
//!   node did not make. This is the standard ideal-functionality
//!   treatment of signatures.
//! * **Commitments**: [`commit_value`] is hiding/binding "by fiat" — the
//!   preimage contains a 64-bit nonce, and the simulation's adversary is
//!   not given hash-inversion capabilities.
//!
//! Hashes are 64-bit (`std::hash::DefaultHasher` with fixed keys), which
//! is ample for simulation-scale collision resistance.
//!
//! **Determinism note (D001 regression):** the oracle's issued-set is a
//! [`BTreeSet`], not a `HashSet`. An earlier version held a `HashSet`,
//! which was the one hash-ordered collection left in non-test code: its
//! membership queries were deterministic, so no seed re-pins were needed
//! when converting, but any future *iteration* over the issued set would
//! have observed `RandomState` order and broken the byte-identical
//! report gates. `now-lint` rule D001 keeps it (and everything else)
//! canonical from here on.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// A 64-bit commitment digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Commitment(pub u64);

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    c.hash(&mut h);
    h.finish()
}

/// Commits to `value` with `nonce`, bound to the committer's port so two
/// parties committing to the same value produce different digests.
pub fn commit_value(value: u64, nonce: u64, committer: usize) -> Commitment {
    Commitment(hash3(value, nonce, committer as u64))
}

/// Checks that `(value, nonce)` opens `commitment` for `committer`.
pub fn verify_commitment(commitment: Commitment, value: u64, nonce: u64, committer: usize) -> bool {
    commit_value(value, nonce, committer) == commitment
}

/// Ideal signature functionality: unforgeability by bookkeeping.
///
/// # Example
/// ```
/// use now_agreement::SigOracle;
/// let mut oracle = SigOracle::new();
/// let sig = oracle.sign(3, 0xBEEF);
/// assert!(oracle.verify(3, 0xBEEF, sig));
/// assert!(!oracle.verify(4, 0xBEEF, sig)); // nobody else signed it
/// ```
#[derive(Debug, Clone, Default)]
pub struct SigOracle {
    issued: BTreeSet<(usize, u64)>,
}

/// An opaque signature handle. Possessing the handle proves nothing; the
/// oracle's record is authoritative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    signer: usize,
    digest: u64,
}

impl Signature {
    /// The claimed signer (must still be verified against the oracle).
    pub fn signer(&self) -> usize {
        self.signer
    }
}

impl SigOracle {
    /// Creates an oracle with no signatures issued.
    pub fn new() -> Self {
        SigOracle::default()
    }

    /// Produces `signer`'s signature over `message`. Byzantine nodes may
    /// call this freely **for their own port** — the runner enforces
    /// that a node only ever signs as itself.
    pub fn sign(&mut self, signer: usize, message: u64) -> Signature {
        self.issued.insert((signer, message));
        Signature {
            signer,
            digest: message,
        }
    }

    /// True iff `signer` really signed `message` at some point.
    pub fn verify(&self, signer: usize, message: u64, sig: Signature) -> bool {
        sig.signer == signer && sig.digest == message && self.issued.contains(&(signer, message))
    }

    /// Number of signatures issued (monitoring/tests).
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commitment_roundtrip() {
        let c = commit_value(42, 999, 3);
        assert!(verify_commitment(c, 42, 999, 3));
    }

    #[test]
    fn commitment_binds_value_nonce_and_committer() {
        let c = commit_value(42, 999, 3);
        assert!(!verify_commitment(c, 43, 999, 3), "different value");
        assert!(!verify_commitment(c, 42, 998, 3), "different nonce");
        assert!(!verify_commitment(c, 42, 999, 4), "different committer");
    }

    #[test]
    fn same_value_different_committers_differ() {
        assert_ne!(commit_value(7, 1, 0), commit_value(7, 1, 1));
    }

    #[test]
    fn signatures_verify_only_when_issued() {
        let mut oracle = SigOracle::new();
        let sig = oracle.sign(2, 100);
        assert!(oracle.verify(2, 100, sig));
        // A forged handle with the right fields but never issued:
        let forged = Signature {
            signer: 5,
            digest: 100,
        };
        assert!(!oracle.verify(5, 100, forged));
        // The real sig does not verify for another message or signer.
        assert!(!oracle.verify(2, 101, sig));
        assert!(!oracle.verify(3, 100, sig));
    }

    #[test]
    fn issued_count_tracks_unique_signatures() {
        let mut oracle = SigOracle::new();
        oracle.sign(0, 1);
        oracle.sign(0, 1); // duplicate
        oracle.sign(1, 1);
        assert_eq!(oracle.issued_count(), 2);
    }
}
