//! Dolev–Strong authenticated broadcast.
//!
//! Tolerates **any** number of Byzantine nodes in `f+1` rounds, given
//! unforgeable signatures (here: [`crate::crypto::SigOracle`]). This is
//! the tool behind the paper's Remark 1: with cryptography, the
//! tolerated corruption fraction rises to τ < 1/2 (the quorum rule then
//! only needs an honest majority, and equivocation is defeated by
//! signature chains instead of counting).
//!
//! Protocol sketch (sender `s`, resilience parameter `f`):
//! * Round 0: `s` signs its value and sends the 1-signature chain to all.
//! * Round `k`: a chain on value `v` bearing `k` distinct valid
//!   signatures, the first from `s`, convinces a receiver to *extract*
//!   `v`; if `k ≤ f` the receiver appends its own signature and relays.
//! * After round `f+1`: an honest node decides the unique extracted
//!   value, or `⊥` (`None`) if it extracted zero or several.
//!
//! If any honest node extracts `v` by round `f`, all do by the next
//! round; a chain arriving only at round `f+1` carries `f+1` signatures,
//! hence at least one honest one, whose owner relayed earlier. Either
//! way the extracted sets of honest nodes coincide.

use crate::crypto::{SigOracle, Signature};
use crate::outcome::{ByzPlan, ProtocolResult};
use now_net::{Bus, CostKind, Ledger};
use rand::Rng;
use std::collections::BTreeSet;

/// A signature chain on `value`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chain {
    value: u64,
    sigs: Vec<Signature>,
}

fn chain_valid(chain: &Chain, sender: usize, needed: usize, oracle: &SigOracle) -> bool {
    if chain.sigs.len() < needed || chain.sigs.is_empty() {
        return false;
    }
    // INVARIANT: emptiness was rejected two lines up.
    if chain.sigs[0].signer() != sender {
        return false;
    }
    let mut signers = BTreeSet::new();
    for sig in &chain.sigs {
        if !oracle.verify(sig.signer(), chain.value, *sig) {
            return false;
        }
        if !signers.insert(sig.signer()) {
            return false; // duplicate signer
        }
    }
    true
}

/// Runs Dolev–Strong broadcast from `sender` among `n` ports.
///
/// * `value` — the sender's input (ignored if the sender is Byzantine;
///   then `plan` governs what it claims).
/// * `f` — resilience parameter: the protocol runs `f + 2` bus rounds
///   and guarantees agreement whenever `byz.len() ≤ f` (any fraction!).
///
/// Honest decisions are `Some(v)` or `None` (= ⊥, sender exposed as
/// faulty). Costs are recorded under [`CostKind::Agreement`].
///
/// # Panics
/// Panics if `n == 0` or `sender ≥ n`.
// Protocol entry point: takes the full (n, sender, value, byz, f, plan,
// ledger, rng) tuple by design — bundling would hide the paper's inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_dolev_strong<R: Rng>(
    n: usize,
    sender: usize,
    value: u64,
    byz: &BTreeSet<usize>,
    f: usize,
    plan: ByzPlan,
    ledger: &mut Ledger,
    rng: &mut R,
) -> ProtocolResult<Option<u64>> {
    assert!(n > 0, "dolev-strong needs at least one node");
    assert!(sender < n, "sender {sender} out of range for n={n}");

    ledger.begin(CostKind::Agreement);
    let mut oracle = SigOracle::new();
    let mut bus: Bus<Chain> = Bus::new(n);
    // extracted[p]: values p has accepted so far (capped at 2 — a third
    // changes nothing: the decision is already ⊥).
    let mut extracted: Vec<Vec<u64>> = vec![Vec::new(); n];

    // Round 0: sender dispatch.
    if byz.contains(&sender) {
        match plan {
            ByzPlan::Silent => {}
            ByzPlan::ConstantValue(v) => {
                let sig = oracle.sign(sender, v);
                bus.broadcast(
                    sender,
                    Chain {
                        value: v,
                        sigs: vec![sig],
                    },
                );
            }
            ByzPlan::Equivocate(a, b) => {
                let sig_a = oracle.sign(sender, a);
                let sig_b = oracle.sign(sender, b);
                for to in 0..n {
                    if to == sender {
                        continue;
                    }
                    let chain = if to % 2 == 0 {
                        Chain {
                            value: a,
                            sigs: vec![sig_a],
                        }
                    } else {
                        Chain {
                            value: b,
                            sigs: vec![sig_b],
                        }
                    };
                    bus.send(sender, to, chain);
                }
            }
            ByzPlan::Random => {
                for to in 0..n {
                    if to == sender {
                        continue;
                    }
                    let v: u64 = rng.gen();
                    let sig = oracle.sign(sender, v);
                    bus.send(
                        sender,
                        to,
                        Chain {
                            value: v,
                            sigs: vec![sig],
                        },
                    );
                }
            }
        }
    } else {
        let sig = oracle.sign(sender, value);
        bus.broadcast(
            sender,
            Chain {
                value,
                sigs: vec![sig],
            },
        );
        extracted[sender].push(value);
    }

    // Rounds 1..=f+1: relay.
    for k in 1..=(f + 1) {
        bus.step();
        let mut outgoing: Vec<(usize, Chain)> = Vec::new();
        for p in 0..n {
            let inbox = bus.recv(p);
            if byz.contains(&p) {
                // Byzantine relays: withhold (all plans), except Random,
                // which attempts to inject a *forged* chain each round —
                // verification must reject it (sigs[0] is not a genuine
                // sender signature unless the sender signed that value).
                if matches!(plan, ByzPlan::Random) {
                    let v: u64 = rng.gen();
                    let own = oracle.sign(p, v);
                    outgoing.push((
                        p,
                        Chain {
                            value: v,
                            sigs: vec![own],
                        },
                    ));
                }
                continue;
            }
            for (_, chain) in inbox {
                if !chain_valid(&chain, sender, k, &oracle) {
                    continue;
                }
                if extracted[p].contains(&chain.value) || extracted[p].len() >= 2 {
                    continue;
                }
                extracted[p].push(chain.value);
                if k <= f {
                    let mut relay = chain.clone();
                    relay.sigs.push(oracle.sign(p, chain.value));
                    outgoing.push((p, relay));
                }
            }
        }
        for (p, chain) in outgoing {
            bus.broadcast(p, chain);
        }
    }

    ledger.add_messages(bus.messages_sent());
    ledger.add_rounds(bus.round());
    ledger.end();

    ProtocolResult {
        decisions: (0..n)
            .filter(|p| !byz.contains(p))
            .map(|p| {
                let d = if extracted[p].len() == 1 {
                    // INVARIANT: guarded by `len() == 1` on this branch.
                    Some(extracted[p][0])
                } else {
                    None
                };
                (p, d)
            })
            .collect(),
        rounds: bus.round(),
        messages: bus.messages_sent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::check_agreement;
    use now_net::DetRng;
    use proptest::prelude::*;

    fn run(
        n: usize,
        sender: usize,
        value: u64,
        byz: &[usize],
        f: usize,
        plan: ByzPlan,
        seed: u64,
    ) -> ProtocolResult<Option<u64>> {
        let byz: BTreeSet<usize> = byz.iter().copied().collect();
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        run_dolev_strong(n, sender, value, &byz, f, plan, &mut ledger, &mut rng)
    }

    #[test]
    fn honest_sender_delivers_to_all() {
        let r = run(7, 0, 42, &[], 2, ByzPlan::Silent, 1);
        assert_eq!(r.unanimous(), Some(&Some(42)));
    }

    #[test]
    fn honest_sender_with_byzantine_relays() {
        for plan in [ByzPlan::Silent, ByzPlan::ConstantValue(9), ByzPlan::Random] {
            let r = run(7, 0, 42, &[2, 5], 2, plan, 2);
            assert_eq!(
                r.unanimous(),
                Some(&Some(42)),
                "plan {plan:?} broke validity"
            );
        }
    }

    #[test]
    fn equivocating_sender_exposed_consistently() {
        // Byzantine sender sends a to even ports, b to odd; honest relay;
        // everyone extracts both values and decides ⊥ — in agreement.
        let r = run(8, 0, 0, &[0], 1, ByzPlan::Equivocate(10, 20), 3);
        assert!(check_agreement(&r));
        assert_eq!(r.unanimous(), Some(&None), "all honest output ⊥");
    }

    #[test]
    fn silent_sender_yields_bottom() {
        let r = run(5, 1, 7, &[1], 1, ByzPlan::Silent, 4);
        assert_eq!(r.unanimous(), Some(&None));
    }

    #[test]
    fn byzantine_majority_still_agrees() {
        // Dolev–Strong tolerates any f: 3 byzantine of 5, f = 3.
        let r = run(5, 0, 11, &[1, 2, 3], 3, ByzPlan::Random, 5);
        assert_eq!(r.unanimous(), Some(&Some(11)));
    }

    #[test]
    fn forged_chains_are_rejected() {
        // Byzantine relays inject self-signed chains for random values
        // (plan Random); sender is honest: decision must still be the
        // sender's value everywhere.
        let r = run(6, 2, 99, &[0, 5], 2, ByzPlan::Random, 6);
        assert_eq!(r.unanimous(), Some(&Some(99)));
    }

    #[test]
    fn rounds_are_f_plus_two() {
        let r = run(5, 0, 1, &[], 3, ByzPlan::Silent, 7);
        assert_eq!(r.rounds, 4, "f+1 relay rounds (dispatch precedes round 1)");
    }

    #[test]
    fn constant_value_byz_sender_consistent() {
        // A byzantine sender that behaves like an honest one (constant
        // value) results in normal delivery.
        let r = run(6, 0, 0, &[0], 2, ByzPlan::ConstantValue(8), 8);
        assert_eq!(r.unanimous(), Some(&Some(8)));
    }

    proptest! {
        /// Agreement holds for any byzantine subset of size ≤ f and any
        /// plan — including a byzantine sender.
        #[test]
        fn agreement_always_holds(
            seed in any::<u64>(),
            byz_set in proptest::collection::btree_set(0usize..7, 0..4),
            sender in 0usize..7,
            plan_idx in 0usize..4,
        ) {
            let plan = [
                ByzPlan::Silent,
                ByzPlan::ConstantValue(5),
                ByzPlan::Equivocate(1, 2),
                ByzPlan::Random,
            ][plan_idx];
            let byz: Vec<usize> = byz_set.into_iter().collect();
            let r = run(7, sender, 33, &byz, 3, plan, seed);
            prop_assert!(check_agreement(&r), "decisions: {:?}", r.decisions);
            // Validity: honest sender's value always decided.
            if !byz.contains(&sender) {
                prop_assert_eq!(r.unanimous(), Some(&Some(33)));
            }
        }
    }
}
