//! Event-driven asynchronous network.
//!
//! The paper assumes synchrony and lists removing that assumption as
//! future work (§6: *"We currently seek schemes to alleviate the need
//! of the assumption of synchronous nodes."*). This module provides the
//! substrate for that extension: a network with **no rounds** — every
//! message is delivered at an adversarially chosen (but bounded, hence
//! eventual) virtual time, and protocols react to single deliveries
//! instead of round barriers.
//!
//! The delay bound `max_delay` is a simulation horizon, not a protocol
//! assumption: the asynchronous protocols built on this net
//! (`now_agreement::ben_or`) never read the clock; they are safe under
//! any scheduling and live under eventual delivery, which the bound
//! guarantees in finite simulated time.
//!
//! As with [`crate::Bus`], the true sender is stamped on every envelope
//! (identities are unforgeable) and dead ports neither send nor receive.

use crate::bus::Envelope;
use crate::rng::DetRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Asynchronous network over `n` ports with bounded adversarial delays.
///
/// `max_delay` is a **simulation horizon**, not a protocol assumption:
/// it bounds how far into virtual time the adversary can push any
/// single delivery, so every simulated run terminates, while the
/// protocols on top never read the clock (see the module docs).
///
/// # Example
/// ```
/// use now_net::{AsyncNet, DetRng};
/// let mut rng = DetRng::new(1);
/// let mut net: AsyncNet<u32> = AsyncNet::new(2, 10);
/// net.send(0, 1, 7, &mut rng);
/// let (time, env) = net.pop().expect("one message in flight");
/// assert!(time >= 1 && time <= 10); // within the horizon
/// assert_eq!((env.from, env.to, env.payload), (0, 1, 7));
/// assert_eq!(net.messages_sent(), 1);
/// assert_eq!(net.delivered(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AsyncNet<M> {
    queue: BTreeMap<(u64, u64), Envelope<M>>,
    now: u64,
    seq: u64,
    max_delay: u64,
    alive: Vec<bool>,
    messages_sent: u64,
    delivered: u64,
}

impl<M: Clone> AsyncNet<M> {
    /// Creates an asynchronous net with `n` live ports and delays drawn
    /// from `1..=max_delay`.
    ///
    /// # Panics
    /// Panics if `max_delay == 0`.
    pub fn new(n: usize, max_delay: u64) -> Self {
        assert!(max_delay > 0, "delay bound must be positive");
        AsyncNet {
            queue: BTreeMap::new(),
            now: 0,
            seq: 0,
            max_delay,
            alive: vec![true; n],
            messages_sent: 0,
            delivered: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.alive.len()
    }

    /// Current virtual time (the timestamp of the last delivery).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total messages *sent* by live ports so far — including messages
    /// to dead or unknown recipients, which are lost in flight and
    /// never counted in [`AsyncNet::delivered`]. (A dead sender sends
    /// nothing.)
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Marks a port dead (its in-flight and future traffic is dropped)
    /// or alive again.
    pub fn set_alive(&mut self, port: usize, alive: bool) {
        if let Some(slot) = self.alive.get_mut(port) {
            *slot = alive;
        }
    }

    /// Queues a message with a uniformly random delay in
    /// `1..=max_delay` (the simulation horizon; see the type docs).
    ///
    /// A dead or unknown *sender* sends nothing. A live sender's
    /// message to a dead or unknown recipient **counts in
    /// [`AsyncNet::messages_sent`] but is never delivered** — the
    /// sender paid for the send; the network partition between the
    /// living and the departed ate it. [`AsyncNet::delivered`] counts
    /// only actual deliveries.
    ///
    /// ```
    /// use now_net::{AsyncNet, DetRng};
    /// let mut rng = DetRng::new(1);
    /// let mut net: AsyncNet<u8> = AsyncNet::new(2, 4);
    /// net.set_alive(1, false);
    /// net.send(0, 1, 9, &mut rng); // recipient is gone
    /// assert_eq!(net.messages_sent(), 1);
    /// assert!(net.pop().is_none());
    /// assert_eq!(net.delivered(), 0);
    /// ```
    pub fn send(&mut self, from: usize, to: usize, payload: M, rng: &mut DetRng) {
        let delay = rng.gen_range(1..=self.max_delay);
        self.send_with_delay(from, to, payload, delay);
    }

    /// Queues a message with an explicit delay — the hook for an
    /// adversarial scheduler (clamped to `1..=max_delay`: delivery is
    /// eventual within the horizon). Counting rules match
    /// [`AsyncNet::send`].
    pub fn send_with_delay(&mut self, from: usize, to: usize, payload: M, delay: u64) {
        if from >= self.alive.len() || !self.alive[from] {
            return;
        }
        self.messages_sent += 1;
        if to >= self.alive.len() || !self.alive[to] {
            return;
        }
        let delay = delay.clamp(1, self.max_delay);
        self.seq += 1;
        self.queue
            .insert((self.now + delay, self.seq), Envelope { from, to, payload });
    }

    /// Sends to every other live port with independent random delays.
    pub fn broadcast(&mut self, from: usize, payload: M, rng: &mut DetRng) {
        for to in 0..self.alive.len() {
            if to != from {
                self.send(from, to, payload.clone(), rng);
            }
        }
    }

    /// Delivers the earliest in-flight message, advancing virtual time
    /// to its timestamp. Returns `None` when nothing is in flight.
    /// Messages addressed to ports that died after sending are dropped
    /// (the pop proceeds to the next message).
    pub fn pop(&mut self) -> Option<(u64, Envelope<M>)> {
        while let Some((&key, _)) = self.queue.iter().next() {
            // INVARIANT: `key` was read from the map one line up and
            // `self` is exclusively borrowed in between.
            let env = self.queue.remove(&key).expect("key just observed");
            self.now = key.0;
            if self.alive.get(env.to).copied().unwrap_or(false) {
                self.delivered += 1;
                return Some((key.0, env));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_order_is_by_virtual_time() {
        let mut net: AsyncNet<u8> = AsyncNet::new(3, 100);
        net.send_with_delay(0, 1, 10, 50);
        net.send_with_delay(0, 2, 20, 5);
        net.send_with_delay(1, 2, 30, 20);
        let times: Vec<(u64, u8)> = std::iter::from_fn(|| net.pop())
            .map(|(t, e)| (t, e.payload))
            .collect();
        assert_eq!(times, vec![(5, 20), (20, 30), (50, 10)]);
    }

    #[test]
    fn time_only_advances() {
        let mut net: AsyncNet<u8> = AsyncNet::new(2, 10);
        let mut rng = DetRng::new(1);
        for _ in 0..20 {
            net.send(0, 1, 0, &mut rng);
        }
        let mut last = 0;
        while let Some((t, _)) = net.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(net.delivered(), 20);
    }

    #[test]
    fn delays_respect_the_bound() {
        let mut net: AsyncNet<u8> = AsyncNet::new(2, 7);
        let mut rng = DetRng::new(2);
        for _ in 0..50 {
            net.send(0, 1, 0, &mut rng);
        }
        while let Some((t, _)) = net.pop() {
            assert!(t <= 7, "all sent at time 0 with max_delay 7");
        }
    }

    #[test]
    fn explicit_delay_is_clamped() {
        let mut net: AsyncNet<u8> = AsyncNet::new(2, 5);
        net.send_with_delay(0, 1, 1, 0); // clamped up to 1
        net.send_with_delay(0, 1, 2, 999); // clamped down to 5
        let (t1, _) = net.pop().unwrap();
        let (t2, _) = net.pop().unwrap();
        assert_eq!(t1, 1);
        assert_eq!(t2, 5);
    }

    #[test]
    fn dead_ports_drop_traffic() {
        let mut net: AsyncNet<u8> = AsyncNet::new(3, 10);
        net.set_alive(1, false);
        net.send_with_delay(1, 0, 1, 1); // dead sender: sends nothing
        assert_eq!(net.messages_sent(), 0);
        net.send_with_delay(0, 1, 2, 1); // dead recipient: sent, lost
        assert_eq!(net.messages_sent(), 1);
        assert!(net.pop().is_none());
        assert_eq!(net.delivered(), 0);
        // Dying *after* send also drops at delivery.
        net.send_with_delay(0, 2, 3, 1);
        net.set_alive(2, false);
        assert!(net.pop().is_none());
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.delivered(), 0);
    }

    /// Regression for the counter semantics: `messages_sent` counts
    /// every live-sender send (delivered or lost), `delivered` counts
    /// only deliveries, and the two never drift apart on a healthy
    /// link.
    #[test]
    fn sent_and_delivered_counters_are_consistent() {
        let mut net: AsyncNet<u8> = AsyncNet::new(3, 5);
        let mut rng = DetRng::new(9);
        for i in 0..10 {
            net.send(0, 1, i, &mut rng); // healthy link
        }
        net.set_alive(2, false);
        for i in 0..4 {
            net.send(0, 2, i, &mut rng); // lost to a dead recipient
        }
        assert_eq!(net.messages_sent(), 14);
        while net.pop().is_some() {}
        assert_eq!(net.delivered(), 10, "only the healthy link delivers");
        assert_eq!(net.messages_sent(), 14, "pop never re-counts sends");
    }

    #[test]
    fn sender_is_stamped() {
        let mut net: AsyncNet<&'static str> = AsyncNet::new(2, 3);
        net.send_with_delay(1, 0, "pretending to be 0", 1);
        let (_, env) = net.pop().unwrap();
        assert_eq!(env.from, 1);
    }

    #[test]
    fn broadcast_reaches_all_live() {
        let mut net: AsyncNet<u8> = AsyncNet::new(4, 10);
        let mut rng = DetRng::new(3);
        net.set_alive(3, false);
        net.broadcast(0, 9, &mut rng);
        // The sender pays for all three sends; only two can deliver.
        assert_eq!(net.messages_sent(), 3);
        while net.pop().is_some() {}
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "delay bound")]
    fn zero_delay_bound_rejected() {
        let _: AsyncNet<u8> = AsyncNet::new(2, 0);
    }
}
