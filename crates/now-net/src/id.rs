//! Node and cluster identities.
//!
//! The paper assigns every node a unique, unforgeable identifier. In the
//! simulator, identity is enforced structurally: a [`NodeId`] can only be
//! minted by an [`IdGen`], and message envelopes are stamped by the bus
//! with the true sender, so Byzantine nodes cannot impersonate others.

use std::fmt;

/// Unique identifier of a node (process) in the network.
///
/// Node ids are never reused, even after the node leaves: the adversary's
/// join–leave attack relies on being *recognized* as a fresh node, and the
/// analysis assumes fresh identities per join.
///
/// # Example
/// ```
/// use now_net::IdGen;
/// let mut gen = IdGen::new();
/// let a = gen.node();
/// let b = gen.node();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Raw numeric value (stable within a run; used for indexing/sorting).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Constructs a `NodeId` from a raw value.
    ///
    /// Intended for tests and deserialization of recorded runs; protocol
    /// code should mint ids through [`IdGen`].
    pub fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unique identifier of a cluster (a vertex of the OVER overlay graph).
///
/// Cluster ids are minted at clusterization and at `split`; they are
/// retired at `merge`. Like node ids they are never reused within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(u64);

impl ClusterId {
    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Constructs a `ClusterId` from a raw value (tests / replay).
    pub fn from_raw(raw: u64) -> Self {
        ClusterId(raw)
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Monotone id factory for nodes and clusters.
///
/// One `IdGen` per simulated system guarantees global uniqueness.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    next_node: u64,
    next_cluster: u64,
}

impl IdGen {
    /// Creates a factory starting at zero for both id spaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh, never-before-issued node id.
    pub fn node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// Mints a fresh cluster id.
    pub fn cluster(&mut self) -> ClusterId {
        let id = ClusterId(self.next_cluster);
        self.next_cluster += 1;
        id
    }

    /// Number of node ids issued so far.
    pub fn nodes_issued(&self) -> u64 {
        self.next_node
    }

    /// Number of cluster ids issued so far.
    pub fn clusters_issued(&self) -> u64 {
        self.next_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_ids_unique_and_monotone() {
        let mut gen = IdGen::new();
        let ids: Vec<NodeId> = (0..100).map(|_| gen.node()).collect();
        let set: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), 100);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(gen.nodes_issued(), 100);
    }

    #[test]
    fn cluster_ids_independent_of_node_ids() {
        let mut gen = IdGen::new();
        let n = gen.node();
        let c = gen.cluster();
        assert_eq!(n.raw(), 0);
        assert_eq!(c.raw(), 0);
        assert_eq!(gen.clusters_issued(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_raw(7).to_string(), "n7");
        assert_eq!(ClusterId::from_raw(3).to_string(), "C3");
        assert_eq!(format!("{:?}", NodeId::from_raw(7)), "n7");
    }

    #[test]
    fn ids_roundtrip_raw() {
        let n = NodeId::from_raw(42);
        assert_eq!(NodeId::from_raw(n.raw()), n);
        let c = ClusterId::from_raw(42);
        assert_eq!(ClusterId::from_raw(c.raw()), c);
    }
}
