//! Synchronous round-based message bus.
//!
//! Models the paper's network: messages sent in round `r` over private
//! channels are delivered at the start of round `r+1`; a time step is
//! composed of several such rounds. Protocol state machines in
//! `now-agreement` and the initialization phase of `now-core` run on this
//! bus (fidelity level L0).
//!
//! Ports are dense `usize` indices local to one protocol execution; the
//! caller maps ports to global [`crate::NodeId`]s. The bus stamps every
//! envelope with the true sender port, so a Byzantine node may *say*
//! anything but cannot *impersonate* anyone — matching the paper's
//! unforgeable-identity assumption.

use crate::error::NetError;

/// A message in flight or delivered, stamped with its true sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// True sender port (stamped by the bus, not claimable).
    pub from: usize,
    /// Destination port.
    pub to: usize,
    /// Protocol payload.
    pub payload: M,
}

/// Synchronous message bus over `n` ports.
///
/// # Example
/// ```
/// use now_net::Bus;
/// let mut bus: Bus<u32> = Bus::new(2);
/// bus.send(0, 1, 7);
/// assert!(bus.recv(1).is_empty()); // not delivered until step()
/// bus.step();
/// assert_eq!(bus.recv(1), vec![(0, 7)]);
/// ```
#[derive(Debug, Clone)]
pub struct Bus<M> {
    inboxes: Vec<Vec<(usize, M)>>,
    pending: Vec<Envelope<M>>,
    alive: Vec<bool>,
    round: u64,
    messages_sent: u64,
}

impl<M: Clone> Bus<M> {
    /// Creates a bus with `n` live ports and no messages in flight.
    pub fn new(n: usize) -> Self {
        Bus {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            pending: Vec::new(),
            alive: vec![true; n],
            round: 0,
            messages_sent: 0,
        }
    }

    /// Number of ports (live or dead).
    pub fn ports(&self) -> usize {
        self.inboxes.len()
    }

    /// Current round number (increments on every [`Bus::step`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total messages accepted for delivery so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Whether `port` is alive (dead ports neither send nor receive —
    /// this models the paper's leave/crash detection: a silent neighbor).
    pub fn is_alive(&self, port: usize) -> bool {
        self.alive.get(port).copied().unwrap_or(false)
    }

    /// Marks a port dead (left/crashed) or alive again (rejoined slot).
    ///
    /// # Errors
    /// Returns [`NetError::UnknownPort`] if `port` is out of range.
    pub fn set_alive(&mut self, port: usize, alive: bool) -> Result<(), NetError> {
        let slot = self
            .alive
            .get_mut(port)
            .ok_or(NetError::UnknownPort { port })?;
        *slot = alive;
        if !alive {
            self.inboxes[port].clear();
        }
        Ok(())
    }

    /// Queues a message for delivery at the next [`Bus::step`].
    ///
    /// Silently drops traffic from or to dead ports (a crashed node's
    /// in-flight messages are lost; sending to a departed neighbor is a
    /// no-op, which is how the sender *detects* the departure at the
    /// protocol layer). Out-of-range ports are also dropped; protocols
    /// iterate over their known participant set, so this models stale
    /// views rather than programming errors.
    pub fn send(&mut self, from: usize, to: usize, payload: M) {
        if from >= self.alive.len() || to >= self.alive.len() {
            return;
        }
        if !self.alive[from] || !self.alive[to] {
            return;
        }
        self.messages_sent += 1;
        self.pending.push(Envelope { from, to, payload });
    }

    /// Sends `payload` from `from` to every other live port.
    pub fn broadcast(&mut self, from: usize, payload: M) {
        for to in 0..self.alive.len() {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    /// Sends `payload` from `from` to each port in `targets`.
    pub fn multicast(&mut self, from: usize, targets: &[usize], payload: M) {
        for &to in targets {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    /// Advances one communication round: all queued messages become
    /// available to their recipients.
    pub fn step(&mut self) {
        self.round += 1;
        for env in self.pending.drain(..) {
            if env.to < self.alive.len() && self.alive[env.to] {
                self.inboxes[env.to].push((env.from, env.payload));
            }
        }
    }

    /// Drains and returns the inbox of `port` as `(sender, payload)`
    /// pairs, in arrival order. Returns an empty vector for dead or
    /// unknown ports.
    pub fn recv(&mut self, port: usize) -> Vec<(usize, M)> {
        match self.inboxes.get_mut(port) {
            Some(inbox) => std::mem::take(inbox),
            None => Vec::new(),
        }
    }

    /// Peeks at the inbox of `port` without draining it.
    pub fn peek(&self, port: usize) -> &[(usize, M)] {
        self.inboxes.get(port).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of messages currently queued for delivery at next step.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Indices of all live ports.
    pub fn live_ports(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&p| self.alive[p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_delayed_one_round() {
        let mut bus: Bus<u8> = Bus::new(3);
        bus.send(0, 2, 9);
        assert_eq!(bus.in_flight(), 1);
        assert!(bus.recv(2).is_empty());
        bus.step();
        assert_eq!(bus.recv(2), vec![(0, 9)]);
        assert!(bus.recv(2).is_empty(), "recv drains");
    }

    #[test]
    fn sender_identity_is_stamped() {
        let mut bus: Bus<&'static str> = Bus::new(2);
        // Even if the payload *claims* to be from someone else, the
        // envelope records the true sender.
        bus.send(1, 0, "i am node 0, honest!");
        bus.step();
        let got = bus.recv(0);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn dead_ports_neither_send_nor_receive() {
        let mut bus: Bus<u8> = Bus::new(3);
        bus.set_alive(1, false).unwrap();
        bus.send(1, 0, 1); // dropped: dead sender
        bus.send(0, 1, 2); // dropped: dead recipient
        bus.step();
        assert!(bus.recv(0).is_empty());
        assert!(bus.recv(1).is_empty());
        assert_eq!(bus.messages_sent(), 0);
    }

    #[test]
    fn killing_port_clears_its_inbox_and_inflight_is_dropped() {
        let mut bus: Bus<u8> = Bus::new(2);
        bus.send(0, 1, 5);
        bus.step();
        // Message delivered; now node 1 dies before reading.
        bus.set_alive(1, false).unwrap();
        assert!(bus.recv(1).is_empty());
        // In-flight to a node that dies mid-round is dropped at delivery.
        bus.set_alive(1, true).unwrap();
        bus.send(0, 1, 6);
        bus.set_alive(1, false).unwrap();
        bus.step();
        bus.set_alive(1, true).unwrap();
        assert!(bus.recv(1).is_empty());
    }

    #[test]
    fn broadcast_reaches_all_live_ports() {
        let mut bus: Bus<u8> = Bus::new(4);
        bus.set_alive(3, false).unwrap();
        bus.broadcast(0, 7);
        bus.step();
        assert_eq!(bus.recv(1), vec![(0, 7)]);
        assert_eq!(bus.recv(2), vec![(0, 7)]);
        assert!(bus.recv(3).is_empty());
        assert!(bus.recv(0).is_empty(), "no self-delivery");
        assert_eq!(bus.messages_sent(), 2);
    }

    #[test]
    fn multicast_hits_targets_only() {
        let mut bus: Bus<u8> = Bus::new(4);
        bus.multicast(0, &[1, 3], 1);
        bus.step();
        assert_eq!(bus.recv(1).len(), 1);
        assert!(bus.recv(2).is_empty());
        assert_eq!(bus.recv(3).len(), 1);
    }

    #[test]
    fn round_counter_advances() {
        let mut bus: Bus<u8> = Bus::new(1);
        assert_eq!(bus.round(), 0);
        bus.step();
        bus.step();
        assert_eq!(bus.round(), 2);
    }

    #[test]
    fn out_of_range_ports_are_dropped_not_panicking() {
        let mut bus: Bus<u8> = Bus::new(2);
        bus.send(0, 99, 1);
        bus.send(99, 0, 1);
        bus.step();
        assert!(bus.recv(0).is_empty());
        assert_eq!(bus.messages_sent(), 0);
    }

    #[test]
    fn set_alive_unknown_port_errors() {
        let mut bus: Bus<u8> = Bus::new(1);
        assert!(matches!(
            bus.set_alive(5, false),
            Err(NetError::UnknownPort { port: 5 })
        ));
    }

    #[test]
    fn live_ports_lists_alive_only() {
        let mut bus: Bus<u8> = Bus::new(3);
        bus.set_alive(1, false).unwrap();
        assert_eq!(bus.live_ports(), vec![0, 2]);
    }

    #[test]
    fn peek_does_not_drain() {
        let mut bus: Bus<u8> = Bus::new(2);
        bus.send(0, 1, 3);
        bus.step();
        assert_eq!(bus.peek(1).len(), 1);
        assert_eq!(bus.recv(1).len(), 1);
    }

    #[test]
    fn messages_preserve_arrival_order() {
        let mut bus: Bus<u8> = Bus::new(3);
        bus.send(0, 2, 1);
        bus.send(1, 2, 2);
        bus.send(0, 2, 3);
        bus.step();
        let payloads: Vec<u8> = bus.recv(2).into_iter().map(|(_, p)| p).collect();
        assert_eq!(payloads, vec![1, 2, 3]);
    }
}
