//! Error types for the network substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A port index outside the bus's range was addressed by an operation
    /// that requires an existing port (e.g. liveness control).
    UnknownPort {
        /// The offending port index.
        port: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownPort { port } => write!(f, "unknown bus port {port}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetError::UnknownPort { port: 3 };
        assert_eq!(e.to_string(), "unknown bus port 3");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
