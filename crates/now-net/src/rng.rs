//! Deterministic, fork-able randomness.
//!
//! Every simulated run must be a pure function of `(config, seed)`: the
//! experiments in `EXPERIMENTS.md` cite seeds, and the integration tests
//! replay runs and assert bit-identical audit trails. `rand::StdRng` does
//! not promise cross-version stability, so we pin ChaCha12 explicitly.
//!
//! [`DetRng::fork`] derives an independent labeled substream. Protocol
//! components each own a fork, so adding instrumentation (which may draw
//! random numbers for sampling decisions) never perturbs protocol
//! randomness — a property the drift experiments (X-L23) rely on.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Deterministic PRNG used everywhere in the workspace.
///
/// Implements [`rand::RngCore`], so all `rand::Rng` extension methods
/// (`gen_range`, `gen_bool`, …) are available.
///
/// # Example
/// ```
/// use now_net::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same seed, same stream
///
/// let mut child = a.fork("exchange");
/// let _ = child.gen_range(0..10u32);
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha12Rng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child seed mixes fresh output of `self` with a hash of the
    /// label, so distinct labels forked at the same point yield
    /// uncorrelated streams, and the same `(seed, fork sequence)` always
    /// reproduces the same child.
    pub fn fork(&mut self, label: &str) -> DetRng {
        let mut hasher = DefaultHasher::new();
        label.hash(&mut hasher);
        let label_bits = hasher.finish();
        let mut seed = [0u8; 32];
        // INVARIANT: fixed literal sub-ranges of a [u8; 32] — each
        // 8-byte window is in bounds and sized to the u64 it copies.
        seed[..8].copy_from_slice(&self.inner.next_u64().to_le_bytes());
        // INVARIANT: same fixed windows, statements two to four.
        seed[8..16].copy_from_slice(&label_bits.to_le_bytes());
        // INVARIANT: fixed window three of four.
        seed[16..24].copy_from_slice(&self.inner.next_u64().to_le_bytes());
        // INVARIANT: fixed window four of four.
        seed[24..32].copy_from_slice(&label_bits.rotate_left(17).to_le_bytes());
        DetRng {
            inner: ChaCha12Rng::from_seed(seed),
        }
    }

    /// Derives the randomness substream of one *batched operation*:
    /// a ChaCha12 stream seeded purely from `(master, time_step,
    /// op_index)` through a splitmix64 chain.
    ///
    /// The threaded wave executor hands every operation of a batch its
    /// own substream keyed by the batch's master draw, the time step,
    /// and the operation's **canonical index** (departures before
    /// arrivals, each in input order). Because the derivation never
    /// reads shared generator state, the interleaving of worker
    /// threads cannot perturb any operation's stream — executing the
    /// batch on 1, 2, or 8 threads consumes bit-identical randomness.
    ///
    /// # Example
    /// ```
    /// use now_net::DetRng;
    /// use rand::RngCore;
    ///
    /// let mut a = DetRng::for_op(7, 3, 0);
    /// let mut b = DetRng::for_op(7, 3, 0);
    /// assert_eq!(a.next_u64(), b.next_u64()); // same triple, same stream
    /// ```
    pub fn for_op(master: u64, time_step: u64, op_index: u64) -> DetRng {
        fn splitmix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        // Chain the three keys so that flipping any single one (even to
        // a value another key held) lands on an unrelated 256-bit seed.
        let mut state = splitmix(master);
        state = splitmix(state ^ splitmix(time_step ^ 0x6A09_E667_F3BC_C908));
        state = splitmix(state ^ splitmix(op_index ^ 0xBB67_AE85_84CA_A73B));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            state = splitmix(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        DetRng {
            inner: ChaCha12Rng::from_seed(seed),
        }
    }

    /// Samples an exponential random variable with the given `rate`
    /// (mean `1/rate`) via inverse-transform sampling.
    ///
    /// Used by the continuous-time random walk: the holding time at a
    /// vertex of degree `d` is `Exp(d)` when every edge fires at rate 1.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive and finite, got {rate}"
        );
        // Map a u64 to (0, 1]: (x + 1) / 2^64 avoids ln(0).
        let u = (self.inner.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        -u.ln() / rate
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        let mut fa = a.fork("walks");
        let mut fb = b.fork("walks");
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let mut root = DetRng::new(9);
        // Fork both from clones at the same stream position.
        let mut root2 = root.clone();
        let mut fa = root.fork("alpha");
        let mut fb = root2.fork("beta");
        let va: Vec<u64> = (0..8).map(|_| fa.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| fb.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_does_not_alias_parent() {
        let mut root = DetRng::new(5);
        let mut child = root.fork("c");
        let parent_next = root.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    fn for_op_is_deterministic_per_triple() {
        let draw = |m, t, i| {
            let mut rng = DetRng::for_op(m, t, i);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        assert_eq!(draw(7, 3, 0), draw(7, 3, 0));
    }

    #[test]
    fn for_op_separates_every_key() {
        let draw = |m, t, i| {
            let mut rng = DetRng::for_op(m, t, i);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        let base = draw(7, 3, 5);
        assert_ne!(base, draw(8, 3, 5), "master must separate streams");
        assert_ne!(base, draw(7, 4, 5), "time step must separate streams");
        assert_ne!(base, draw(7, 3, 6), "op index must separate streams");
        // Swapping time step and op index must not collide.
        assert_ne!(draw(7, 3, 5), draw(7, 5, 3));
    }

    #[test]
    fn for_op_does_not_alias_plain_seeding() {
        let mut a = DetRng::for_op(42, 0, 0);
        let mut b = DetRng::new(42);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = DetRng::new(77);
        let n = 20_000;
        let rate = 3.0;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.02,
            "empirical mean {mean} too far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            assert!(rng.exp(0.5) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = DetRng::new(4);
        let _ = rng.exp(0.0);
    }

    #[test]
    fn gen_range_works_via_rng_trait() {
        let mut rng = DetRng::new(11);
        for _ in 0..100 {
            let x = rng.gen_range(0..10u32);
            assert!(x < 10);
        }
    }
}
