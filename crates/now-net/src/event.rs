//! Deterministic discrete-event network scheduler.
//!
//! [`AsyncNet`](crate::AsyncNet) models *adversarial* bounded delays:
//! the caller supplies the randomness (or an explicit delay) per send,
//! which is the right interface for an adversary but makes a run a
//! function of whatever stream the caller happened to thread through.
//! [`EventNet`] is the production-shaped sibling: a seeded event loop
//! whose entire behavior — per-link latency, jitter, loss, and
//! partitions — is a pure function of `(seed, config)`. Two `EventNet`s
//! built from the same pair replay byte-identical delivery schedules,
//! whatever thread count or host executes the protocol on top.
//!
//! # Link model
//!
//! Every accepted message is scheduled `latency + U(0..=jitter)` ticks
//! of virtual time after its send, where the uniform draw comes from the
//! net's own internal [`DetRng`]. Before scheduling, the message may be
//! *lost*: an independent Bernoulli draw with probability
//! [`EventNetConfig::drop`], or a partition cut
//! ([`Partition`]) while the partition is in force. Lost messages count
//! in [`EventNet::messages_sent`] and [`EventNet::dropped`] but are
//! never delivered — after draining the queue,
//! `delivered + dropped == messages_sent` holds exactly, which the
//! partition-heal tests assert.
//!
//! Self-addressed messages (`from == to`) model node-local events (a
//! timer, a detector firing): they pay base latency only and are exempt
//! from loss and partitions.

use crate::bus::Envelope;
use crate::rng::DetRng;
use rand::Rng;
use std::collections::BTreeMap;

/// A network partition: which port groups can exchange messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Fully connected — no cut.
    None,
    /// Ports are split into `groups` components by residue
    /// (`port % groups`); messages crossing components are cut while
    /// the partition is in force. `Split { groups: 1 }` (or 0) cuts
    /// nothing.
    Split {
        /// Number of components.
        groups: usize,
    },
}

impl Partition {
    /// Whether the link `from → to` is severed by this partition.
    pub fn severs(&self, from: usize, to: usize) -> bool {
        match *self {
            Partition::None => false,
            Partition::Split { groups } => groups >= 2 && from % groups != to % groups,
        }
    }
}

/// Link model of an [`EventNet`]: the `config` half of the
/// `(seed, config)` pair a run is replayable from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventNetConfig {
    /// Base latency in virtual-time ticks (values below 1 behave as 1:
    /// delivery is never instantaneous).
    pub latency: u64,
    /// Uniform extra delay: each message adds `U(0..=jitter)` ticks.
    pub jitter: u64,
    /// Independent per-message loss probability in `[0, 1]`.
    pub drop: f64,
    /// Partition in force from virtual time 0.
    pub partition: Partition,
    /// Virtual time at which the partition heals (`None` = never).
    /// Messages sent at `now >= heal_at` cross freely.
    pub heal_at: Option<u64>,
}

impl EventNetConfig {
    /// The benign baseline: latency 1, no jitter, no loss, no partition.
    pub fn ideal() -> Self {
        EventNetConfig {
            latency: 1,
            jitter: 0,
            drop: 0.0,
            partition: Partition::None,
            heal_at: None,
        }
    }

    /// Sets the base latency.
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the uniform jitter bound.
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the per-message loss probability (clamped to `[0, 1]` at
    /// draw time).
    pub fn with_drop(mut self, drop: f64) -> Self {
        self.drop = drop;
        self
    }

    /// Splits the ports into `groups` components until
    /// [`EventNetConfig::healing_at`] (or forever).
    pub fn with_partition(mut self, groups: usize) -> Self {
        self.partition = if groups >= 2 {
            Partition::Split { groups }
        } else {
            Partition::None
        };
        self
    }

    /// Heals the partition at the given virtual time.
    pub fn healing_at(mut self, time: u64) -> Self {
        self.heal_at = Some(time);
        self
    }

    /// Whether the partition is in force at virtual time `now`.
    pub fn partitioned_at(&self, now: u64) -> bool {
        self.partition != Partition::None && self.heal_at.map_or(true, |h| now < h)
    }

    /// Whether the link `from → to` is cut at virtual time `now`.
    pub fn severs_at(&self, from: usize, to: usize, now: u64) -> bool {
        self.partitioned_at(now) && self.partition.severs(from, to)
    }
}

impl Default for EventNetConfig {
    fn default() -> Self {
        EventNetConfig::ideal()
    }
}

/// Why a send did not schedule a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Bernoulli loss draw fired.
    Loss,
    /// The partition severed the link at send time.
    Partition,
    /// The recipient was dead or unknown at send time.
    DeadRecipient,
}

/// One entry of a net's event trace: a delivery or a loss, in the
/// order the scheduler resolved them. The trace is part of the
/// byte-comparable outcome of an event-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time of the delivery (or of the send, for losses).
    pub time: u64,
    /// Caller-chosen operation/message tag.
    pub op: u64,
    /// `true` for a delivery, `false` for a loss.
    pub delivered: bool,
}

/// Seeded discrete-event network: delivery schedule, loss, and
/// partitions are a pure function of `(seed, config)`.
///
/// # Example
/// ```
/// use now_net::{EventNet, EventNetConfig};
///
/// let config = EventNetConfig::ideal().with_latency(3).with_jitter(2);
/// let mut net: EventNet<u32> = EventNet::new(2, config, 42);
/// net.send(0, 1, 7);
/// let (time, env) = net.pop().expect("scheduled");
/// assert!((3..=5).contains(&time));
/// assert_eq!((env.from, env.to, env.payload), (0, 1, 7));
/// // Same (seed, config) ⇒ same schedule, bit for bit.
/// let mut replay: EventNet<u32> = EventNet::new(2, config, 42);
/// replay.send(0, 1, 7);
/// assert_eq!(replay.pop().unwrap().0, time);
/// ```
#[derive(Debug, Clone)]
pub struct EventNet<M> {
    queue: BTreeMap<(u64, u64), Envelope<M>>,
    config: EventNetConfig,
    rng: DetRng,
    now: u64,
    seq: u64,
    alive: Vec<bool>,
    messages_sent: u64,
    delivered: u64,
    dropped: u64,
}

impl<M: Clone> EventNet<M> {
    /// Creates an event net over `n` live ports. All randomness (jitter
    /// draws, loss draws) comes from an internal stream seeded with
    /// `seed`: the net's behavior is replayable from `(seed, config)`
    /// alone.
    pub fn new(n: usize, config: EventNetConfig, seed: u64) -> Self {
        EventNet {
            queue: BTreeMap::new(),
            config,
            rng: DetRng::new(seed),
            now: 0,
            seq: 0,
            alive: vec![true; n],
            messages_sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.alive.len()
    }

    /// The link model this net was built with.
    pub fn config(&self) -> &EventNetConfig {
        &self.config
    }

    /// Current virtual time (the timestamp of the last delivery).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total messages accepted from live senders so far (delivered,
    /// in flight, or lost).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages lost so far (Bernoulli loss, partition cuts,
    /// dead recipients — at send or at delivery time). After draining,
    /// `delivered() + dropped() == messages_sent()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Whether the partition (if any) is still in force at the current
    /// virtual time.
    pub fn partitioned(&self) -> bool {
        self.config.partitioned_at(self.now)
    }

    /// Marks a port dead (its in-flight and future traffic is lost) or
    /// alive again.
    pub fn set_alive(&mut self, port: usize, alive: bool) {
        if let Some(slot) = self.alive.get_mut(port) {
            *slot = alive;
        }
    }

    /// Queues a message on the link `from → to`, scheduling its
    /// delivery `latency + U(0..=jitter)` ticks from now, unless the
    /// link loses it. Returns the loss reason, or `None` when the
    /// message was scheduled.
    ///
    /// A dead or unknown *sender* sends nothing (not counted). A live
    /// sender's message always counts in [`EventNet::messages_sent`],
    /// even when lost. Self-addressed messages (`from == to`) are
    /// node-local: base latency only, exempt from loss and partitions.
    ///
    /// A partition cuts a cross-group message iff it is still in force
    /// at the message's scheduled **delivery** time: healing restores
    /// arrivals, so in-flight messages outrun a heal that lands before
    /// their delivery.
    pub fn send(&mut self, from: usize, to: usize, payload: M) -> Option<DropReason> {
        if from >= self.alive.len() || !self.alive[from] {
            return None;
        }
        self.messages_sent += 1;
        // Fixed draw order per accepted send — jitter then loss — so
        // the stream position never depends on the config's outcome.
        let local = from == to;
        let extra = if self.config.jitter > 0 && !local {
            self.rng.gen_range(0..=self.config.jitter)
        } else {
            0
        };
        let lost = if self.config.drop > 0.0 && !local {
            self.rng.gen_bool(self.config.drop.clamp(0.0, 1.0))
        } else {
            false
        };
        // A cross-group message is cut iff the partition is still in
        // force at the message's *scheduled delivery time*: a message
        // in flight when the partition heals gets through (its arrival
        // is what the heal restores), while one that would land inside
        // the cut is lost.
        let deliver = self.now + self.config.latency.max(1) + extra;
        let reason = if to >= self.alive.len() || !self.alive[to] {
            Some(DropReason::DeadRecipient)
        } else if !local && self.config.severs_at(from, to, deliver) {
            Some(DropReason::Partition)
        } else if lost {
            Some(DropReason::Loss)
        } else {
            None
        };
        if reason.is_some() {
            self.dropped += 1;
            return reason;
        }
        self.seq += 1;
        self.queue
            .insert((deliver, self.seq), Envelope { from, to, payload });
        None
    }

    /// Delivers the earliest in-flight message, advancing virtual time
    /// to its timestamp. Returns `None` when nothing is in flight.
    /// Messages addressed to ports that died after sending are counted
    /// as [`EventNet::dropped`] and skipped.
    pub fn pop(&mut self) -> Option<(u64, Envelope<M>)> {
        while let Some((&key, _)) = self.queue.iter().next() {
            // INVARIANT: `key` was read from the map one line up and
            // `self` is exclusively borrowed in between.
            let env = self.queue.remove(&key).expect("key just observed");
            self.now = key.0;
            if self.alive.get(env.to).copied().unwrap_or(false) {
                self.delivered += 1;
                return Some((key.0, env));
            }
            self.dropped += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut EventNet<u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| net.pop())
            .map(|(t, e)| (t, e.payload))
            .collect()
    }

    #[test]
    fn same_seed_and_config_replay_byte_identical() {
        let config = EventNetConfig::ideal()
            .with_latency(2)
            .with_jitter(7)
            .with_drop(0.2);
        let run = || {
            let mut net: EventNet<u64> = EventNet::new(8, config, 99);
            for i in 0..200u64 {
                net.send((i % 8) as usize, ((i * 3 + 1) % 8) as usize, i);
            }
            (
                drain(&mut net),
                net.messages_sent(),
                net.delivered(),
                net.dropped(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_schedule_differently() {
        let config = EventNetConfig::ideal().with_jitter(30);
        let run = |seed| {
            let mut net: EventNet<u64> = EventNet::new(4, config, seed);
            for i in 0..50u64 {
                net.send(0, 1 + (i % 3) as usize, i);
            }
            drain(&mut net)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn latency_and_jitter_bound_the_delay() {
        let config = EventNetConfig::ideal().with_latency(5).with_jitter(3);
        let mut net: EventNet<u64> = EventNet::new(2, config, 7);
        for i in 0..100 {
            net.send(0, 1, i);
        }
        for (t, _) in drain(&mut net) {
            assert!((5..=8).contains(&t), "delay out of [5, 8]: {t}");
        }
    }

    #[test]
    fn zero_latency_behaves_as_one() {
        let config = EventNetConfig::ideal().with_latency(0);
        let mut net: EventNet<u64> = EventNet::new(2, config, 7);
        net.send(0, 1, 1);
        assert_eq!(net.pop().unwrap().0, 1, "delivery is never instantaneous");
    }

    #[test]
    fn loss_counts_sent_not_delivered() {
        let config = EventNetConfig::ideal().with_drop(1.0);
        let mut net: EventNet<u64> = EventNet::new(2, config, 3);
        for i in 0..10 {
            assert_eq!(net.send(0, 1, i), Some(DropReason::Loss));
        }
        assert_eq!(net.messages_sent(), 10);
        assert_eq!(net.dropped(), 10);
        assert_eq!(net.delivered(), 0);
        assert!(net.pop().is_none());
    }

    #[test]
    fn partition_cuts_cross_group_until_heal() {
        let config = EventNetConfig::ideal().with_partition(2).healing_at(100);
        let mut net: EventNet<u64> = EventNet::new(4, config, 5);
        // Pre-heal: 0 → 1 crosses groups {0,2} / {1,3} and is cut;
        // 0 → 2 stays within a group and flows.
        assert_eq!(net.send(0, 1, 1), Some(DropReason::Partition));
        assert_eq!(net.send(0, 2, 2), None);
        assert_eq!(net.pop().unwrap().1.payload, 2);
        // Advance virtual time past the heal via intra-group hops.
        let mut hops = 0;
        while net.now() < 100 {
            net.send(0, 2, 99);
            net.pop();
            hops += 1;
            assert!(hops < 1000, "heal never reached");
        }
        assert!(!net.partitioned());
        assert_eq!(net.send(0, 1, 3), None, "healed link flows");
        assert_eq!(net.pop().unwrap().1.payload, 3);
        // Conservation: every sent message was delivered or dropped.
        assert_eq!(net.delivered() + net.dropped(), net.messages_sent());
    }

    #[test]
    fn permanent_partition_never_heals() {
        let config = EventNetConfig::ideal().with_partition(2);
        let mut net: EventNet<u64> = EventNet::new(2, config, 5);
        assert_eq!(net.send(0, 1, 1), Some(DropReason::Partition));
        assert!(net.partitioned());
    }

    #[test]
    fn self_messages_are_exempt_from_loss_and_partition() {
        let config = EventNetConfig::ideal()
            .with_drop(1.0)
            .with_partition(2)
            .with_jitter(9);
        let mut net: EventNet<u64> = EventNet::new(3, config, 11);
        assert_eq!(net.send(1, 1, 7), None, "local events always fire");
        let (t, env) = net.pop().unwrap();
        assert_eq!(t, 1, "base latency only — no jitter on local events");
        assert_eq!(env.payload, 7);
    }

    #[test]
    fn dead_sender_not_counted_dead_recipient_counted() {
        let config = EventNetConfig::ideal();
        let mut net: EventNet<u64> = EventNet::new(3, config, 1);
        net.set_alive(1, false);
        assert_eq!(net.send(1, 0, 1), None, "dead sender sends nothing");
        assert_eq!(net.messages_sent(), 0);
        assert_eq!(net.send(0, 1, 2), Some(DropReason::DeadRecipient));
        assert_eq!(net.messages_sent(), 1);
        assert_eq!(net.dropped(), 1);
        // Dying after send drops at delivery, still conserving counts.
        net.send(0, 2, 3);
        net.set_alive(2, false);
        assert!(net.pop().is_none());
        assert_eq!(net.delivered() + net.dropped(), net.messages_sent());
    }

    #[test]
    fn delivery_order_is_by_time_then_sequence() {
        let config = EventNetConfig::ideal().with_latency(4);
        let mut net: EventNet<u64> = EventNet::new(3, config, 1);
        net.send(0, 1, 10);
        net.send(2, 1, 20);
        let order = drain(&mut net);
        assert_eq!(order, vec![(4, 10), (4, 20)], "ties break by send order");
    }

    #[test]
    fn draw_schedule_is_outcome_independent() {
        // The jitter/loss stream positions must not depend on whether a
        // particular message was lost: two configs differing only in
        // the partition (which consumes no draws) schedule surviving
        // messages at identical times.
        let jittery = EventNetConfig::ideal().with_jitter(9);
        let cut = jittery.with_partition(2).healing_at(u64::MAX);
        let mut open: EventNet<u64> = EventNet::new(4, jittery, 17);
        let mut sealed: EventNet<u64> = EventNet::new(4, cut, 17);
        for i in 0..40u64 {
            let (from, to) = ((i % 4) as usize, ((i + 1) % 4) as usize);
            open.send(from, to, i);
            sealed.send(from, to, i);
        }
        let open_times: BTreeMap<u64, u64> =
            drain(&mut open).into_iter().map(|(t, p)| (p, t)).collect();
        for (t, p) in drain(&mut sealed) {
            assert_eq!(open_times[&p], t, "surviving message {p} rescheduled");
        }
    }

    #[test]
    fn partition_predicates() {
        assert!(!Partition::None.severs(0, 1));
        assert!(Partition::Split { groups: 2 }.severs(0, 1));
        assert!(!Partition::Split { groups: 2 }.severs(0, 2));
        assert!(!Partition::Split { groups: 1 }.severs(0, 1));
        let cfg = EventNetConfig::ideal().with_partition(2).healing_at(10);
        assert!(cfg.severs_at(0, 1, 9));
        assert!(!cfg.severs_at(0, 1, 10), "heal time is inclusive");
        assert!(!cfg.severs_at(0, 2, 0));
    }
}
