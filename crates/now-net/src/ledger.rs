//! Exact message/round accounting.
//!
//! The paper's complexity claims are about *numbers of messages* (of
//! identical size) and *communication rounds*. The [`Ledger`] records both
//! with nested operation spans: when `exchange` calls `randCl`, which in
//! turn runs one `randNum` per hop, each message is attributed to every
//! open span, so `exchange`'s recorded cost includes its sub-protocols —
//! exactly how the paper states "exchange costs O(log⁶N)" (inclusive of
//! the `randCl` invocations inside it).

use std::fmt;

/// Category of protocol activity a cost is attributed to.
///
/// One variant per primitive/operation named in the paper, plus
/// application-level categories for the §6 claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostKind {
    /// Intra-cluster distributed random number generation (`randNum`).
    RandNum,
    /// Biased continuous-time random walk cluster selection (`randCl`).
    RandCl,
    /// The node-shuffling primitive (`exchange`).
    Exchange,
    /// NOW `join` operation (Algorithm 1).
    Join,
    /// NOW `leave` operation (Algorithm 2).
    Leave,
    /// NOW `split` operation.
    Split,
    /// NOW `merge` operation.
    Merge,
    /// A batch of join/leave operations executed within one time step
    /// (the paper's footnote: "the analysis can be generalized to
    /// several parallel join and leave operations"). The span's rounds
    /// are the *serial* sum; the parallel (max-over-ops) round count is
    /// reported by the batch API itself.
    Batch,
    /// Initialization: network discovery flooding.
    Discovery,
    /// Initialization: agreement + random partition into clusters.
    Clusterization,
    /// OVER overlay maintenance (`Add`/`Remove`, edge regulation).
    Overlay,
    /// Byzantine agreement / broadcast substrate runs.
    Agreement,
    /// Application: overlay broadcast (§6).
    Broadcast,
    /// Application: uniform sampling (§6).
    Sampling,
    /// Application: aggregation (§6).
    Aggregation,
    /// Anything else (tests, ad-hoc harness activity).
    Other,
}

impl CostKind {
    /// All variants, for iteration in reports.
    pub const ALL: [CostKind; 16] = [
        CostKind::RandNum,
        CostKind::RandCl,
        CostKind::Exchange,
        CostKind::Join,
        CostKind::Leave,
        CostKind::Split,
        CostKind::Merge,
        CostKind::Batch,
        CostKind::Discovery,
        CostKind::Clusterization,
        CostKind::Overlay,
        CostKind::Agreement,
        CostKind::Broadcast,
        CostKind::Sampling,
        CostKind::Aggregation,
        CostKind::Other,
    ];

    /// Stable short name used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::RandNum => "rand_num",
            CostKind::RandCl => "rand_cl",
            CostKind::Exchange => "exchange",
            CostKind::Join => "join",
            CostKind::Leave => "leave",
            CostKind::Split => "split",
            CostKind::Merge => "merge",
            CostKind::Batch => "batch",
            CostKind::Discovery => "discovery",
            CostKind::Clusterization => "clusterization",
            CostKind::Overlay => "overlay",
            CostKind::Agreement => "agreement",
            CostKind::Broadcast => "broadcast",
            CostKind::Sampling => "sampling",
            CostKind::Aggregation => "aggregation",
            CostKind::Other => "other",
        }
    }
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A message/round cost pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Number of (identical-size) messages exchanged.
    pub messages: u64,
    /// Number of sequential communication rounds.
    pub rounds: u64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost {
        messages: 0,
        rounds: 0,
    };

    /// Component-wise sum.
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            messages: self.messages + other.messages,
            rounds: self.rounds + other.rounds,
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = self.plus(rhs);
    }
}

/// A completed top-level or nested operation with its inclusive cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// What ran.
    pub kind: CostKind,
    /// Inclusive cost (sub-operations counted in).
    pub cost: Cost,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: usize,
}

/// Aggregate statistics for one [`CostKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostStats {
    /// Number of completed spans of this kind.
    pub count: u64,
    /// Sum of inclusive message costs.
    pub total_messages: u64,
    /// Sum of inclusive round costs.
    pub total_rounds: u64,
    /// Maximum inclusive message cost of a single span.
    pub max_messages: u64,
    /// Maximum inclusive round cost of a single span.
    pub max_rounds: u64,
}

impl CostStats {
    /// Mean messages per span (0 if none recorded).
    pub fn mean_messages(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.count as f64
        }
    }

    /// Mean rounds per span (0 if none recorded).
    pub fn mean_rounds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_rounds as f64 / self.count as f64
        }
    }

    fn absorb(&mut self, cost: Cost) {
        self.count += 1;
        self.total_messages += cost.messages;
        self.total_rounds += cost.rounds;
        self.max_messages = self.max_messages.max(cost.messages);
        self.max_rounds = self.max_rounds.max(cost.rounds);
    }

    fn merge(&mut self, other: &CostStats) {
        self.count += other.count;
        self.total_messages += other.total_messages;
        self.total_rounds += other.total_rounds;
        self.max_messages = self.max_messages.max(other.max_messages);
        self.max_rounds = self.max_rounds.max(other.max_rounds);
    }
}

#[derive(Debug, Clone)]
struct Span {
    kind: CostKind,
    cost: Cost,
}

/// Nested-span message/round accountant.
///
/// Costs added while a span is open are attributed to *every* open span
/// (inclusive accounting) and to the global totals once.
///
/// # Example
/// ```
/// use now_net::{Ledger, CostKind};
/// let mut l = Ledger::new();
/// l.begin(CostKind::Exchange);
/// l.begin(CostKind::RandCl);
/// l.add_messages(10);
/// l.add_rounds(2);
/// let inner = l.end();          // randCl cost
/// l.add_messages(5);
/// let outer = l.end();          // exchange cost includes randCl
/// assert_eq!(inner.messages, 10);
/// assert_eq!(outer.messages, 15);
/// assert_eq!(l.total().messages, 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    stack: Vec<Span>,
    total: Cost,
    stats: std::collections::BTreeMap<CostKind, CostStats>,
    records: Vec<OpRecord>,
    keep_records: bool,
}

impl Ledger {
    /// Creates an empty ledger that keeps aggregate stats only.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Creates a ledger that additionally retains every [`OpRecord`]
    /// (used by experiments that need per-operation distributions).
    pub fn recording() -> Self {
        Ledger {
            keep_records: true,
            ..Ledger::default()
        }
    }

    /// Opens a new span of the given kind (may nest).
    pub fn begin(&mut self, kind: CostKind) {
        self.stack.push(Span {
            kind,
            cost: Cost::ZERO,
        });
    }

    /// Closes the innermost span, folds its stats, and returns its
    /// inclusive cost.
    ///
    /// # Panics
    /// Panics if no span is open (an unbalanced `begin`/`end` is a
    /// programming error in protocol code).
    pub fn end(&mut self) -> Cost {
        let span = self
            .stack
            .pop()
            // INVARIANT: documented contract — `end` pairs with a
            // preceding `begin`; an unbalanced call is a caller bug.
            .expect("Ledger::end called with no open span");
        self.stats.entry(span.kind).or_default().absorb(span.cost);
        if self.keep_records {
            self.records.push(OpRecord {
                kind: span.kind,
                cost: span.cost,
                depth: self.stack.len(),
            });
        }
        span.cost
    }

    /// Adds `n` messages to the global total and every open span.
    pub fn add_messages(&mut self, n: u64) {
        self.total.messages += n;
        for span in &mut self.stack {
            span.cost.messages += n;
        }
    }

    /// Adds `n` sequential rounds to the global total and every open span.
    pub fn add_rounds(&mut self, n: u64) {
        self.total.rounds += n;
        for span in &mut self.stack {
            span.cost.rounds += n;
        }
    }

    /// Convenience: `add_messages` + `add_rounds` in one call.
    pub fn add(&mut self, cost: Cost) {
        self.add_messages(cost.messages);
        self.add_rounds(cost.rounds);
    }

    /// Global total across all activity.
    pub fn total(&self) -> Cost {
        self.total
    }

    /// Aggregate statistics for one kind (zero stats if never seen).
    pub fn stats(&self, kind: CostKind) -> CostStats {
        self.stats.get(&kind).copied().unwrap_or_default()
    }

    /// All retained per-operation records (empty unless constructed with
    /// [`Ledger::recording`]).
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Discards retained records (aggregates are kept).
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Whether this ledger retains per-operation records.
    pub fn is_recording(&self) -> bool {
        self.keep_records
    }

    /// Folds a completed child ledger into this one, exactly as if the
    /// child's activity had run inline at the current nesting depth.
    ///
    /// The threaded wave executor gives each batched operation a
    /// private ledger (so worker threads never contend on the shared
    /// accountant) and merges them back **in canonical operation
    /// order**: the child's total is added to the global total and to
    /// every currently open span (inclusive accounting, as if the
    /// child's spans had nested here), its per-kind statistics are
    /// folded in (counts and totals add, maxima take the max), and its
    /// records — if both ledgers record — are appended with their
    /// depths shifted by the current open-span depth. Merging the same
    /// children in the same order therefore yields a bit-identical
    /// ledger regardless of which threads produced them.
    ///
    /// # Panics
    /// Panics if the child still has open spans.
    pub fn merge_child(&mut self, child: &Ledger) {
        assert!(
            child.is_balanced(),
            "merge_child requires a balanced child ledger"
        );
        self.total += child.total;
        for span in &mut self.stack {
            span.cost += child.total;
        }
        for (kind, stats) in &child.stats {
            self.stats.entry(*kind).or_default().merge(stats);
        }
        if self.keep_records {
            let depth = self.stack.len();
            self.records.extend(child.records.iter().map(|r| OpRecord {
                depth: r.depth + depth,
                ..*r
            }));
        }
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// True if no span is currently open (useful as a sanity assertion
    /// between time steps).
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_accumulate_inclusively() {
        let mut l = Ledger::new();
        l.begin(CostKind::Join);
        l.add_messages(1);
        l.begin(CostKind::RandCl);
        l.add_messages(2);
        l.add_rounds(1);
        let inner = l.end();
        l.add_messages(4);
        let outer = l.end();
        assert_eq!(
            inner,
            Cost {
                messages: 2,
                rounds: 1
            }
        );
        assert_eq!(
            outer,
            Cost {
                messages: 7,
                rounds: 1
            }
        );
        assert_eq!(
            l.total(),
            Cost {
                messages: 7,
                rounds: 1
            }
        );
    }

    #[test]
    fn stats_track_count_mean_max() {
        let mut l = Ledger::new();
        for msgs in [10u64, 20, 30] {
            l.begin(CostKind::Exchange);
            l.add_messages(msgs);
            l.add_rounds(2);
            l.end();
        }
        let s = l.stats(CostKind::Exchange);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_messages, 60);
        assert_eq!(s.max_messages, 30);
        assert!((s.mean_messages() - 20.0).abs() < 1e-12);
        assert_eq!(s.total_rounds, 6);
        assert_eq!(s.max_rounds, 2);
    }

    #[test]
    fn unseen_kind_has_zero_stats() {
        let l = Ledger::new();
        let s = l.stats(CostKind::Merge);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_messages(), 0.0);
    }

    #[test]
    fn recording_ledger_keeps_records_with_depth() {
        let mut l = Ledger::recording();
        l.begin(CostKind::Join);
        l.begin(CostKind::RandCl);
        l.add_messages(3);
        l.end();
        l.end();
        let recs = l.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, CostKind::RandCl);
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[1].kind, CostKind::Join);
        assert_eq!(recs[1].depth, 0);
        assert_eq!(recs[1].cost.messages, 3);
    }

    #[test]
    fn non_recording_ledger_keeps_no_records() {
        let mut l = Ledger::new();
        l.begin(CostKind::Other);
        l.end();
        assert!(l.records().is_empty());
    }

    /// The merge contract the threaded wave executor relies on: running
    /// an op inline vs. in a child ledger merged afterwards must leave
    /// the parent bit-identical (totals, open-span attribution, stats,
    /// records).
    #[test]
    fn merge_child_matches_inline_execution() {
        let run_op = |l: &mut Ledger| {
            l.begin(CostKind::Join);
            l.add_messages(5);
            l.begin(CostKind::RandCl);
            l.add_messages(2);
            l.add_rounds(1);
            l.end();
            l.add_rounds(1);
            l.end();
        };

        let mut inline = Ledger::recording();
        inline.begin(CostKind::Batch);
        run_op(&mut inline);
        run_op(&mut inline);
        let inline_batch = inline.end();

        let mut merged = Ledger::recording();
        merged.begin(CostKind::Batch);
        for _ in 0..2 {
            let mut child = Ledger::recording();
            run_op(&mut child);
            merged.merge_child(&child);
        }
        let merged_batch = merged.end();

        assert_eq!(inline_batch, merged_batch);
        assert_eq!(inline.total(), merged.total());
        for kind in CostKind::ALL {
            assert_eq!(inline.stats(kind), merged.stats(kind), "{kind}");
        }
        assert_eq!(inline.records(), merged.records());
    }

    #[test]
    fn merge_child_into_non_recording_parent_drops_records() {
        let mut parent = Ledger::new();
        let mut child = Ledger::recording();
        child.begin(CostKind::Leave);
        child.add_messages(3);
        child.end();
        parent.merge_child(&child);
        assert!(parent.records().is_empty());
        assert_eq!(parent.total().messages, 3);
        assert_eq!(parent.stats(CostKind::Leave).count, 1);
        assert!(!parent.is_recording());
        assert!(child.is_recording());
    }

    #[test]
    #[should_panic(expected = "balanced child")]
    fn merge_child_rejects_open_spans() {
        let mut parent = Ledger::new();
        let mut child = Ledger::new();
        child.begin(CostKind::Other);
        parent.merge_child(&child);
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_end_panics() {
        let mut l = Ledger::new();
        let _ = l.end();
    }

    #[test]
    fn balance_check() {
        let mut l = Ledger::new();
        assert!(l.is_balanced());
        l.begin(CostKind::Other);
        assert!(!l.is_balanced());
        assert_eq!(l.open_spans(), 1);
        l.end();
        assert!(l.is_balanced());
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost {
            messages: 1,
            rounds: 2,
        };
        let b = Cost {
            messages: 3,
            rounds: 4,
        };
        assert_eq!(
            a + b,
            Cost {
                messages: 4,
                rounds: 6
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(Cost::ZERO + a, a);
    }

    #[test]
    fn kind_names_are_stable_and_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = CostKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), CostKind::ALL.len());
    }
}
