//! Synchronous message-passing substrate for the NOW/OVER reproduction.
//!
//! The paper (Guerraoui, Huc, Kermarrec, PODC 2013) assumes a *dynamic
//! synchronous network*: discrete time steps, each composed of several
//! communication rounds; private channels between nodes that know each
//! other; a mechanism for detecting that a neighbor left or crashed.
//!
//! This crate provides that substrate:
//!
//! * [`NodeId`] / [`ClusterId`] — forgery-proof identities (the simulator
//!   is the authority on who sent what, matching the paper's "identities
//!   cannot be forged" assumption).
//! * [`DetRng`] — deterministic, fork-able randomness so that every
//!   simulation is a pure function of `(config, seed)`.
//! * [`Bus`] — a synchronous round-based message bus with per-port
//!   inboxes, used to execute real per-node protocol state machines
//!   (fidelity level L0 in `DESIGN.md`).
//! * [`AsyncNet`] — an event-driven network with adversarial bounded
//!   delays, the substrate for the paper's §6 future-work item of
//!   removing the synchrony assumption (see `now_agreement::ben_or`).
//! * [`EventNet`] — the seeded discrete-event scheduler: per-link
//!   latency/jitter/loss/partition models, replayable from
//!   `(seed, config)` alone; the substrate of the event-driven NOW
//!   runtime (`now_core`'s `ExecConfig::Event`).
//! * [`Ledger`] — exact message/round accounting with nested operation
//!   spans, used by the cluster-level execution path (fidelity level L1)
//!   and by the L0 bus alike, so both levels report comparable costs.
//!
//! # Example
//!
//! ```
//! use now_net::{Bus, DetRng, Ledger, CostKind};
//!
//! let mut bus: Bus<&'static str> = Bus::new(3);
//! bus.send(0, 1, "hello");
//! bus.step(); // deliver
//! assert_eq!(bus.recv(1), vec![(0, "hello")]);
//!
//! let mut ledger = Ledger::new();
//! ledger.begin(CostKind::Join);
//! ledger.add_messages(42);
//! ledger.add_rounds(3);
//! let cost = ledger.end();
//! assert_eq!(cost.messages, 42);
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod async_net;
mod bus;
mod error;
mod event;
mod id;
mod ledger;
mod rng;

pub use async_net::AsyncNet;
pub use bus::{Bus, Envelope};
pub use error::NetError;
pub use event::{DropReason, EventNet, EventNetConfig, EventRecord, Partition};
pub use id::{ClusterId, IdGen, NodeId};
pub use ledger::{Cost, CostKind, CostStats, Ledger, OpRecord};
pub use rng::DetRng;
