//! Criterion benches for the §6 applications and the Theorem-3 churn
//! step (join + leave under balanced churn).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use now_apps::{aggregate_count, broadcast, sample_node};
use now_core::{NowParams, NowSystem};
use std::time::Duration;

fn system(clusters: usize, seed: u64) -> NowSystem {
    let params = NowParams::new(1 << 12, 2, 1.5, 0.30, 0.05).unwrap();
    NowSystem::init_fast(params, clusters * params.target_cluster_size(), 0.10, seed)
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps/broadcast");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for clusters in [8usize, 32] {
        let mut sys = system(clusters, 1);
        let origin = sys.cluster_ids()[0];
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &clusters, |b, _| {
            b.iter(|| broadcast(&mut sys, origin))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps/sampling");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut sys = system(16, 2);
    let origin = sys.cluster_ids()[0];
    group.bench_function("sample_node", |b| b.iter(|| sample_node(&mut sys, origin)));
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps/aggregate");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut sys = system(16, 3);
    let root = sys.cluster_ids()[0];
    group.bench_function("count", |b| b.iter(|| aggregate_count(&mut sys, root)));
    group.finish();
}

fn bench_churn_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem3/churn_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("join_then_leave", |b| {
        b.iter_batched(
            || system(12, 4),
            |mut sys| {
                sys.join(false);
                let node = sys.node_ids()[0];
                let _ = sys.leave(node);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_broadcast,
    bench_sampling,
    bench_aggregate,
    bench_churn_step
);
criterion_main!(benches);
