//! Criterion benches for the NOW maintenance operations (Figure 2) and
//! the shuffle/cascade ablations called out in DESIGN.md.
//!
//! Flat-memory core before → after (per `x_flat_core`, 1-vCPU dev
//! container): batched-step wall clock per op at 64/512/4096 clusters
//! 5.33/23.2/35.8 ms → 4.21/22.7/31.6 ms, with planning still ~95 % of
//! the step (the parallelizable share — see `bench_wave_exec`), and
//! the op-kernel hot leaves (`Cluster::member_at` 364 → 0.7 ns,
//! member/neighbor slices borrow instead of clone). Committed sweep:
//! `BENCH_flat_core.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use now_core::{BatchInput, ExecConfig, NowParams, NowSystem};
use std::time::Duration;

fn base_system(shuffle: bool, cascade: bool) -> NowSystem {
    let params = NowParams::new(1 << 12, 2, 1.5, 0.30, 0.05)
        .unwrap()
        .with_shuffle(shuffle)
        .with_cascade(cascade);
    NowSystem::init_fast(params, 12 * params.target_cluster_size(), 0.10, 7)
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops/join");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("shuffle_on", |b| {
        b.iter_batched(
            || base_system(true, true),
            |mut sys| {
                sys.join(true);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("shuffle_off_ablation", |b| {
        b.iter_batched(
            || base_system(false, true),
            |mut sys| {
                sys.join(true);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops/leave");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("cascade_on", |b| {
        b.iter_batched(
            || base_system(true, true),
            |mut sys| {
                let node = sys.node_ids()[0];
                let _ = sys.leave(node);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("cascade_off_ablation", |b| {
        b.iter_batched(
            || base_system(true, false),
            |mut sys| {
                let node = sys.node_ids()[0];
                let _ = sys.leave(node);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_split_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops/split_merge");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("split", |b| {
        b.iter_batched(
            || {
                let mut sys = base_system(true, true);
                // Inflate cluster 0 past nothing (split() is public and
                // does not require oversize).
                let c0 = sys.cluster_ids()[0];
                let donors: Vec<_> = sys
                    .node_ids()
                    .into_iter()
                    .filter(|&n| sys.node_cluster(n).unwrap() != c0)
                    .take(20)
                    .collect();
                for d in donors {
                    sys.force_move(d, c0).unwrap();
                }
                sys
            },
            |mut sys| {
                let c0 = sys.cluster_ids()[0];
                sys.split(c0);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("merge", |b| {
        b.iter_batched(
            || base_system(true, true),
            |mut sys| {
                let c0 = sys.cluster_ids()[0];
                sys.merge(c0);
                sys
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    // The §2-footnote batch path: one time step absorbing `w`
    // operations through the conflict-free wave scheduler. Wall-clock
    // should scale roughly linearly with the width (same total work as
    // serial plus the footprint planning; the savings are in protocol
    // *rounds*, which X-BATCH measures).
    let mut group = c.benchmark_group("ops/step_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for width in [2usize, 8, 16] {
        group.bench_function(format!("width_{width}"), |b| {
            b.iter_batched(
                || {
                    let sys = base_system(true, true);
                    let leavers: Vec<now_net::NodeId> =
                        sys.node_ids().into_iter().take(width / 2).collect();
                    (sys, leavers)
                },
                |(mut sys, leavers)| {
                    let joins = vec![true; width - leavers.len()];
                    let report = sys.step_batch(
                        &BatchInput::from_flags(&joins, &leavers),
                        &ExecConfig::serial(),
                    );
                    (sys, report.wave_count())
                },
                BatchSize::LargeInput,
            )
        });
    }
    // Sparse-overlay variant: many clusters relative to the overlay
    // degree, so the scheduler actually coalesces operations into wide
    // waves (the regime the X-BATCH experiment sweeps).
    group.bench_function("width_8_sparse_overlay", |b| {
        b.iter_batched(
            || {
                let params = NowParams::for_capacity(16).unwrap();
                let sys = NowSystem::init_fast(params, 48 * params.target_cluster_size(), 0.1, 9);
                let leavers: Vec<now_net::NodeId> = sys.node_ids().into_iter().take(4).collect();
                (sys, leavers)
            },
            |(mut sys, leavers)| {
                let report = sys.step_batch(
                    &BatchInput::from_flags(&[true, true, true, true], &leavers),
                    &ExecConfig::serial(),
                );
                (sys, report.wave_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_join,
    bench_leave,
    bench_split_merge,
    bench_batch
);
criterion_main!(benches);
