//! Criterion benches for the sharded membership registry: per-operation
//! cost must stay flat (≈ O(log) in the per-shard occupancy) across a
//! population sweep to 10⁶ nodes — the scaling target the sharding
//! exists for. A quadratic (or even linear) blowup in any of these
//! per-op measurements would show up as a 10×/100× spread between the
//! sweep points.
//!
//! Flat-memory core (slab clusters + sorted-vec members + direct-mapped
//! node index) before → after, measured by `x_flat_core` on the 1-vCPU
//! dev container at 64/512/4096 clusters (ns/op, steady state):
//! attach 82/120/159 → 53/69/101, move 100/133/184 → 52/67/71, detach
//! 72/88/115 → 23/27/20, `node_ids()` 33/35/38 → 5/8/6 per id. The
//! committed sweep lives in `BENCH_flat_core.json` (CI's
//! bench-snapshot job validates it with `x_flat_core --check`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_core::Registry;
use now_net::{ClusterId, NodeId};
use std::time::Duration;

/// Builds a registry of `population` nodes spread over clusters of ~40
/// (the realistic `k·logN` regime), with every 5th node Byzantine.
fn build(population: u64) -> (Registry, Vec<ClusterId>) {
    let clusters = (population / 40).max(1);
    let mut reg = Registry::new();
    let ids: Vec<ClusterId> = (0..clusters).map(ClusterId::from_raw).collect();
    for &c in &ids {
        reg.create_cluster(c);
    }
    for n in 0..population {
        reg.attach(
            NodeId::from_raw(n),
            n % 5 != 0,
            ids[(n % clusters) as usize],
        );
    }
    (reg, ids)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/lookup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for pop in [10_000u64, 100_000, 1_000_000] {
        let (reg, ids) = build(pop);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, _| {
            b.iter(|| {
                i = (i + 7919) % pop; // co-prime stride: touch many shards
                let rec = reg.get(NodeId::from_raw(i)).unwrap();
                let stats = reg.cluster_stats(rec.cluster).unwrap();
                (rec.honest, stats.size, stats.honest)
            })
        });
        assert!(!ids.is_empty());
    }
    group.finish();
}

fn bench_move(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/move");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for pop in [10_000u64, 100_000, 1_000_000] {
        let (mut reg, ids) = build(pop);
        let clusters = ids.len() as u64;
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, _| {
            b.iter(|| {
                i = (i + 7919) % pop;
                let to = ids[((i + 1) % clusters) as usize];
                reg.move_to(NodeId::from_raw(i), to)
            })
        });
    }
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    // population()/byz_population() are O(1) counters; cluster_ids() is
    // a cached slice. These must be population-independent.
    let mut group = c.benchmark_group("registry/aggregates");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for pop in [10_000u64, 1_000_000] {
        let (reg, _) = build(pop);
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, _| {
            b.iter(|| {
                (
                    reg.population(),
                    reg.byz_population(),
                    reg.cluster_count(),
                    reg.cluster_ids().len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_node_ids(c: &mut Criterion) {
    // node_ids() sits on the per-step churn-driver path (leave-target
    // sampling): a k-way merge of the sorted shard streams, so the cost
    // must stay ~linear in n, not n·log n.
    let mut group = c.benchmark_group("registry/node_ids");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for pop in [10_000u64, 100_000, 1_000_000] {
        let (reg, _) = build(pop);
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, _| {
            b.iter(|| reg.node_ids().len())
        });
    }
    group.finish();
}

fn bench_churn_cycle(c: &mut Criterion) {
    // A full attach→move→detach membership cycle at depth: the
    // composite the join/leave/exchange hot paths execute.
    let mut group = c.benchmark_group("registry/churn_cycle");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for pop in [10_000u64, 100_000, 1_000_000] {
        let (mut reg, ids) = build(pop);
        let clusters = ids.len() as u64;
        let mut next = pop;
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, _| {
            b.iter(|| {
                let node = NodeId::from_raw(next);
                next += 1;
                reg.attach(node, next % 3 != 0, ids[(next % clusters) as usize]);
                reg.move_to(node, ids[((next + 1) % clusters) as usize]);
                reg.detach(node)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup,
    bench_move,
    bench_aggregates,
    bench_node_ids,
    bench_churn_cycle
);
criterion_main!(benches);
