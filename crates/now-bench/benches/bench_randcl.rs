//! Criterion benches for the `randCl` biased CTRW (§3.1) across
//! overlay sizes and walk-length factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_core::{NowParams, NowSystem};
use std::time::Duration;

fn bench_randcl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("randcl/clusters");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for clusters in [8usize, 16, 32] {
        let params = NowParams::new(1 << 12, 2, 1.5, 0.30, 0.05).unwrap();
        let n0 = clusters * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 11);
        let start = sys.cluster_ids()[0];
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &clusters, |b, _| {
            b.iter(|| sys.rand_cl_from(start))
        });
    }
    group.finish();
}

fn bench_randcl_walk_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("randcl/walk_factor");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for factor in [0.5f64, 1.0, 2.0] {
        let params = NowParams::new(1 << 12, 2, 1.5, 0.30, 0.05)
            .unwrap()
            .with_walk_length_factor(factor);
        let n0 = 16 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 12);
        let start = sys.cluster_ids()[0];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{factor}")),
            &factor,
            |b, _| b.iter(|| sys.rand_cl_from(start)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_randcl_scaling, bench_randcl_walk_factor);
criterion_main!(benches);
