//! Criterion sweep of the threaded wave executor: the same wide,
//! footprint-disjoint batch executed at 1/2/4/8 worker threads, plus
//! the pooled-vs-scoped spawn-overhead comparison (the threaded entry
//! points now plan on a persistent [`WavePool`]; the per-wave scoped
//! spawner is retained as the reference).
//!
//! The acceptance target for the executor is *measured* wall-clock
//! speedup on wide disjoint batches — the regime the §2-footnote
//! schedule promises concurrency for — at 4 threads over the 1-thread
//! run of the identical (bit-equal) work. The wide group builds the
//! widest wave the overlay admits: one departure per greedily chosen
//! cluster with pairwise-disjoint footprints on a sparse capacity-16
//! overlay of 256 clusters, which schedules as a **single ~30-op wave**
//! whose planning (walks + exchange draws, ≈85 % of the step's wall
//! clock) fans out across the workers. The narrow-dense group is the
//! control: width-≤2 batches on a dense overlay serialize almost fully,
//! so its 1-vs-4 gap measures pure threading overhead.
//!
//! **Host parallelism caveat**: the speedup is bounded by the
//! machine's usable cores. On a single-CPU host (e.g. a 1-vCPU CI
//! container — check `nproc`) every thread count measures ≈ 1.0×
//! by physics; the executor's cross-thread *determinism* is what CI
//! asserts there, and the speedup target is meaningful on ≥ 4 usable
//! cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_core::{BatchInput, ExecConfig, NowParams, NowSystem, WavePool};
use now_net::{ClusterId, NodeId};
use std::collections::BTreeSet;
use std::time::Duration;

/// Sparse overlay: capacity 16 ⇒ target degree 5, spread over many
/// more clusters than the degree can entangle.
fn sparse_system(clusters: usize, seed: u64) -> NowSystem {
    let params = NowParams::for_capacity(16).unwrap();
    let n0 = clusters * params.target_cluster_size();
    NowSystem::init_fast(params, n0, 0.1, seed)
}

/// One departure per cluster of a greedily built pairwise-disjoint
/// footprint family — the widest conflict-free wave this overlay
/// admits (the scheduler provably keeps these in one wave).
fn disjoint_leaves(sys: &NowSystem, want: usize) -> Vec<NodeId> {
    let mut covered: BTreeSet<ClusterId> = BTreeSet::new();
    let mut picked = Vec::new();
    for c in sys.cluster_ids() {
        let fp = sys.op_footprint(c);
        if fp.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(fp);
        picked.push(sys.cluster(c).unwrap().member_at(0));
        if picked.len() == want {
            break;
        }
    }
    picked
}

fn bench_wide_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_exec/wide_disjoint");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let sys = sparse_system(256, 7);
                        let leaves = disjoint_leaves(&sys, 40);
                        assert!(leaves.len() >= 24, "overlay too dense for the bench");
                        (sys, leaves)
                    },
                    |(mut sys, leaves)| {
                        let n = leaves.len();
                        let report = sys.step_batch(
                            &BatchInput::from_flags(&[], &leaves),
                            &ExecConfig::threaded(threads),
                        );
                        assert_eq!(report.max_wave_width(), n, "one wide wave");
                        report.rounds_parallel
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_narrow_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_exec/narrow_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let params = NowParams::for_capacity(1 << 10).unwrap();
                        let sys = NowSystem::init_fast(params, 200, 0.1, 9);
                        let leaves: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
                        (sys, leaves)
                    },
                    |(mut sys, leaves)| {
                        // Dense overlay: every footprint spans the whole
                        // graph, so the batch fully serializes.
                        sys.step_batch(
                            &BatchInput::from_flags(&[true], &leaves),
                            &ExecConfig::threaded(threads),
                        )
                        .rounds_parallel
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// The headline comparison of the pooled executor: conflict-heavy
/// batches whose waves are **narrow but ≥ 2 wide** — the regime where
/// the scoped path re-spawns `min(threads, ops)` OS threads for every
/// wave while the pool reuses one spawn set for the whole run. A
/// moderately sparse 32-cluster overlay with wide mixed batches
/// schedules each step into many small waves; ten steps back-to-back
/// approximate a run.
///
/// Measured on the 1-vCPU dev container (no parallelism exists by
/// physics, so this isolates overhead): pooled-4 ≈ 97 ms, scoped-4 ≈
/// 95 ms, serial-1 ≈ 91 ms per 10-step run — statistically
/// indistinguishable, because per-wave *planning* dominates at these
/// batch shapes and thread spawns are ~10 µs each. The structural
/// difference is the spawn count, pinned exactly by
/// `tests/pool_spawn_accounting.rs`: 4 spawns for the whole pooled run
/// vs `Σ min(threads, ops)` over every wide wave for scoped (hundreds
/// under sustained campaigns). Re-run on a ≥ 4-core host to add the
/// planning fan-out on top (see the module caveat above). Outcomes of
/// both engines are bit-identical (asserted below and gated in CI).
fn bench_pooled_vs_scoped_narrow_waves(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_exec/pool_vs_scoped_narrow");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    const STEPS: usize = 10;
    const THREADS: usize = 4;
    let setup = || sparse_system(32, 13);
    let batch = |sys: &NowSystem, step: usize| {
        let joins = vec![now_core::JoinSpec::uniform(true); 6];
        let leaves: Vec<NodeId> = sys
            .node_ids()
            .into_iter()
            .step_by(7 + step)
            .take(10)
            .collect();
        (joins, leaves)
    };
    group.bench_function("pooled-4", |b| {
        // The pool is run-scoped: created once per measured run, its
        // spawn cost amortized over every step — the deployment shape
        // `now-sim`/`now-campaign` use.
        b.iter_batched(
            setup,
            |mut sys| {
                let pool = WavePool::new(THREADS);
                let mut waves = 0usize;
                for step in 0..STEPS {
                    let (joins, leaves) = batch(&sys, step);
                    let report = sys.step_batch(
                        &BatchInput::from_specs(&joins, &leaves),
                        &ExecConfig::pooled(&pool),
                    );
                    waves += report.wave_count();
                }
                assert!(waves > STEPS, "the workload must schedule many waves");
                (sys, waves)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("scoped-4", |b| {
        b.iter_batched(
            setup,
            |mut sys| {
                let mut waves = 0usize;
                for step in 0..STEPS {
                    let (joins, leaves) = batch(&sys, step);
                    let report = sys.step_batch(
                        &BatchInput::from_specs(&joins, &leaves),
                        &ExecConfig::scoped(THREADS),
                    );
                    waves += report.wave_count();
                }
                (sys, waves)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("serial-1", |b| {
        b.iter_batched(
            setup,
            |mut sys| {
                let pool = WavePool::new(1);
                for step in 0..STEPS {
                    let (joins, leaves) = batch(&sys, step);
                    sys.step_batch(
                        &BatchInput::from_specs(&joins, &leaves),
                        &ExecConfig::pooled(&pool),
                    );
                }
                sys
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();

    // Bit-equality sanity of the compared engines (outside timing).
    let mut a = setup();
    let mut b = setup();
    let pool = WavePool::new(THREADS);
    for step in 0..STEPS {
        let (joins, leaves) = batch(&a, step);
        let ra = a.step_batch(
            &BatchInput::from_specs(&joins, &leaves),
            &ExecConfig::pooled(&pool),
        );
        let (joins, leaves) = batch(&b, step);
        let rb = b.step_batch(
            &BatchInput::from_specs(&joins, &leaves),
            &ExecConfig::scoped(THREADS),
        );
        assert_eq!(ra.joined, rb.joined);
        assert_eq!(ra.cost, rb.cost);
        assert_eq!(ra.waves, rb.waves);
    }
}

criterion_group!(
    benches,
    bench_wide_disjoint,
    bench_narrow_dense,
    bench_pooled_vs_scoped_narrow_waves
);
criterion_main!(benches);
