//! Criterion sweep of the threaded wave executor: the same wide,
//! footprint-disjoint batch executed at 1/2/4/8 worker threads.
//!
//! The acceptance target for the executor is *measured* wall-clock
//! speedup on wide disjoint batches — the regime the §2-footnote
//! schedule promises concurrency for — at 4 threads over the 1-thread
//! run of the identical (bit-equal) work. The wide group builds the
//! widest wave the overlay admits: one departure per greedily chosen
//! cluster with pairwise-disjoint footprints on a sparse capacity-16
//! overlay of 256 clusters, which schedules as a **single ~30-op wave**
//! whose planning (walks + exchange draws, ≈85 % of the step's wall
//! clock) fans out across the workers. The narrow-dense group is the
//! control: width-≤2 batches on a dense overlay serialize almost fully,
//! so its 1-vs-4 gap measures pure threading overhead.
//!
//! **Host parallelism caveat**: the speedup is bounded by the
//! machine's usable cores. On a single-CPU host (e.g. a 1-vCPU CI
//! container — check `nproc`) every thread count measures ≈ 1.0×
//! by physics; the executor's cross-thread *determinism* is what CI
//! asserts there, and the speedup target is meaningful on ≥ 4 usable
//! cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_core::{NowParams, NowSystem};
use now_net::{ClusterId, NodeId};
use std::collections::BTreeSet;
use std::time::Duration;

/// Sparse overlay: capacity 16 ⇒ target degree 5, spread over many
/// more clusters than the degree can entangle.
fn sparse_system(clusters: usize, seed: u64) -> NowSystem {
    let params = NowParams::for_capacity(16).unwrap();
    let n0 = clusters * params.target_cluster_size();
    NowSystem::init_fast(params, n0, 0.1, seed)
}

/// One departure per cluster of a greedily built pairwise-disjoint
/// footprint family — the widest conflict-free wave this overlay
/// admits (the scheduler provably keeps these in one wave).
fn disjoint_leaves(sys: &NowSystem, want: usize) -> Vec<NodeId> {
    let mut covered: BTreeSet<ClusterId> = BTreeSet::new();
    let mut picked = Vec::new();
    for c in sys.cluster_ids() {
        let fp = sys.op_footprint(c);
        if fp.iter().any(|x| covered.contains(x)) {
            continue;
        }
        covered.extend(fp);
        picked.push(sys.cluster(c).unwrap().member_at(0));
        if picked.len() == want {
            break;
        }
    }
    picked
}

fn bench_wide_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_exec/wide_disjoint");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let sys = sparse_system(256, 7);
                        let leaves = disjoint_leaves(&sys, 40);
                        assert!(leaves.len() >= 24, "overlay too dense for the bench");
                        (sys, leaves)
                    },
                    |(mut sys, leaves)| {
                        let n = leaves.len();
                        let report = sys.step_parallel_threaded(&[], &leaves, threads);
                        assert_eq!(report.max_wave_width(), n, "one wide wave");
                        report.rounds_parallel
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_narrow_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_exec/narrow_dense");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let params = NowParams::for_capacity(1 << 10).unwrap();
                        let sys = NowSystem::init_fast(params, 200, 0.1, 9);
                        let leaves: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
                        (sys, leaves)
                    },
                    |(mut sys, leaves)| {
                        // Dense overlay: every footprint spans the whole
                        // graph, so the batch fully serializes.
                        sys.step_parallel_threaded(&[true], &leaves, threads)
                            .rounds_parallel
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wide_disjoint, bench_narrow_dense);
criterion_main!(benches);
