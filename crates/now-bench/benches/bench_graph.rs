//! Criterion benches for the graph substrate: spectral λ₂, exact
//! isoperimetric enumeration, and CTRW endpoint sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_graph::{
    algebraic_connectivity, ctrw_endpoint, exact_isoperimetric, gen, sweep_cut_upper_bound,
    SpectralOptions,
};
use now_net::DetRng;
use std::time::Duration;

fn bench_lambda2(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/lambda2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [64usize, 256, 1024] {
        let mut rng = DetRng::new(1);
        let g = gen::erdos_renyi(n, (16.0 / n as f64).min(0.5), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| algebraic_connectivity(&g, SpectralOptions::default()))
        });
    }
    group.finish();
}

fn bench_exact_isoperimetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/exact_isoperimetric");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [12usize, 16, 20] {
        let mut rng = DetRng::new(2);
        let g = gen::ring_with_chords(n, n / 2, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| exact_isoperimetric(&g))
        });
    }
    group.finish();
}

fn bench_sweep_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/sweep_cut");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let mut rng = DetRng::new(3);
    let g = gen::erdos_renyi(256, 0.08, &mut rng);
    group.bench_function("n=256", |b| {
        b.iter(|| sweep_cut_upper_bound(&g, SpectralOptions::default()))
    });
    group.finish();
}

fn bench_ctrw(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/ctrw");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    let mut seed_rng = DetRng::new(4);
    let g = gen::erdos_renyi(128, 0.12, &mut seed_rng);
    for duration in [1.0f64, 4.0, 16.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{duration}")),
            &duration,
            |b, &d| {
                let mut rng = DetRng::new(5);
                b.iter(|| ctrw_endpoint(&g, 0, d, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lambda2,
    bench_exact_isoperimetric,
    bench_sweep_cut,
    bench_ctrw
);
criterion_main!(benches);
