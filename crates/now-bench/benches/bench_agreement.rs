//! Criterion benches for the agreement substrate (the genuinely
//! executing L0 protocols).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use now_agreement::{
    rand_num_commit_reveal, run_ben_or, run_bracha, run_dolev_strong, run_phase_king, ByzPlan,
};
use now_net::{DetRng, Ledger};
use std::collections::BTreeSet;
use std::time::Duration;

fn bench_phase_king(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/phase_king");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for n in [9usize, 17, 33] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
        let byz: BTreeSet<usize> = (0..(n - 1) / 4).collect();
        let f = (n - 1) / 4;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(1);
                run_phase_king(
                    &inputs,
                    &byz,
                    f,
                    ByzPlan::Equivocate(0, 1),
                    &mut ledger,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_bracha(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/bracha");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for n in [10usize, 22, 46] {
        let byz: BTreeSet<usize> = (1..=(n - 1) / 3).collect();
        let f = (n - 1) / 3;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(2);
                run_bracha(n, 0, 42, &byz, f, ByzPlan::Random, &mut ledger, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_dolev_strong(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/dolev_strong");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 16, 32] {
        let byz: BTreeSet<usize> = (1..n / 2).collect(); // beyond n/3!
        let f = n / 2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(3);
                run_dolev_strong(
                    n,
                    0,
                    9,
                    &byz,
                    f,
                    ByzPlan::Equivocate(1, 2),
                    &mut ledger,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_rand_num(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/rand_num_commit_reveal");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [7usize, 13, 25] {
        let byz: BTreeSet<usize> = (0..(n - 1) / 3).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(4);
                rand_num_commit_reveal(n, 1 << 20, &byz, ByzPlan::Silent, &mut ledger, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_ben_or(c: &mut Criterion) {
    let mut group = c.benchmark_group("agreement/ben_or_async");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for n in [6usize, 11, 21] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        let f = (n - 1) / 5;
        let byz: BTreeSet<usize> = (1..=f).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(5);
                run_ben_or(
                    n,
                    &inputs,
                    &byz,
                    f,
                    ByzPlan::Equivocate(0, 1),
                    20,
                    400,
                    &mut ledger,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_phase_king,
    bench_bracha,
    bench_dolev_strong,
    bench_rand_num,
    bench_ben_or
);
criterion_main!(benches);
