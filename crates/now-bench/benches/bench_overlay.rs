//! Criterion benches for OVER (Properties 1–2): Add/Remove maintenance
//! and the spectral audit.
//!
//! Flat-memory core (slab vertices + sorted-vec neighbor sets behind
//! the same `Overlay` API) before → after, measured by `x_flat_core`
//! at m = 64/512/4096 (ns/op, steady-state add+remove churn): add
//! 8.6/9.2/13.1 µs → 2.7/2.1/3.9 µs, remove 5.2/5.3/6.9 µs →
//! 2.6/2.5/2.8 µs, neighbor iteration 6.3/9.5/14.8 → 1.9/2.8/5.0 ns
//! per neighbor (now a borrowed slice — `op_footprint` and walk hops
//! stopped allocating). Committed sweep: `BENCH_flat_core.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use now_net::{ClusterId, DetRng};
use now_over::{OverParams, Overlay};
use std::time::Duration;

fn fresh_overlay(m: u64, seed: u64) -> (Overlay, DetRng) {
    let params = OverParams::for_capacity(1 << 14);
    let ids: Vec<ClusterId> = (0..m).map(ClusterId::from_raw).collect();
    let mut rng = DetRng::new(seed);
    let overlay = Overlay::init_random(&ids, params, &mut rng);
    (overlay, rng)
}

fn bench_add_remove(c: &mut Criterion) {
    // Swept across overlay sizes to pin the per-op complexity: before
    // the incremental sampling pool, `add_uniform`/`repair_floor`
    // materialized an O(V) candidate vector per call — `remove` repairs
    // *every* former neighbor, so its per-op cost was O(degree·V) and
    // dominated maintenance. Measured on the 1-vCPU dev container at
    // m = 64/512/4096: remove_with_repair 54 µs/365 µs/2.10 ms before →
    // 3.4 µs/7.5 µs/13.7 µs after; steady-state add+remove churn on one
    // overlay 29/148/1119 µs per op before → 4.3/6.2/9.0 µs after
    // (≈ flat in m). Single-shot add_uniform reads 7/14/37 µs before vs
    // 10/12/52 µs after — the old path's O(V) collect doubled as a
    // cache warm-up for the links that follow, an artifact only a
    // cold-cache single-op harness rewards.
    let mut group = c.benchmark_group("overlay/maintenance");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for m in [64u64, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("add_uniform", m), &m, |b, &m| {
            b.iter_batched(
                || fresh_overlay(m, 1),
                |(mut overlay, mut rng)| {
                    overlay.add_uniform(ClusterId::from_raw(99_999), &mut rng);
                    overlay
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("remove_with_repair", m), &m, |b, &m| {
            b.iter_batched(
                || fresh_overlay(m, 2),
                |(mut overlay, mut rng)| {
                    overlay.remove(ClusterId::from_raw(7), &mut rng);
                    overlay
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay/audit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for m in [32u64, 128, 512] {
        let (overlay, _) = fresh_overlay(m, 3);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| overlay.audit())
        });
    }
    group.finish();
}

fn bench_cycles(c: &mut Criterion) {
    // The constant-degree alternative (§3 / X-ALT): maintenance should
    // be O(r) per operation — far below OVER's degree-repair work.
    use now_over::CyclesOverlay;
    let mut group = c.benchmark_group("overlay/cycles");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    let fresh = |seed: u64| {
        let ids: Vec<ClusterId> = (0..64).map(ClusterId::from_raw).collect();
        let mut rng = DetRng::new(seed);
        let overlay = CyclesOverlay::init(&ids, 2, &mut rng);
        (overlay, rng)
    };
    group.bench_function("insert_r2", |b| {
        b.iter_batched(
            || fresh(5),
            |(mut overlay, mut rng)| {
                overlay.insert(ClusterId::from_raw(9_999), &mut rng);
                overlay
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("remove_r2", |b| {
        b.iter_batched(
            || fresh(6),
            |(mut overlay, _)| {
                overlay.remove(ClusterId::from_raw(7));
                overlay
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_footprints(c: &mut Criterion) {
    // Planning cost of the batch wave scheduler: one footprint per
    // operation (vertex + neighbor list). Must stay O(degree) per op,
    // independent of the overlay size.
    use now_core::{NowParams, NowSystem};
    let mut group = c.benchmark_group("overlay/footprints");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for clusters in [16usize, 64, 256] {
        let params = NowParams::for_capacity(16).unwrap();
        let sys = NowSystem::init_fast(params, clusters * params.target_cluster_size(), 0.1, 4);
        let ids = sys.cluster_ids();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &clusters, |b, _| {
            b.iter(|| {
                i = (i + 1) % ids.len();
                sys.op_footprint(ids[i]).len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_add_remove,
    bench_audit,
    bench_cycles,
    bench_footprints
);
criterion_main!(benches);
