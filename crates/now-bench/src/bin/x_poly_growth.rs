//! X-POLY — the headline: polynomial size variation.
//!
//! The population walks from near `√N` up toward `N` and back. At each
//! plateau we measure: invariants (honesty, size band), the cluster
//! count adapting (the paper's departure from static-#clusters schemes),
//! the per-join cost (stays polylog — essentially flat in `n`), and the
//! hypothetical *static-#clusters* cluster size (what prior work would
//! have suffered: clusters growing linearly with `n`).

use now_bench::{results_dir, standard_params};
use now_core::NowSystem;
use now_net::CostKind;
use now_sim::{run, CsvTable, GrowthPhase, MdTable, RunConfig, ShrinkPhase};

fn main() {
    println!("# X-POLY: polynomial size variation (abstract/§1)\n");
    let capacity = 1u64 << 12;
    let tau = 0.10;
    let params = standard_params(capacity, 3);
    let start = 4 * params.target_cluster_size() as u64; // ≈ 2.3·√N
    let mut sys = NowSystem::init_fast(params, start as usize, tau, 60);
    let static_cluster_count = sys.cluster_count() as f64; // prior work: frozen
    println!(
        "N = {capacity}, √N = {}, start n = {start}, band [{}, {}]\n",
        params.min_population(),
        params.min_cluster_size(),
        params.max_cluster_size()
    );

    let plateaus: Vec<u64> = vec![start, 300, 700, 1400, 2800, 1400, 700, 300, start];
    let mut md = MdTable::new([
        "n",
        "clusters",
        "mean_join_msgs",
        "msgs/log²m",
        "worst_frac",
        "band_ok",
        "static-#C size (prior work)",
    ]);
    let mut csv = CsvTable::new([
        "n",
        "clusters",
        "mean_join_msgs",
        "msgs_per_log2m",
        "worst_frac",
        "band_ok",
        "static_cluster_size",
    ]);

    for (i, &target) in plateaus.iter().enumerate() {
        // Move to the plateau.
        let pop = sys.population();
        if target > pop {
            let mut grow = GrowthPhase::new(target, tau);
            run(
                &mut sys,
                &mut grow,
                RunConfig {
                    steps: (target - pop) + 4,
                    audit_every: 8,
                    seed: 70 + i as u64,
                },
            );
        } else if target < pop {
            let mut shrink = ShrinkPhase::new(target);
            run(
                &mut sys,
                &mut shrink,
                RunConfig {
                    steps: (pop - target) + 4,
                    audit_every: 8,
                    seed: 70 + i as u64,
                },
            );
        }
        // Measure join cost at the plateau.
        let before = sys.ledger().stats(CostKind::Join);
        for j in 0..10 {
            sys.join(j % 10 == 9);
        }
        let after = sys.ledger().stats(CostKind::Join);
        let mean_join = (after.total_messages - before.total_messages) as f64
            / (after.count - before.count) as f64;
        let audit = sys.audit();
        // The dominant n-dependence of the join cost is the walk length
        // log²m; normalizing by it exposes the remaining ~constant.
        let log2m = ((audit.cluster_count + 2) as f64).log2().powi(2);
        md.row([
            audit.population.to_string(),
            audit.cluster_count.to_string(),
            format!("{mean_join:.0}"),
            format!("{:.0}", mean_join / log2m),
            format!("{:.3}", audit.worst_byz_fraction),
            audit.size_bounds_ok.to_string(),
            format!("{:.0}", audit.population as f64 / static_cluster_count),
        ]);
        csv.row([
            audit.population.to_string(),
            audit.cluster_count.to_string(),
            format!("{mean_join:.2}"),
            format!("{:.2}", mean_join / log2m),
            format!("{:.6}", audit.worst_byz_fraction),
            audit.size_bounds_ok.to_string(),
            format!("{:.2}", audit.population as f64 / static_cluster_count),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    let (joins, leaves, splits, merges) = sys.op_counts();
    println!("totals: {joins} joins, {leaves} leaves, {splits} splits, {merges} merges");
    println!("\nexpectation: cluster count tracks n/(k·logN) (splits on the way up, merges");
    println!("on the way down); the join cost's n-dependence is the walk length log²m plus");
    println!("overlay-degree saturation (msgs/log²m flattens), i.e. polylog — while the");
    println!("static-#C column shows prior work's cluster size growing linearly in n, the");
    println!("blow-up NOW's dynamic cluster count avoids.");
    csv.write_csv(&results_dir().join("x_poly_growth.csv"))
        .unwrap();
    println!("wrote results/x_poly_growth.csv");
}
