//! X-ALT — overlay alternatives: OVER vs Law–Siu random cycles.
//!
//! §3: NOW's requirements "could also be ensured by other protocols
//! which differ either in the number of failures they can \[tolerate\]
//! or their degree (e.g. 4 in \[2\] instead of log^{1+α}N in OVER)".
//! The constant-degree construction in the paper's related work is Law
//! & Siu's union of random cycles (\[26\]). We compare, at equal vertex
//! count and under identical add/remove churn:
//!
//! * degree (the resource the alternative saves),
//! * spectral gap λ₂ (the expansion OVER buys with its higher degree),
//! * CTRW mixing: the walk duration needed to reach a fixed TV distance
//!   from the uniform endpoint law — the quantity `randCl`'s accuracy
//!   and cost actually depend on.

use now_bench::results_dir;
use now_graph::walks::{endpoint_distribution, total_variation, uniform_distribution};
use now_net::{ClusterId, DetRng};
use now_over::{CyclesOverlay, OverParams, Overlay};
use now_sim::{CsvTable, MdTable};

fn ids(n: u64) -> Vec<ClusterId> {
    (0..n).map(ClusterId::from_raw).collect()
}

fn main() {
    println!("# X-ALT: OVER vs Law-Siu cycles (§3 overlay-agnosticism)\n");
    let m = 96usize; // overlay vertices (clusters)
    let churn_rounds = 200usize;
    let trials = 3000usize;
    let mut md = MdTable::new([
        "overlay", "max_deg", "mean_deg", "lambda2", "TV@dur2", "TV@dur8", "TV@dur32",
    ]);
    let mut csv = CsvTable::new([
        "overlay", "max_deg", "mean_deg", "lambda2", "tv_dur2", "tv_dur8", "tv_dur32",
    ]);

    // Identical churn script applied to each candidate.
    let mut eval = |name: &str, graph: now_graph::Graph| {
        let n = graph.vertex_count();
        let uniform = uniform_distribution(n);
        let mut tvs = Vec::new();
        for duration in [2.0f64, 8.0, 32.0] {
            let mut rng = DetRng::new(42);
            // CTRW with per-edge rate 1: holding rate = degree, uniform
            // stationary law over vertices regardless of regularity.
            let dist = endpoint_distribution(&graph, 0, duration, trials, &mut rng);
            tvs.push(total_variation(&dist, &uniform));
        }
        let lambda2 =
            now_graph::algebraic_connectivity(&graph, now_graph::SpectralOptions::default());
        md.row([
            name.to_string(),
            graph.max_degree().to_string(),
            format!("{:.1}", graph.mean_degree()),
            format!("{lambda2:.3}"),
            format!("{:.3}", tvs[0]),
            format!("{:.3}", tvs[1]),
            format!("{:.3}", tvs[2]),
        ]);
        csv.row([
            name.to_string(),
            graph.max_degree().to_string(),
            format!("{:.3}", graph.mean_degree()),
            format!("{lambda2:.6}"),
            format!("{:.6}", tvs[0]),
            format!("{:.6}", tvs[1]),
            format!("{:.6}", tvs[2]),
        ]);
    };

    // OVER, after churn.
    let params = OverParams::for_capacity(1 << 12);
    let mut rng = DetRng::new(7);
    let mut over = Overlay::init_random(&ids(m as u64), params, &mut rng);
    let mut next = 10_000u64;
    for round in 0..churn_rounds {
        if round % 2 == 0 {
            over.add_uniform(ClusterId::from_raw(next), &mut rng);
            next += 1;
        } else {
            let live: Vec<ClusterId> = over.vertices().collect();
            over.remove(live[round % live.len()], &mut rng);
        }
    }
    let (g_over, _) = over.to_dense();
    eval("OVER", g_over);

    // Law–Siu cycles at r ∈ {1, 2, 3}, same churn script.
    for r in [1usize, 2, 3] {
        let mut rng = DetRng::new(7);
        let mut cyc = CyclesOverlay::init(&ids(m as u64), r, &mut rng);
        let mut next = 10_000u64;
        for round in 0..churn_rounds {
            if round % 2 == 0 {
                cyc.insert(ClusterId::from_raw(next), &mut rng);
                next += 1;
            } else {
                let live: Vec<ClusterId> = cyc.vertices().collect();
                cyc.remove(live[round % live.len()]);
            }
        }
        cyc.check_invariants().unwrap();
        let (g_cyc, _) = cyc.to_dense();
        eval(&format!("cycles r={r} (deg<={})", 2 * r), g_cyc);
    }

    println!("{}", md.render());
    println!("expectation: OVER's log-degree buys a larger λ₂ and near-instant mixing");
    println!("(TV at the noise floor already at duration 2); the r = 2 cycles overlay");
    println!("(degree ≤ 4 — the constant the paper quotes for [2]) still mixes, but");
    println!("needs a longer walk for the same TV — the degree/walk-length trade-off");
    println!("that makes randCl's cost O(log⁵N) either way: cheaper hops × more of");
    println!("them. r = 1 is the control: a single cycle's λ₂ vanishes and walks do");
    println!("not mix at any affordable duration.");
    csv.write_csv(&results_dir().join("x_alt_overlay.csv"))
        .unwrap();
    println!("wrote results/x_alt_overlay.csv");
}
