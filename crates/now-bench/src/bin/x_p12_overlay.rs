//! X-P12 — Properties 1–2 of the OVER overlay.
//!
//! Property 1: isoperimetric constant `I(Ĝᴿ) ≥ log^{1+α}N / 2` whp.
//! Property 2: maximum degree ≤ `c·log^{1+α}N`.
//!
//! We churn an overlay through a long add/remove sequence and audit
//! degree and expansion along the way: exactly (subset enumeration) for
//! small overlays, spectrally (Cheeger lower bound + Fiedler sweep upper
//! bound) for large ones.

use now_bench::results_dir;
use now_net::{ClusterId, DetRng};
use now_over::{OverParams, Overlay};
use now_sim::{CsvTable, MdTable};
use rand::Rng;

fn main() {
    println!("# X-P12: overlay degree and expansion (Properties 1–2)\n");
    let params = OverParams::for_capacity(1 << 14);
    println!(
        "N = 2^14: target degree {}, degree cap {}, expansion bound log^{{1+α}}N/2 = {:.2}\n",
        params.target_degree(),
        params.degree_cap(),
        params.expansion_bound()
    );

    let mut rng = DetRng::new(41);
    let ids: Vec<ClusterId> = (0..48).map(ClusterId::from_raw).collect();
    let mut overlay = Overlay::init_random(&ids, params, &mut rng);
    let mut next_id = 1000u64;

    let mut md = MdTable::new([
        "step",
        "m",
        "max_deg",
        "cap_ok",
        "connected",
        "lambda2",
        "cheeger_low",
        "sweep_up",
        "bound_holds(spectral)",
    ]);
    let mut csv = CsvTable::new([
        "step",
        "m",
        "max_degree",
        "cap_ok",
        "connected",
        "lambda2",
        "cheeger_lower",
        "sweep_upper",
        "exact",
    ]);

    let total_steps = 1200usize;
    for step in 0..=total_steps {
        if step > 0 {
            // 55/45 add/remove mix wanders the overlay size up and down.
            if rng.gen_bool(0.55) || overlay.vertex_count() < 8 {
                overlay.add_uniform(ClusterId::from_raw(next_id), &mut rng);
                next_id += 1;
            } else {
                let live: Vec<ClusterId> = overlay.vertices().collect();
                let victim = live[rng.gen_range(0..live.len())];
                overlay.remove(victim, &mut rng);
            }
        }
        if step % 100 == 0 {
            let audit = overlay.audit();
            md.row([
                step.to_string(),
                audit.vertex_count.to_string(),
                audit.max_degree.to_string(),
                audit.degree_bound_holds.to_string(),
                audit.connected.to_string(),
                format!("{:.2}", audit.lambda2),
                format!("{:.2}", audit.cheeger_lower),
                format!("{:.2}", audit.sweep_upper),
                // At laptop scale the honest comparison is against the
                // sweep-cut estimate; the paper's bound is asymptotic.
                (audit.sweep_upper >= params.expansion_bound() * 0.25).to_string(),
            ]);
            csv.row([
                step.to_string(),
                audit.vertex_count.to_string(),
                audit.max_degree.to_string(),
                audit.degree_bound_holds.to_string(),
                audit.connected.to_string(),
                format!("{:.4}", audit.lambda2),
                format!("{:.4}", audit.cheeger_lower),
                format!("{:.4}", audit.sweep_upper),
                audit
                    .exact_isoperimetric
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
            overlay.check_invariants().unwrap();
        }
    }
    println!("{}", md.render());

    // Exact check on a small overlay (subset enumeration feasible).
    println!("## exact isoperimetric check (small overlay, m ≤ 24)\n");
    let small_params = OverParams::for_capacity(1 << 8);
    let small_ids: Vec<ClusterId> = (0..18).map(ClusterId::from_raw).collect();
    let mut small = Overlay::init_random(&small_ids, small_params, &mut rng);
    for i in 0..60 {
        if i % 3 == 0 {
            small.add_uniform(ClusterId::from_raw(5000 + i), &mut rng);
        } else if small.vertex_count() > 10 {
            let live: Vec<ClusterId> = small.vertices().collect();
            small.remove(live[i as usize % live.len()], &mut rng);
        }
    }
    let audit = small.audit();
    println!(
        "m = {}, exact I(G) = {:.3}, cheeger lower = {:.3}, sweep upper = {:.3}, bound = {:.3}",
        audit.vertex_count,
        audit.exact_isoperimetric.unwrap_or(f64::NAN),
        audit.cheeger_lower,
        audit.sweep_upper,
        small_params.expansion_bound()
    );
    if let Some(exact) = audit.exact_isoperimetric {
        assert!(
            audit.cheeger_lower <= exact + 1e-6,
            "Cheeger sandwich broken"
        );
        assert!(audit.sweep_upper >= exact - 1e-9, "sweep sandwich broken");
        println!("sandwich cheeger ≤ exact ≤ sweep verified.");
    }

    csv.write_csv(&results_dir().join("x_p12_overlay.csv"))
        .unwrap();
    println!("\nexpectation: cap_ok true throughout (Property 2, enforced structurally +");
    println!("audited), overlay stays connected with λ₂ bounded away from 0 (Property 1's");
    println!("substance); absolute expansion tracks the degree scale log^{{1+α}}N.");
    println!("wrote results/x_p12_overlay.csv");
}
