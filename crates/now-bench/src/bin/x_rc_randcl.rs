//! X-RC — `randCl` samples clusters size-biased (`|C|/n`), at polylog
//! cost.
//!
//! Claim (§3.1): the biased CTRW outputs cluster `C` with probability
//! `|C|/n` (a uniformly random node's cluster), with expected cost
//! `O(log⁵N)` messages and `O(log⁴N)` rounds. We sweep the walk-length
//! factor to show the distribution converging (TV distance falling) as
//! walks lengthen, with the cost rising — the operating point trade-off.

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_net::CostKind;
use now_sim::{CsvTable, MdTable};
use std::collections::BTreeMap;

fn main() {
    println!("# X-RC: randCl distribution and cost (§3.1)\n");
    let trials = 3000;
    let mut md = MdTable::new([
        "walk_factor",
        "TV_to_size_biased",
        "mean_msgs",
        "mean_rounds",
        "mean_hops",
        "mean_restarts",
    ]);
    let mut csv = CsvTable::new([
        "walk_factor",
        "tv_distance",
        "mean_msgs",
        "mean_rounds",
        "mean_hops",
        "mean_restarts",
    ]);

    for &factor in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let params = NowParams::new(1 << 12, 2, 1.5, 0.30, 0.05)
            .unwrap()
            .with_walk_length_factor(factor);
        let n0 = 16 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 55);
        // Unbalance sizes so the size bias is observable.
        let ids = sys.cluster_ids();
        for _ in 0..params.target_cluster_size() / 3 {
            let donor = ids[1];
            let m = sys.cluster(donor).unwrap().member_at(0);
            sys.force_move(m, ids[0]).unwrap();
        }
        let start = ids[2];
        let before_rc = sys.ledger().stats(CostKind::RandCl);
        let mut counts: BTreeMap<now_net::ClusterId, u64> = BTreeMap::new();
        let mut hops = 0u64;
        let mut restarts = 0u64;
        for _ in 0..trials {
            let (c, t) = sys.rand_cl_from(start);
            *counts.entry(c).or_default() += 1;
            hops += t.hops;
            restarts += t.restarts;
        }
        let after_rc = sys.ledger().stats(CostKind::RandCl);
        let n = sys.population() as f64;
        let mut tv = 0.0;
        for id in sys.cluster_ids() {
            let expect = sys.cluster(id).unwrap().size() as f64 / n;
            let got = *counts.get(&id).unwrap_or(&0) as f64 / trials as f64;
            tv += (expect - got).abs();
        }
        tv /= 2.0;
        let mean_msgs = (after_rc.total_messages - before_rc.total_messages) as f64 / trials as f64;
        let mean_rounds = (after_rc.total_rounds - before_rc.total_rounds) as f64 / trials as f64;
        md.row([
            format!("{factor:.2}"),
            format!("{tv:.4}"),
            format!("{mean_msgs:.0}"),
            format!("{mean_rounds:.1}"),
            format!("{:.1}", hops as f64 / trials as f64),
            format!("{:.2}", restarts as f64 / trials as f64),
        ]);
        csv.row([
            format!("{factor}"),
            format!("{tv:.6}"),
            format!("{mean_msgs:.2}"),
            format!("{mean_rounds:.3}"),
            format!("{:.3}", hops as f64 / trials as f64),
            format!("{:.4}", restarts as f64 / trials as f64),
        ]);
    }

    println!("{}", md.render());
    let log_n = 12.0f64;
    println!(
        "paper cost bounds at logN = 12: O(log⁵N) = O({:.0}) messages, O(log⁴N) = O({:.0}) rounds.",
        log_n.powi(5),
        log_n.powi(4)
    );
    println!("expectation: TV sits at/near the sampling noise floor sqrt(#C/(2π·trials))");
    println!("≈ 0.03 even for the shortest walks (the OVER overlay mixes in O(1) relaxation");
    println!("times), while cost grows ~linearly in the factor — so the paper's walk length");
    println!("is conservative here; the default factor 1.0 sits inside its cost envelope.");
    csv.write_csv(&results_dir().join("x_rc_randcl.csv"))
        .unwrap();
    println!("wrote results/x_rc_randcl.csv");
}
