//! X-T3 — Theorem 3: all clusters stay > 2/3 honest over a long churn
//! sequence.
//!
//! Claim: whp, at every step of a polynomially long sequence of joins
//! and leaves, every cluster keeps more than two thirds honest members.
//! The "whp" hides the Chernoff constants: at fixed cluster size the
//! violation rate rises sharply as τ approaches 1/3 and falls
//! exponentially in k. This sweep measures exactly that surface —
//! the laptop-scale shape of the theorem.

use now_adversary::RandomChurn;
use now_bench::{build_system, results_dir};
use now_sim::{run, CsvTable, MdTable, RunConfig, ViolationKind};

fn main() {
    println!("# X-T3: long-run cluster honesty (Theorem 3)\n");
    let steps = 1500u64;
    let mut md = MdTable::new([
        "tau",
        "k",
        "cluster",
        "steps",
        "peak_frac",
        "steps_not_2/3",
        "steps_randnum_comp",
        "steps_forgeable",
        "size_violations",
    ]);
    let mut csv = CsvTable::new([
        "tau",
        "k",
        "cluster_size",
        "steps",
        "peak_frac",
        "not_two_thirds",
        "randnum_comp",
        "forgeable",
        "size_violations",
    ]);

    for &tau in &[0.10f64, 0.15, 0.20] {
        for &k in &[2usize, 4, 6] {
            let mut sys = build_system(1 << 12, k, 10, tau, (tau * 1000.0) as u64 + k as u64);
            let cluster = sys.params().target_cluster_size();
            let mut churn = RandomChurn::balanced(tau);
            let report = run(
                &mut sys,
                &mut churn,
                RunConfig {
                    steps,
                    audit_every: 1,
                    seed: 77,
                },
            );
            md.row([
                format!("{tau:.2}"),
                k.to_string(),
                cluster.to_string(),
                report.steps.to_string(),
                format!("{:.3}", report.peak_byz_fraction),
                report.count(ViolationKind::NotTwoThirdsHonest).to_string(),
                report.count(ViolationKind::RandNumCompromised).to_string(),
                report.count(ViolationKind::Forgeable).to_string(),
                report.count(ViolationKind::SizeBounds).to_string(),
            ]);
            csv.row([
                format!("{tau}"),
                k.to_string(),
                cluster.to_string(),
                report.steps.to_string(),
                format!("{:.6}", report.peak_byz_fraction),
                report.count(ViolationKind::NotTwoThirdsHonest).to_string(),
                report.count(ViolationKind::RandNumCompromised).to_string(),
                report.count(ViolationKind::Forgeable).to_string(),
                report.count(ViolationKind::SizeBounds).to_string(),
            ]);
            sys.check_consistency().unwrap();
        }
    }

    println!("{}", md.render());
    println!("expectation: violation steps → 0 as k grows at fixed τ (exponentially, per");
    println!("Lemma 1's Chernoff bound), and rise as τ → 1/3 at fixed k. Forgeable (1/2)");
    println!("violations are rarer than 1/3 crossings at every point of the sweep.");
    csv.write_csv(&results_dir().join("x_t3_longrun.csv"))
        .unwrap();
    println!("wrote results/x_t3_longrun.csv");
}
