//! X-PRESSURE — structural attacks on the split/merge machinery.
//!
//! §3.3's join–leave attack targets cluster *composition*; these
//! adversaries target the *operations* that reshape clusters:
//!
//! * split-forcing floods one cluster with arrivals (every arrival
//!   contacts the target) hoping to seize a split half — a split
//!   partitions the current membership rather than resampling it;
//! * merge-forcing drains a target so it keeps absorbing `randCl`-chosen
//!   victims — maximal structural churn per departure.
//!
//! Measured: operation mix, invariant violations, and the worst
//! composition reached — against both the full protocol and the
//! no-shuffle ablation (where the same pressure is expected to break
//! the target).

use now_bench::results_dir;
use now_sim::{ChurnStyle, CsvTable, MdTable, Scenario, ViolationKind};

fn main() {
    println!("# X-PRESSURE: split/merge-forcing attacks (§3.3 extension)\n");
    let steps = 500u64;
    let tau = 0.20;
    let mut md = MdTable::new([
        "attack",
        "shuffle",
        "splits",
        "merges",
        "peak_frac",
        "not_2/3_steps",
        "forgeable_steps",
    ]);
    let mut csv = CsvTable::new([
        "attack",
        "shuffle",
        "splits",
        "merges",
        "peak_frac",
        "not_two_thirds_steps",
        "forgeable_steps",
    ]);

    for (style, label) in [
        (ChurnStyle::Balanced, "balanced (control)"),
        (ChurnStyle::SplitForcing, "split-forcing"),
        (ChurnStyle::MergeForcing, "merge-forcing"),
        (ChurnStyle::Burst { burst: 8 }, "burst-8"),
    ] {
        for shuffle in [true, false] {
            let mut scenario = Scenario::new(1 << 12)
                .k(4)
                .tau(tau)
                .churn(style)
                .steps(steps)
                .seed(23);
            if !shuffle {
                scenario = scenario.without_shuffle();
            }
            let (report, sys) = scenario.run().unwrap();
            let (_, _, splits, merges) = sys.op_counts();
            md.row([
                label.to_string(),
                shuffle.to_string(),
                splits.to_string(),
                merges.to_string(),
                format!("{:.3}", report.peak_byz_fraction),
                report.count(ViolationKind::NotTwoThirdsHonest).to_string(),
                report.count(ViolationKind::Forgeable).to_string(),
            ]);
            csv.row([
                label.to_string(),
                shuffle.to_string(),
                splits.to_string(),
                merges.to_string(),
                format!("{:.6}", report.peak_byz_fraction),
                report.count(ViolationKind::NotTwoThirdsHonest).to_string(),
                report.count(ViolationKind::Forgeable).to_string(),
            ]);
            sys.check_consistency().unwrap();
        }
    }

    println!("{}", md.render());
    println!("expectation: the attacks trigger their targeted operations (splits resp.");
    println!("merges > 0) but never capture a cluster (forgeable_steps = 0 everywhere):");
    println!("randCl re-routes the flood and merges re-sample both clusters, so structural");
    println!("pressure buys the adversary nothing beyond the balanced-churn control's");
    println!("numbers. The not-2/3 excursions in the shuffle=true rows track the control:");
    println!("they are the k = 4, τ = 0.20 thin-margin *resampling noise* of Lemma 1 (every");
    println!("exchange redraws a Binomial(|C|, τ) composition; X-T3's k-sweep kills them),");
    println!("not an attack effect. The shuffle=false column splits by churn direction:");
    println!("join-dominated rows (split-forcing, burst) barely move — nothing resamples —");
    println!("while leave-bearing rows (control, merge-forcing) drift *worse* than with");
    println!("shuffling, the §3.3 motivation. And no-shuffle is exactly the configuration");
    println!("the join-leave attacker captures outright (X-JLA, X-ABL-EX).");
    csv.write_csv(&results_dir().join("x_pressure.csv"))
        .unwrap();
    println!("wrote results/x_pressure.csv");
}
