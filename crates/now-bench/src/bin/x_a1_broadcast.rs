//! X-A1 — §6: broadcast `Õ(n)` with clustering vs `O(n²)` without.

use now_apps::broadcast;
use now_bench::{build_system, results_dir, slope};
use now_sim::baselines::naive_broadcast_cost;
use now_sim::{CsvTable, MdTable};

fn main() {
    println!("# X-A1: broadcast complexity (§6)\n");
    let mut md = MdTable::new([
        "n",
        "clusters",
        "clustered_msgs",
        "naive_msgs",
        "speedup",
        "rounds",
        "complete",
    ]);
    let mut csv = CsvTable::new([
        "n",
        "clusters",
        "clustered_msgs",
        "naive_msgs",
        "speedup",
        "rounds",
        "complete",
    ]);
    let mut ns: Vec<f64> = Vec::new();
    let mut costs: Vec<f64> = Vec::new();

    for (i, clusters) in [8usize, 16, 32, 64].into_iter().enumerate() {
        let mut sys = build_system(1 << 12, 2, clusters, 0.10, 600 + i as u64);
        let n = sys.population();
        let origin = sys.cluster_ids()[0];
        let report = broadcast(&mut sys, origin);
        let naive = naive_broadcast_cost(n);
        ns.push((n as f64).ln());
        costs.push((report.messages as f64).ln());
        md.row([
            n.to_string(),
            sys.cluster_count().to_string(),
            report.messages.to_string(),
            naive.to_string(),
            format!("{:.1}×", naive as f64 / report.messages.max(1) as f64),
            report.rounds.to_string(),
            report.complete.to_string(),
        ]);
        csv.row([
            n.to_string(),
            sys.cluster_count().to_string(),
            report.messages.to_string(),
            naive.to_string(),
            format!("{:.4}", naive as f64 / report.messages.max(1) as f64),
            report.rounds.to_string(),
            report.complete.to_string(),
        ]);
    }

    let exponent = slope(&ns, &costs);
    println!("{}", md.render());
    println!("fitted cost exponent: clustered_msgs ≈ n^{exponent:.2} (naive is n^2.00)");
    println!("expectation: exponent ≈ 1 (Õ(n)); speedup grows with n; delivery complete.");
    csv.write_csv(&results_dir().join("x_a1_broadcast.csv"))
        .unwrap();
    println!("wrote results/x_a1_broadcast.csv");
}
