//! X-ASYNC — removing the synchrony assumption (§6 future work).
//!
//! *"We currently seek schemes to alleviate the need of the assumption
//! of synchronous nodes."* The first brick of any such scheme is an
//! agreement primitive that survives asynchrony; we measure Ben-Or
//! randomized binary consensus on the event-driven `AsyncNet`:
//!
//! * phases-to-decide and messages as `n` grows, under adversarial
//!   equivocation at the `f < n/5` resilience bound;
//! * robustness to the *delay bound* — the scheduler may stretch any
//!   message by up to `D`; safety must be untouched and termination
//!   should cost only wall-clock (virtual time), not extra phases;
//! * the unanimous-input fast path (decide in phase 0) the validity
//!   proof promises.

use now_agreement::{
    rand_num_async, rand_num_commit_reveal, run_ben_or, run_ben_or_with_coin, ByzPlan, CoinMode,
};
use now_bench::results_dir;
use now_net::{DetRng, Ledger};
use now_sim::{CsvTable, MdTable};
use std::collections::BTreeSet;

fn main() {
    println!("# X-ASYNC: asynchronous Ben-Or consensus (§6 future work)\n");

    // ---- Part A: scaling in n under attack ----
    println!("## A. scaling at the resilience bound (split inputs, equivocator)\n");
    let mut md = MdTable::new([
        "n",
        "f",
        "runs_decided/20",
        "mean_phases",
        "max_phases",
        "mean_msgs",
    ]);
    let mut csv = CsvTable::new([
        "n",
        "f",
        "decided",
        "mean_phases",
        "max_phases",
        "mean_msgs",
    ]);
    for &n in &[6usize, 11, 16, 21, 31] {
        let f = (n - 1) / 5;
        let byz: BTreeSet<usize> = (1..=f).collect();
        let mut decided = 0u32;
        let mut phase_sum = 0u64;
        let mut phase_max = 0u64;
        let mut msg_sum = 0u64;
        for run in 0..20u64 {
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            let mut ledger = Ledger::new();
            let mut rng = DetRng::new(1000 + run);
            let report = run_ben_or(
                n,
                &inputs,
                &byz,
                f,
                ByzPlan::Equivocate(0, 1),
                20,
                400,
                &mut ledger,
                &mut rng,
            );
            if report.all_decided {
                decided += 1;
            }
            let worst = report
                .decision_phases
                .values()
                .max()
                .copied()
                .unwrap_or(400);
            phase_sum += worst;
            phase_max = phase_max.max(worst);
            msg_sum += report.result.messages;
        }
        md.row([
            n.to_string(),
            f.to_string(),
            decided.to_string(),
            format!("{:.1}", phase_sum as f64 / 20.0),
            phase_max.to_string(),
            format!("{:.0}", msg_sum as f64 / 20.0),
        ]);
        csv.row([
            n.to_string(),
            f.to_string(),
            decided.to_string(),
            format!("{:.3}", phase_sum as f64 / 20.0),
            phase_max.to_string(),
            format!("{:.1}", msg_sum as f64 / 20.0),
        ]);
    }
    println!("{}", md.render());
    println!("expectation: every run decides (termination w.p. 1 under randomized");
    println!("scheduling); phases stay O(1)-ish in n for the random scheduler while");
    println!("messages grow ≈ n² per phase.\n");
    csv.write_csv(&results_dir().join("x_async_scaling.csv"))
        .unwrap();

    // ---- Part B: delay-bound robustness ----
    println!("## B. delay-bound robustness (n = 11, f = 2, equivocator)\n");
    let mut md_b = MdTable::new([
        "max_delay",
        "decided/20",
        "mean_phases",
        "mean_virtual_time",
    ]);
    let mut csv_b = CsvTable::new(["max_delay", "decided", "mean_phases", "mean_virtual_time"]);
    let n = 11usize;
    let f = 2usize;
    let byz: BTreeSet<usize> = [3, 8].into_iter().collect();
    for &delay in &[1u64, 5, 20, 100, 500] {
        let mut decided = 0u32;
        let mut phase_sum = 0u64;
        let mut vt_sum = 0u64;
        for run in 0..20u64 {
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            let mut ledger = Ledger::new();
            let mut rng = DetRng::new(9000 + run);
            let report = run_ben_or(
                n,
                &inputs,
                &byz,
                f,
                ByzPlan::Equivocate(0, 1),
                delay,
                400,
                &mut ledger,
                &mut rng,
            );
            if report.all_decided {
                decided += 1;
            }
            phase_sum += report
                .decision_phases
                .values()
                .max()
                .copied()
                .unwrap_or(400);
            vt_sum += report.virtual_time;
        }
        md_b.row([
            delay.to_string(),
            decided.to_string(),
            format!("{:.1}", phase_sum as f64 / 20.0),
            format!("{:.0}", vt_sum as f64 / 20.0),
        ]);
        csv_b.row([
            delay.to_string(),
            decided.to_string(),
            format!("{:.3}", phase_sum as f64 / 20.0),
            format!("{:.1}", vt_sum as f64 / 20.0),
        ]);
    }
    println!("{}", md_b.render());
    println!("expectation: the decided count and phase count are flat in the delay bound");
    println!("(safety and phase-logic never read the clock); only virtual time stretches");
    println!("linearly with it. This is the property that lets the NOW maintenance layer");
    println!("swap its synchronous randNum transport for an asynchronous one without");
    println!("touching the drift analysis — the direction §6 points at.\n");
    csv_b
        .write_csv(&results_dir().join("x_async_delay.csv"))
        .unwrap();

    // ---- Part C: local vs common coin ----
    println!("## C. coin comparison (split inputs, equivocator, 30 runs/cell)\n");
    let mut md_c = MdTable::new(["n", "coin", "mean_phases", "p90_phases", "max_phases"]);
    let mut csv_c = CsvTable::new(["n", "coin", "mean_phases", "p90_phases", "max_phases"]);
    for &n in &[11usize, 21, 31] {
        let f = (n - 1) / 5;
        let byz: BTreeSet<usize> = (1..=f).collect();
        for (coin, label) in [
            (CoinMode::Local, "local (Ben-Or)"),
            (CoinMode::Common { seed: 0xBEAC0 }, "common (Rabin)"),
        ] {
            let mut phases: Vec<u64> = Vec::new();
            for run in 0..30u64 {
                let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
                let mut ledger = Ledger::new();
                let mut rng = DetRng::new(40_000 + run);
                let report = run_ben_or_with_coin(
                    n,
                    &inputs,
                    &byz,
                    f,
                    ByzPlan::Equivocate(0, 1),
                    coin,
                    20,
                    400,
                    &mut ledger,
                    &mut rng,
                );
                assert!(report.all_decided, "{label} n={n} run {run} stalled");
                phases.push(
                    report
                        .decision_phases
                        .values()
                        .max()
                        .copied()
                        .unwrap_or(400),
                );
            }
            phases.sort_unstable();
            let mean = phases.iter().sum::<u64>() as f64 / phases.len() as f64;
            let p90 = phases[phases.len() * 9 / 10];
            let max = *phases.last().unwrap();
            md_c.row([
                n.to_string(),
                label.to_string(),
                format!("{mean:.1}"),
                p90.to_string(),
                max.to_string(),
            ]);
            csv_c.row([
                n.to_string(),
                label.to_string(),
                format!("{mean:.3}"),
                p90.to_string(),
                max.to_string(),
            ]);
        }
    }
    println!("{}", md_c.render());
    println!("expectation: the common coin decides in one phase in every run (one shared");
    println!("flip aligns all honest nodes; expected ≤ 2 phases against any scheduler),");
    println!("while local coins need several phases with a heavy tail that grows with n —");
    println!("a split of private flips only heals when enough of them coincide. This is");
    println!("the measured version of the Ben-Or → Rabin upgrade an async-NOW would take.\n");
    csv_c
        .write_csv(&results_dir().join("x_async_coins.csv"))
        .unwrap();

    // ---- Part D: the substitution carried through — async randNum ----
    println!("## D. randNum rebuilt for asynchrony (commit-reveal + common subset)\n");
    let mut md_d = MdTable::new([
        "n",
        "f",
        "sync_msgs",
        "async_msgs",
        "ratio",
        "included",
        "agreed_runs/10",
    ]);
    let mut csv_d = CsvTable::new([
        "n",
        "f",
        "sync_msgs",
        "async_msgs",
        "ratio",
        "mean_included",
        "agreed_runs",
    ]);
    for &(n, f) in &[(6usize, 1usize), (11, 2), (16, 3)] {
        let byz: BTreeSet<usize> = (1..=f).collect();
        let mut sync_msgs = 0u64;
        let mut async_msgs = 0u64;
        let mut included_sum = 0usize;
        let mut agreed = 0u32;
        for run in 0..10u64 {
            let mut l_sync = Ledger::new();
            let mut rng = DetRng::new(60_000 + run);
            rand_num_commit_reveal(n, 1 << 20, &byz, ByzPlan::Silent, &mut l_sync, &mut rng);
            sync_msgs += l_sync.stats(now_net::CostKind::RandNum).total_messages;

            let mut l_async = Ledger::new();
            let mut rng = DetRng::new(61_000 + run);
            let out = rand_num_async(
                n,
                1 << 20,
                &byz,
                ByzPlan::Equivocate(0, 1),
                15,
                &mut l_async,
                &mut rng,
            );
            async_msgs += out.messages;
            included_sum += out.included.len();
            if out.unanimous().is_some() {
                agreed += 1;
            }
        }
        md_d.row([
            n.to_string(),
            f.to_string(),
            format!("{:.0}", sync_msgs as f64 / 10.0),
            format!("{:.0}", async_msgs as f64 / 10.0),
            format!("{:.1}", async_msgs as f64 / sync_msgs.max(1) as f64),
            format!("{:.1}", included_sum as f64 / 10.0),
            agreed.to_string(),
        ]);
        csv_d.row([
            n.to_string(),
            f.to_string(),
            format!("{:.1}", sync_msgs as f64 / 10.0),
            format!("{:.1}", async_msgs as f64 / 10.0),
            format!("{:.4}", async_msgs as f64 / sync_msgs.max(1) as f64),
            format!("{:.2}", included_sum as f64 / 10.0),
            agreed.to_string(),
        ]);
    }
    println!("{}", md_d.render());
    println!("expectation: the asynchronous randNum agrees in every run (the §6");
    println!("substitution is *possible*) at a constant-factor message overhead over the");
    println!("synchronous commit-reveal — the n inclusion instances each cost ~n² like");
    println!("the broadcast they replace. The included-set size stays ≥ n − f (every");
    println!("honest contribution survives), which is what keeps the output uniform.");
    csv_d
        .write_csv(&results_dir().join("x_async_randnum.csv"))
        .unwrap();
    println!("wrote results/x_async_{{scaling,delay,coins,randnum}}.csv");
}
