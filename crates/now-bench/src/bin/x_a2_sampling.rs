//! X-A2 — §6: uniform sampling at `polylog(n)` messages per sample.

use now_apps::sample_node;
use now_bench::{build_system, results_dir, slope};
use now_sim::baselines::naive_sampling_cost;
use now_sim::{CsvTable, MdTable};
use std::collections::BTreeMap;

fn main() {
    println!("# X-A2: sampling complexity and uniformity (§6)\n");
    let trials = 400u64;
    let mut md = MdTable::new([
        "n",
        "mean_msgs/sample",
        "naive_flood",
        "mean_rounds",
        "TV_to_uniform",
        "noise_floor",
    ]);
    let mut csv = CsvTable::new([
        "n",
        "mean_msgs",
        "naive_flood",
        "mean_rounds",
        "tv_uniform",
        "noise_floor",
    ]);
    let mut ns = Vec::new();
    let mut costs = Vec::new();

    for (i, clusters) in [8usize, 16, 32, 64].into_iter().enumerate() {
        let mut sys = build_system(1 << 12, 2, clusters, 0.10, 700 + i as u64);
        let n = sys.population();
        let origin = sys.cluster_ids()[0];
        let mut msgs = 0u64;
        let mut rounds = 0u64;
        let mut counts: BTreeMap<now_net::NodeId, u64> = BTreeMap::new();
        for _ in 0..trials {
            let s = sample_node(&mut sys, origin);
            msgs += s.messages;
            rounds += s.rounds;
            *counts.entry(s.node).or_default() += 1;
        }
        let mut tv = 0.0;
        for node in sys.node_ids() {
            let got = *counts.get(&node).unwrap_or(&0) as f64 / trials as f64;
            tv += (got - 1.0 / n as f64).abs();
        }
        tv /= 2.0;
        let mean = msgs as f64 / trials as f64;
        ns.push((n as f64).ln());
        costs.push(mean.ln());
        // An ideal uniform sampler measured with `trials` draws over n
        // atoms still shows TV ≈ sqrt(n/(2π·trials)) — the noise floor.
        let floor = (n as f64 / (2.0 * std::f64::consts::PI * trials as f64)).sqrt();
        md.row([
            n.to_string(),
            format!("{mean:.0}"),
            naive_sampling_cost(n).to_string(),
            format!("{:.1}", rounds as f64 / trials as f64),
            format!("{tv:.3}"),
            format!("{floor:.3}"),
        ]);
        csv.row([
            n.to_string(),
            format!("{mean:.2}"),
            naive_sampling_cost(n).to_string(),
            format!("{:.3}", rounds as f64 / trials as f64),
            format!("{tv:.6}"),
            format!("{floor:.6}"),
        ]);
    }

    let exponent = slope(&ns, &costs);
    println!("{}", md.render());
    println!("fitted cost exponent: msgs/sample ≈ n^{exponent:.2} (naive flood is n^1.00)");
    println!("expectation: sub-linear exponent (the growth is the walk length log²m and");
    println!("overlay-degree saturation, not n itself); TV tracking the noise_floor column");
    println!("is the uniformity verdict — an ideal sampler cannot do better at this trial");
    println!("count.");
    csv.write_csv(&results_dir().join("x_a2_sampling.csv"))
        .unwrap();
    println!("wrote results/x_a2_sampling.csv");
}
