//! X-ABL-EX — shuffle-volume ablation.
//!
//! The protocol's `exchange` re-samples **all** members of the affected
//! cluster (Lemma 1 needs the full refresh to reset the composition to
//! a τ-Bernoulli sample); Lemmas 2–3 then bound the drift while only
//! `O(log N)` nodes turn over between refreshes. This ablation caps the
//! per-invocation shuffle volume and charts the trade-off the two
//! regimes span:
//!
//! * cost per join/leave falls roughly linearly in the cap, but
//! * the worst-cluster Byzantine fraction drifts upward as the refresh
//!   weakens, collapsing to the no-shuffle baseline (the §3.3 victim)
//!   at cap 0.
//!
//! The adversary is the §3.3 join–leave attacker — the strategy the
//! shuffling exists to defeat.

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_sim::{run, CsvTable, MdTable, RunConfig, ViolationKind};

fn main() {
    println!("# X-ABL-EX: exchange volume ablation (Lemmas 1-3 trade-off)\n");
    let capacity = 1u64 << 12;
    let k = 4usize;
    let steps = 600u64;
    let tau = 0.20;
    let mut md = MdTable::new([
        "cap",
        "join_msgs",
        "leave_msgs",
        "peak_frac",
        "randnum_compromised_steps",
        "captured_steps",
    ]);
    let mut csv = CsvTable::new([
        "cap",
        "join_msgs",
        "leave_msgs",
        "peak_frac",
        "randnum_compromised_steps",
        "captured_steps",
    ]);

    // cap = usize::MAX encodes "no cap" (full exchange, the protocol).
    for &cap in &[0usize, 1, 2, 4, 8, 16, usize::MAX] {
        let params = NowParams::new(capacity, k, 1.5, 0.30, 0.05)
            .unwrap()
            .with_shuffle(cap > 0)
            .with_exchange_cap((cap > 0 && cap != usize::MAX).then_some(cap));
        let n0 = 10 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, tau, 31_000 + cap as u64 % 997);
        let target = sys.cluster_ids()[0];
        let mut adv = now_adversary::JoinLeaveAttack::new(target, tau);
        let report = run(
            &mut sys,
            &mut adv,
            RunConfig {
                steps,
                audit_every: 1,
                seed: 13,
            },
        );
        let join_msgs = sys.ledger().stats(now_net::CostKind::Join).mean_messages();
        let leave_msgs = sys.ledger().stats(now_net::CostKind::Leave).mean_messages();
        let compromised = report.count(ViolationKind::RandNumCompromised);
        let captured = report.count(ViolationKind::Forgeable);
        let label = if cap == usize::MAX {
            "all".to_string()
        } else {
            cap.to_string()
        };
        md.row([
            label.clone(),
            format!("{join_msgs:.0}"),
            format!("{leave_msgs:.0}"),
            format!("{:.3}", report.peak_byz_fraction),
            compromised.to_string(),
            captured.to_string(),
        ]);
        csv.row([
            label,
            format!("{join_msgs:.3}"),
            format!("{leave_msgs:.3}"),
            format!("{:.6}", report.peak_byz_fraction),
            compromised.to_string(),
            captured.to_string(),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("expectation: cap 0 (no shuffle) is the §3.3 victim — the attacker saturates");
    println!("its target (peak_frac well past 1/2, captured_steps > 0). The defense then");
    println!("turns out to be nearly *binary*: even cap 1 (one uniform replacement per");
    println!("operation) already denies capture outright, and further volume only trims");
    println!("the transient 1/3-threshold excursions (randnum_compromised_steps) while the");
    println!("per-operation cost grows linearly in the cap (~20x from cap 1 to 'all').");
    println!("What the full exchange uniquely buys is Lemma 1's one-shot reset — the");
    println!("composition returns to Binomial(|C|, τ) within a single operation — which is");
    println!("the step Theorem 3's alternating-subsequence argument leans on after a");
    println!("leave's non-uniform spillover; the capped variants only guarantee the slower");
    println!("Lemma 2-3 drift recovery.");
    csv.write_csv(&results_dir().join("x_abl_exchange.csv"))
        .unwrap();
    println!("wrote results/x_abl_exchange.csv");
}
