//! X-TRACE — the deterministic flight recorder and metrics registry,
//! end to end.
//!
//! Usage: `x_trace [--threads N] [--out-dir <dir>]`
//!
//! Replays a fixed mixed workload — threaded balanced churn, a
//! split-forcing burst on the scheduled engine, then lossy event-driven
//! churn — on one system with both observability sinks armed, and
//! writes three artifacts:
//!
//! * `x_trace.trace.json` — the flight recorder's retained ring
//!   (canonical op order) plus the violation dump, if any,
//! * `x_trace.metrics.json` — the metrics registry in canonical
//!   sorted-key JSON,
//! * `x_trace.metrics.prom` — the same registry in Prometheus text
//!   exposition format.
//!
//! All three artifacts contain only deterministic outcome fields — no
//! wall-clock, no thread counts — so CI's `trace-smoke` job byte-diffs
//! `--threads 1` against `--threads 4` and greps the artifacts for
//! banned run-environment vocabulary. Advisory wall-clock totals from
//! the opt-in phase profiler go to **stderr only**, never into an
//! artifact.

use now_adversary::BatchSplitForcing;
use now_bench::results_dir;
use now_core::{wave_plan_nanos_total, NowParams, NowSystem, WavePool};
use now_net::EventNetConfig;
use now_sim::{BatchExec, BatchRandomChurn, BatchRun};
use std::path::PathBuf;
use std::process::ExitCode;

const SEED: u64 = 0x7ACE;
const RING: usize = 1024;

struct Args {
    threads: usize,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut threads = 1usize;
    let mut out_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .ok_or("--threads takes a positive integer")?;
            }
            "--out-dir" => {
                out_dir = Some(PathBuf::from(
                    argv.next().ok_or("--out-dir takes a directory path")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { threads, out_dir })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("x_trace: {msg}");
            return ExitCode::from(2);
        }
    };

    let pool = WavePool::new(args.threads);
    let params = NowParams::for_capacity(1 << 10).expect("params");
    let mut sys = NowSystem::init_fast(params, 220, 0.10, SEED);
    sys.enable_tracing(RING);
    sys.enable_metrics();

    // Segment 1: balanced churn on the threaded wave engine.
    let mut churn = BatchRandomChurn::balanced(6, 0.10);
    BatchRun::new()
        .exec(BatchExec::Threaded(args.threads))
        .in_pool(&pool)
        .run(&mut sys, &mut churn, 12, SEED ^ 1);

    // Segment 2: split-forcing burst on the scheduled engine.
    let mut split = BatchSplitForcing::new(5, 0.10);
    BatchRun::new()
        .exec(BatchExec::Scheduled)
        .run(&mut sys, &mut split, 8, SEED ^ 2);

    // Segment 3: lossy event-driven churn (exercises the network
    // events: send / deliver / drop).
    let mut storm = BatchRandomChurn::balanced(6, 0.10);
    BatchRun::new()
        .exec(BatchExec::Event(
            EventNetConfig::ideal().with_latency(2).with_drop(0.25),
        ))
        .in_pool(&pool)
        .run(&mut sys, &mut storm, 10, SEED ^ 3);

    if let Err(e) = sys.check_consistency() {
        eprintln!("x_trace: post-run consistency check failed: {e}");
        return ExitCode::from(2);
    }

    let rec = sys.flight_recorder().expect("tracing was enabled");
    let metrics = sys.metrics().expect("metrics were enabled");
    let dir = args.out_dir.unwrap_or_else(results_dir);
    let artifacts = [
        (dir.join("x_trace.trace.json"), rec.to_json()),
        (dir.join("x_trace.metrics.json"), metrics.to_json()),
        (dir.join("x_trace.metrics.prom"), metrics.to_prometheus()),
    ];
    for (path, content) in &artifacts {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("x_trace: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    println!(
        "recorded {} events ({} retained, {} evicted), {} sent / {} delivered / {} dropped",
        rec.recorded(),
        rec.len(),
        rec.evicted(),
        metrics.counter("now_net_sent_total"),
        metrics.counter("now_net_delivered_total"),
        metrics.counter("now_net_dropped_total"),
    );
    // Advisory profiling only — never part of any artifact.
    eprintln!(
        "advisory: wave planning spent {} ns of wall-clock (profiler; varies run to run)",
        wave_plan_nanos_total()
    );
    ExitCode::SUCCESS
}
