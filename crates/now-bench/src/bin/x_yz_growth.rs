//! X-YZ — the generalized population band `N^{1/y} ≤ n ≤ N^z`.
//!
//! §2: the headline band `√N ≤ n ≤ N` "can be relaxed to
//! N^{1/y} ≤ n ≤ N^z for all constants y, z > 1". We sweep (y, z)
//! configurations, walk the population from near the widened floor up
//! to the widened ceiling and back (plateau style, as in X-POLY), and
//! verify that
//!
//! * the invariants hold throughout (Theorem 3 does not care where in
//!   the band the population sits — including bands whose ceiling
//!   exceeds N itself), and
//! * per-operation cost stays polylog in N: cluster count scales with
//!   n, but cluster size, walk length, and overlay degree stay tied to
//!   log N.

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_net::CostKind;
use now_sim::{run, CsvTable, GrowthPhase, MdTable, RunConfig, ShrinkPhase};

fn main() {
    println!("# X-YZ: generalized polynomial band N^(1/y) <= n <= N^z (§2)\n");
    let k = 3usize;
    let tau = 0.10;
    let mut md = MdTable::new([
        "N",
        "y",
        "z",
        "floor",
        "ceiling",
        "peak_n",
        "join_msgs@peak",
        "worst_frac",
        "band_ok",
        "violations",
    ]);
    let mut csv = CsvTable::new([
        "N",
        "y",
        "z",
        "floor",
        "ceiling",
        "peak_n",
        "join_msgs_at_peak",
        "worst_frac",
        "band_ok",
        "violations",
    ]);

    // Wider bands run at smaller N so total work stays laptop-scale;
    // what matters is the *relative* band width each row exercises.
    for &(capacity, y, z) in &[
        (1u64 << 10, 2.0f64, 1.0f64), // the paper's headline band
        (1 << 10, 3.0, 1.0),          // deeper floor
        (1 << 10, 2.0, 1.2),          // ceiling past N: 1024^1.2 = 4096
        (1 << 8, 3.0, 1.25),          // both relaxed
        (1 << 8, 4.0, 1.3),           // widest: 256^[1/4 .. 1.3] ≈ [4, 1351]
    ] {
        let params = NowParams::new(capacity, k, 1.5, 0.30, 0.05)
            .unwrap()
            .with_population_exponents(y, z)
            .unwrap();
        let floor = params.min_population();
        let ceiling = params.max_population();
        // Protocol needs at least ~2 clusters; start just above that.
        let start = (2 * params.target_cluster_size() as u64).max(floor);
        let mut sys = NowSystem::init_fast(params, start as usize, tau, 5 + y as u64);

        let mut violations = 0usize;
        let mut worst = 0.0f64;
        let mut band_ok = true;
        let mut peak_n = 0u64;
        let mut join_at_peak = 0.0f64;

        // floor-ish → ceiling → floor-ish, measuring at each plateau.
        let up = [start + (ceiling - start) / 2, ceiling];
        let down = [start + (ceiling - start) / 2, start];
        for (i, &target) in up.iter().chain(down.iter()).enumerate() {
            let pop = sys.population();
            let report = if target > pop {
                let mut grow = GrowthPhase::new(target, tau);
                run(
                    &mut sys,
                    &mut grow,
                    RunConfig {
                        steps: (target - pop) + 2,
                        audit_every: 16,
                        seed: 70 + i as u64,
                    },
                )
            } else {
                let mut shrink = ShrinkPhase::new(target);
                run(
                    &mut sys,
                    &mut shrink,
                    RunConfig {
                        steps: (pop - target) + 2,
                        audit_every: 16,
                        seed: 70 + i as u64,
                    },
                )
            };
            violations += report.binding_violations(now_core::SecurityMode::Plain);
            worst = worst.max(report.peak_byz_fraction);
            band_ok &= report.final_audit.size_bounds_ok;
            if sys.population() >= peak_n {
                peak_n = sys.population();
                let before = sys.ledger().stats(CostKind::Join);
                for j in 0..8 {
                    sys.join(j == 7);
                }
                let after = sys.ledger().stats(CostKind::Join);
                join_at_peak = (after.total_messages - before.total_messages) as f64
                    / (after.count - before.count) as f64;
                // Return to the plateau.
                for _ in 0..8 {
                    let node = sys.node_ids()[0];
                    let _ = sys.leave(node);
                }
            }
        }

        md.row([
            capacity.to_string(),
            format!("{y:.0}"),
            format!("{z:.2}"),
            floor.to_string(),
            ceiling.to_string(),
            peak_n.to_string(),
            format!("{join_at_peak:.0}"),
            format!("{worst:.3}"),
            band_ok.to_string(),
            violations.to_string(),
        ]);
        csv.row([
            capacity.to_string(),
            format!("{y:.3}"),
            format!("{z:.3}"),
            floor.to_string(),
            ceiling.to_string(),
            peak_n.to_string(),
            format!("{join_at_peak:.3}"),
            format!("{worst:.6}"),
            band_ok.to_string(),
            violations.to_string(),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("expectation: every row reaches its configured ceiling (peak_n = ceiling + ε),");
    println!("including bands with z > 1 whose peak exceeds N itself; join cost at the peak");
    println!("tracks log of the *population* (compare rows at the same N), not its absolute");
    println!("size — the polylog claim across the widened band; band_ok holds and binding");
    println!("violations stay at the τ = 0.10 noise floor in every configuration.");
    csv.write_csv(&results_dir().join("x_yz_growth.csv"))
        .unwrap();
    println!("wrote results/x_yz_growth.csv");
}
