//! X-L23 — Lemmas 2–3: the drift band between full exchanges.
//!
//! Claim (Lemma 2): a cluster below `τ(1+ε/2)` stays below `τ(1+ε)`
//! whp across `O(logN)` member exchanges. Claim (Lemma 3): a cluster
//! between `τ(1+ε/2)` and `τ(1+ε)` drops below `τ(1+ε/2)` within
//! `O(logN)` exchanges. We track one cluster's Byzantine fraction over
//! a long churn run and measure band behavior per k.

use now_adversary::{Action, Adversary, RandomChurn};
use now_bench::{build_system, results_dir};
use now_net::DetRng;
use now_sim::{CsvTable, MdTable};

fn main() {
    println!("# X-L23: composition drift between exchanges (Lemmas 2–3)\n");
    let tau = 0.15;
    let eps = 0.5; // generous band so both levels are observable
    let low = tau * (1.0 + eps / 2.0);
    let high = tau * (1.0 + eps);
    let steps = 1200u64;
    println!("bands: τ = {tau}, τ(1+ε/2) = {low:.3}, τ(1+ε) = {high:.3}\n");

    let mut md = MdTable::new([
        "k",
        "cluster",
        "mean_frac",
        "peak_frac",
        "excursions>τ(1+ε/2)",
        "mean_recovery_steps",
        "steps>τ(1+ε)",
    ]);
    let mut csv = CsvTable::new([
        "k",
        "cluster_size",
        "mean_frac",
        "peak_frac",
        "excursions",
        "mean_recovery_steps",
        "steps_above_high",
    ]);

    for k in [2usize, 4, 6] {
        let mut sys = build_system(1 << 12, k, 10, tau, 3000 + k as u64);
        let watched = sys.cluster_ids()[0];
        let mut churn = RandomChurn::balanced(tau);
        let mut rng = DetRng::new(31 + k as u64);

        let mut sum = 0.0;
        let mut samples = 0u64;
        let mut peak = 0.0f64;
        let mut above_low_since: Option<u64> = None;
        let mut excursions = 0u64;
        let mut recovery_total = 0u64;
        let mut above_high_steps = 0u64;

        for step in 0..steps {
            match churn.decide(&sys, &mut rng) {
                Action::Join { honest, .. } => {
                    sys.join(honest);
                }
                Action::Leave { node } => {
                    let _ = sys.leave(node);
                }
                Action::Idle => {}
            }
            let Some(cluster) = sys.cluster(watched) else {
                break; // merged away; the trace ends here
            };
            let frac = cluster.byz_fraction();
            sum += frac;
            samples += 1;
            peak = peak.max(frac);
            if frac > high {
                above_high_steps += 1;
            }
            match (frac > low, above_low_since) {
                (true, None) => above_low_since = Some(step),
                (false, Some(start)) => {
                    excursions += 1;
                    recovery_total += step - start;
                    above_low_since = None;
                }
                _ => {}
            }
        }
        let mean_recovery = if excursions > 0 {
            recovery_total as f64 / excursions as f64
        } else {
            0.0
        };
        let cluster_size = sys
            .cluster(watched)
            .map(|c| c.size())
            .unwrap_or(sys.params().target_cluster_size());
        md.row([
            k.to_string(),
            cluster_size.to_string(),
            format!("{:.3}", sum / samples.max(1) as f64),
            format!("{peak:.3}"),
            excursions.to_string(),
            format!("{mean_recovery:.1}"),
            above_high_steps.to_string(),
        ]);
        csv.row([
            k.to_string(),
            cluster_size.to_string(),
            format!("{:.6}", sum / samples.max(1) as f64),
            format!("{peak:.6}"),
            excursions.to_string(),
            format!("{mean_recovery:.3}"),
            above_high_steps.to_string(),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("expectation (Lemma 3): excursions above τ(1+ε/2) recover within O(logN) steps;");
    println!("expectation (Lemma 2): time spent above τ(1+ε) shrinks rapidly with k.");
    csv.write_csv(&results_dir().join("x_l23_drift.csv"))
        .unwrap();
    println!("wrote results/x_l23_drift.csv");
}
