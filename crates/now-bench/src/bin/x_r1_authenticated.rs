//! X-R1 — Remark 1: cryptographic hardening to τ < 1/2.
//!
//! Claim: *"One can tolerate a fraction of Byzantine nodes up to
//! 1/2 − ε, but then we need to use cryptographic tools to allow for
//! broadcast and Byzantine agreement."*
//!
//! We run identical churn at τ ∈ {0.25, 0.35, 0.40, 0.45} under
//! authenticated parameters (the only mode in which τ ≥ 1/3 is even
//! constructible) and audit **both** targets at every step:
//!
//! * the plain-model target (> 2/3 honest per cluster) — expected to
//!   fail pervasively once τ > 1/3 (the mean composition already sits
//!   past the threshold), and
//! * Remark 1's target (honest strict majority) — expected to hold
//!   except for binomial-tail excursions that shrink with k (Lemma 1's
//!   k-dependence, unchanged by the mode).

use now_adversary::RandomChurn;
use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_sim::{run, CsvTable, MdTable, RunConfig, ViolationKind};

fn main() {
    println!("# X-R1: crypto-hardened tolerance (Remark 1)\n");
    let steps = 600u64;
    let capacity = 1u64 << 12;
    let mut md = MdTable::new([
        "tau",
        "k",
        "plain_fail_rate",
        "majority_fail_rate",
        "peak_frac",
        "forgeable_steps",
    ]);
    let mut csv = CsvTable::new([
        "tau",
        "k",
        "plain_fail_rate",
        "majority_fail_rate",
        "peak_frac",
        "forgeable_steps",
    ]);

    for &tau in &[0.25f64, 0.35, 0.40, 0.45] {
        for &k in &[4usize, 8, 16] {
            let params = NowParams::new_authenticated(capacity, k, 1.5, tau, 0.05)
                .expect("authenticated params valid below 1/2");
            let n0 = 10 * params.target_cluster_size();
            let mut sys = NowSystem::init_fast(params, n0, tau, 7000 + k as u64);
            let mut churn = RandomChurn::balanced(tau);
            let report = run(
                &mut sys,
                &mut churn,
                RunConfig {
                    steps,
                    audit_every: 1,
                    seed: 77,
                },
            );
            let plain_rate = report.count(ViolationKind::NotTwoThirdsHonest) as f64 / steps as f64;
            let majority_rate =
                report.count(ViolationKind::NotMajorityHonest) as f64 / steps as f64;
            let forgeable = report.count(ViolationKind::Forgeable);
            md.row([
                format!("{tau:.2}"),
                k.to_string(),
                format!("{plain_rate:.3}"),
                format!("{majority_rate:.3}"),
                format!("{:.3}", report.peak_byz_fraction),
                forgeable.to_string(),
            ]);
            csv.row([
                format!("{tau:.6}"),
                k.to_string(),
                format!("{plain_rate:.6}"),
                format!("{majority_rate:.6}"),
                format!("{:.6}", report.peak_byz_fraction),
                forgeable.to_string(),
            ]);
            sys.check_consistency().unwrap();
        }
    }

    println!("{}", md.render());
    println!("expectation: at τ = 0.25 both targets hold (plain-regime sanity). Past 1/3 the");
    println!("plain 2/3-honest target fails at nearly every step — no k rescues a mean");
    println!("composition beyond the threshold — while the majority target's failure rate");
    println!("decays with k (Chernoff margin (1/2 − τ)·√(k·logN)) and collapses toward 0 for");
    println!("τ ≤ 0.40, k = 16. τ = 0.45 shows the thin-margin limit Remark 1's ε guards:");
    println!("larger k (beyond laptop scale) is needed for strict containment there.");
    csv.write_csv(&results_dir().join("x_r1_authenticated.csv"))
        .unwrap();
    println!("wrote results/x_r1_authenticated.csv");
}
