//! X-FLAT — deterministic per-op timings for the flat-memory hot core.
//!
//! Measures the structures the wave planner hammers — registry
//! attach/detach/move, cluster membership, overlay add/remove and
//! neighbor iteration, and the planning share of a batched step's wall
//! clock — at the 64/512/4096-cluster sweep points. The workload is
//! fully seeded, so before/after runs compare like for like; only the
//! nanoseconds move. Output is a JSON metric map suitable for pasting
//! into `BENCH_flat_core.json` as one of its `before`/`after` columns.
//!
//! Modes:
//! * (default) — full iteration counts, JSON to stdout.
//! * `--smoke` — reduced counts for CI; same metric keys.
//! * `--check <path>` — validate a committed `BENCH_flat_core.json`:
//!   parses the JSON and requires `before`/`after` columns carrying
//!   every metric this harness emits. Exits non-zero when missing or
//!   malformed.

use now_core::{BatchInput, Cluster, ExecConfig, NowParams, NowSystem, Registry};
use now_net::{ClusterId, DetRng, NodeId};
use now_over::{OverParams, Overlay};
use std::collections::BTreeMap;
use std::time::Instant;

/// The cluster-count sweep points from the issue's acceptance criteria.
const SWEEP: [usize; 3] = [64, 512, 4096];

/// Metrics that carry one value per sweep point.
const SWEPT_METRICS: [&str; 8] = [
    "registry_attach",
    "registry_move",
    "registry_detach",
    "registry_node_ids",
    "overlay_add",
    "overlay_remove",
    "overlay_neighbors_iter",
    "step_wall_per_op",
];

/// Scalar metrics (single value, not swept).
const SCALAR_METRICS: [&str; 4] = [
    "cluster_insert",
    "cluster_contains",
    "cluster_member_at",
    "plan_share_percent",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_flat_core.json");
        match check_snapshot(path) {
            Ok(()) => {
                println!("{path}: ok");
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    let mut out: BTreeMap<String, String> = BTreeMap::new();

    for &clusters in &SWEEP {
        let nodes_per = if smoke { 4 } else { 16 };
        let (attach, mv, detach, node_ids) = bench_registry(clusters, nodes_per, reps);
        out.insert(key("registry_attach", clusters), fmt_ns(attach));
        out.insert(key("registry_move", clusters), fmt_ns(mv));
        out.insert(key("registry_detach", clusters), fmt_ns(detach));
        out.insert(key("registry_node_ids", clusters), fmt_ns(node_ids));

        let (add, remove, nbrs) = bench_overlay(clusters, reps, smoke);
        out.insert(key("overlay_add", clusters), fmt_ns(add));
        out.insert(key("overlay_remove", clusters), fmt_ns(remove));
        out.insert(key("overlay_neighbors_iter", clusters), fmt_ns(nbrs));
    }

    let (insert, contains, member_at) = bench_cluster(if smoke { 64 } else { 256 }, reps);
    out.insert("cluster_insert".into(), fmt_ns(insert));
    out.insert("cluster_contains".into(), fmt_ns(contains));
    out.insert("cluster_member_at".into(), fmt_ns(member_at));

    let mut plan_share_max = 0.0f64;
    for &clusters in &SWEEP {
        let (per_op, share) = bench_step(clusters, smoke);
        out.insert(key("step_wall_per_op", clusters), fmt_ns(per_op));
        plan_share_max = plan_share_max.max(share);
    }
    out.insert(
        "plan_share_percent".into(),
        format!("{:.1}", plan_share_max * 100.0),
    );

    println!("{{");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"unit\": \"ns_per_op\",");
    let last = out.len() - 1;
    for (i, (k, v)) in out.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        println!("  \"{k}\": {v}{comma}");
    }
    println!("}}");
}

fn key(metric: &str, clusters: usize) -> String {
    format!("{metric}_c{clusters}")
}

fn fmt_ns(ns: f64) -> String {
    format!("{ns:.1}")
}

/// Per-op attach/move/detach/node_ids cost over `clusters` clusters
/// populated round-robin with `clusters * nodes_per` nodes.
fn bench_registry(clusters: usize, nodes_per: usize, reps: usize) -> (f64, f64, f64, f64) {
    let ids: Vec<ClusterId> = (0..clusters as u64).map(ClusterId::from_raw).collect();
    let n = clusters * nodes_per;
    let nodes: Vec<NodeId> = (0..n as u64).map(NodeId::from_raw).collect();
    let (mut attach, mut mv, mut detach, mut node_ids) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let mut reg = Registry::new();
        for &c in &ids {
            reg.create_cluster(c);
        }
        let t = Instant::now();
        for (i, &node) in nodes.iter().enumerate() {
            reg.attach(node, i % 7 != 0, ids[i % clusters]);
        }
        attach = attach.min(per_op(t, n));

        let t = Instant::now();
        for (i, &node) in nodes.iter().enumerate() {
            reg.move_to(node, ids[(i + 1) % clusters]);
        }
        mv = mv.min(per_op(t, n));

        let t = Instant::now();
        let listed = reg.node_ids();
        node_ids = node_ids.min(per_op(t, n));
        assert_eq!(listed.len(), n);

        let t = Instant::now();
        for &node in &nodes {
            reg.detach(node);
        }
        detach = detach.min(per_op(t, n));
        assert!(reg.is_empty());
    }
    (attach, mv, detach, node_ids)
}

/// Per-op insert/contains/member_at cost on one cluster of `size`.
fn bench_cluster(size: usize, reps: usize) -> (f64, f64, f64) {
    let nodes: Vec<NodeId> = (0..size as u64).map(NodeId::from_raw).collect();
    let iters = size * 64;
    let (mut insert, mut contains, mut member_at) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let mut cl = Cluster::new(ClusterId::from_raw(0));
        let t = Instant::now();
        for (i, &node) in nodes.iter().enumerate() {
            cl.insert(node, i % 5 != 0);
        }
        insert = insert.min(per_op(t, size));

        let mut hits = 0usize;
        let t = Instant::now();
        for i in 0..iters {
            if cl.contains(nodes[(i * 17) % size]) {
                hits += 1;
            }
        }
        contains = contains.min(per_op(t, iters));
        assert_eq!(hits, iters);

        let mut acc = 0u64;
        let t = Instant::now();
        for i in 0..iters {
            acc = acc.wrapping_add(cl.member_at((i * 13) % size).raw());
        }
        member_at = member_at.min(per_op(t, iters));
        assert!(acc > 0);
    }
    (insert, contains, member_at)
}

/// Per-op overlay vertex add/remove churn plus per-neighbor iteration
/// cost over a seeded random overlay of `clusters` vertices.
fn bench_overlay(clusters: usize, reps: usize, smoke: bool) -> (f64, f64, f64) {
    let params = OverParams::for_capacity(1 << 10);
    let ids: Vec<ClusterId> = (0..clusters as u64).map(ClusterId::from_raw).collect();
    let churn = if smoke { 32 } else { 256 };
    let scans = if smoke { 4 } else { 32 };
    let (mut add, mut remove, mut nbrs) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let mut rng = DetRng::new(90 + rep as u64);
        let mut overlay = Overlay::init_random(&ids, params, &mut rng);

        let fresh: Vec<ClusterId> = (0..churn as u64)
            .map(|i| ClusterId::from_raw(1_000_000 + i))
            .collect();
        let t = Instant::now();
        for &c in &fresh {
            overlay.add_uniform(c, &mut rng);
        }
        add = add.min(per_op(t, churn));

        let t = Instant::now();
        for &c in &fresh {
            overlay.remove(c, &mut rng);
        }
        remove = remove.min(per_op(t, churn));

        let mut visited = 0usize;
        let mut acc = 0u64;
        let t = Instant::now();
        for _ in 0..scans {
            for &c in &ids {
                for n in overlay.neighbors(c) {
                    acc = acc.wrapping_add(n.raw());
                    visited += 1;
                }
            }
        }
        nbrs = nbrs.min(per_op(t, visited.max(1)));
        assert!(acc > 0);
    }
    (add, remove, nbrs)
}

/// Wall clock per batched operation and the planning phase's share of
/// it, on a system sized to roughly `clusters` clusters.
fn bench_step(clusters: usize, smoke: bool) -> (f64, f64) {
    let params = NowParams::for_capacity(1 << 10).unwrap();
    let n0 = clusters * params.target_cluster_size();
    let mut sys = NowSystem::init_fast(params, n0, 0.1, 7 + clusters as u64);
    let steps = if smoke { 2 } else { 6 };
    let width = (clusters / 4).clamp(8, 64);
    let joins: Vec<bool> = (0..width).map(|i| i % 5 != 0).collect();
    let mut ops = 0usize;
    let plan0 = now_core::wave_plan_nanos_total();
    let t = Instant::now();
    for step in 0..steps {
        let leaves: Vec<NodeId> = sys
            .node_ids()
            .into_iter()
            .step_by(17 + step)
            .take(width)
            .collect();
        ops += joins.len() + leaves.len();
        sys.step_batch(
            &BatchInput::from_flags(&joins, &leaves),
            &ExecConfig::threaded(1),
        );
    }
    let wall = t.elapsed().as_nanos() as u64;
    let plan = now_core::wave_plan_nanos_total() - plan0;
    let share = if wall == 0 {
        0.0
    } else {
        plan as f64 / wall as f64
    };
    (wall as f64 / ops.max(1) as f64, share)
}

fn per_op(start: Instant, ops: usize) -> f64 {
    start.elapsed().as_nanos() as f64 / ops.max(1) as f64
}

// -------------------------------------------------------------------
// Snapshot validation (`--check`): a minimal JSON reader sufficient
// for the snapshot's shape — objects, strings, and numbers.
// -------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

fn check_snapshot(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse_json(&text)?;
    let Json::Object(top) = doc else {
        return Err("top level is not an object".into());
    };
    for column in ["before", "after"] {
        let Some(Json::Object(col)) = top.get(column) else {
            return Err(format!("missing \"{column}\" column"));
        };
        for metric in SWEPT_METRICS {
            for clusters in SWEEP {
                let k = key(metric, clusters);
                match col.get(&k) {
                    Some(Json::Number(n)) if n.is_finite() && *n >= 0.0 => {}
                    Some(_) => return Err(format!("{column}.{k} is not a finite number")),
                    None => return Err(format!("missing {column}.{k}")),
                }
            }
        }
        for metric in SCALAR_METRICS {
            match col.get(metric) {
                Some(Json::Number(n)) if n.is_finite() && *n >= 0.0 => {}
                Some(_) => return Err(format!("{column}.{metric} is not a finite number")),
                None => return Err(format!("missing {column}.{metric}")),
            }
        }
    }
    Ok(())
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::String(k) = parse_value(bytes, pos)? else {
                    return Err(format!("object key is not a string at byte {pos}"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let v = parse_value(bytes, pos)?;
                map.insert(k, v);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos] != b'"' {
                if bytes[*pos] == b'\\' {
                    return Err(format!("escapes unsupported at byte {pos}"));
                }
                *pos += 1;
            }
            if *pos >= bytes.len() {
                return Err("unterminated string".into());
            }
            let s = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid utf-8 in string".to_string())?
                .to_string();
            *pos += 1;
            Ok(Json::String(s))
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
            s.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("bad number {s:?} at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}
