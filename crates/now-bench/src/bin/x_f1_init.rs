//! X-F1 — Figure 1 (initialization phase).
//!
//! Claim: discovery floods `O(n·e)` message units within the honest
//! diameter; clusterization is the dominant super-linear term (the
//! substituted committee election is accounted at `Õ(n^1.5)`).
//! We run the genuinely executed L0 path (`now_core::init`) and compare
//! the measured discovery cost against the `n·e` envelope.

use now_bench::results_dir;
use now_core::init::{clusterize, discover};
use now_core::NowParams;
use now_graph::gen;
use now_graph::traversal::diameter;
use now_net::{CostKind, DetRng, Ledger};
use now_sim::{CsvTable, MdTable};
use std::collections::BTreeSet;

fn main() {
    println!("# X-F1: initialization phase (Figure 1)\n");
    let mut md = MdTable::new([
        "n",
        "e",
        "disc_msgs",
        "2*n*e",
        "ratio",
        "disc_rounds",
        "diameter",
        "clus_msgs",
    ]);
    let mut csv = CsvTable::new([
        "n",
        "e",
        "disc_msgs",
        "two_n_e",
        "ratio",
        "disc_rounds",
        "diameter",
        "clus_msgs",
    ]);

    for (i, n) in [64usize, 128, 256, 512].into_iter().enumerate() {
        let mut rng = DetRng::new(100 + i as u64);
        // Bootstrap graph dense enough to stay connected with byz cuts.
        let p = (4.0 * (n as f64).log2() / n as f64).min(0.5);
        let g = gen::erdos_renyi(n, p, &mut rng);
        let byz: BTreeSet<usize> = (0..n / 5).collect(); // 20% silent
        let mut ledger = Ledger::new();
        let out = discover(&g, &byz, &mut ledger);
        assert!(out.complete, "discovery must complete at this density");
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let _cl = clusterize(n, &byz, params.target_cluster_size(), &mut ledger, &mut rng);
        let clus = ledger.stats(CostKind::Clusterization);
        let e = g.edge_count() as u64;
        let envelope = 2 * n as u64 * e; // each id crosses each edge at most once per direction
        let dia = diameter(&g).unwrap_or(0);
        md.row([
            n.to_string(),
            e.to_string(),
            out.message_units.to_string(),
            envelope.to_string(),
            format!("{:.3}", out.message_units as f64 / envelope as f64),
            out.rounds.to_string(),
            dia.to_string(),
            clus.total_messages.to_string(),
        ]);
        csv.row([
            n.to_string(),
            e.to_string(),
            out.message_units.to_string(),
            envelope.to_string(),
            format!("{:.6}", out.message_units as f64 / envelope as f64),
            out.rounds.to_string(),
            dia.to_string(),
            clus.total_messages.to_string(),
        ]);
    }

    println!("{}", md.render());
    println!("expectation: disc_msgs ≤ 2·n·e (ratio < 1; the paper's O(n·e) absorbs the");
    println!("per-direction constant); rounds track the honest-adjacent diameter.");
    csv.write_csv(&results_dir().join("x_f1_init.csv")).unwrap();
    println!("\nwrote results/x_f1_init.csv");
}
