//! Convenience runner: executes every experiment binary in sequence,
//! streaming their reports. Equivalent to the loop in README.md.
//!
//! `cargo run --release -p now-bench --bin exp_all`

use std::process::Command;

const EXPERIMENTS: [&str; 20] = [
    // Paper claims (first EXPERIMENTS.md section).
    "x_f1_init",
    "x_f2_ops",
    "x_l1_exchange",
    "x_l23_drift",
    "x_t3_longrun",
    "x_p12_overlay",
    "x_rc_randcl",
    "x_r2_ratio",
    "x_jla_attack",
    "x_poly_growth",
    "x_a1_broadcast",
    "x_a2_sampling",
    // Stated extensions and open problems (second section).
    "x_r1_authenticated",
    "x_batch_parallel",
    "x_yz_growth",
    "x_abl_exchange",
    "x_pressure",
    "x_init2_tree",
    "x_async_benor",
    "x_alt_overlay",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================\n");
        let path = exe_dir.join(name);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in results/",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
