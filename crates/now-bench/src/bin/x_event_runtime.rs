//! X-EVENT-RUNTIME — the deterministic event-driven network runtime,
//! end to end.
//!
//! Usage: `x_event_runtime [--threads N] [--out <path>]`
//!
//! Exercises both consumers of the seeded discrete-event scheduler
//! ([`now_net::EventNet`]) across a fixed ladder of per-link network
//! models (ideal → latency+jitter → lossy → partition-and-heal):
//!
//! * **NOW on the event engine**: batched churn where joins travel as
//!   routed messages and leaves as self-messages, delivery order
//!   re-partitioned into conflict-free waves ([`now_sim::BatchExec::Event`]).
//! * **Ben-Or on [`now_net::EventNet`]**: asynchronous binary consensus
//!   whose liveness visibly degrades with loss and partitions while
//!   safety holds ([`now_agreement::run_ben_or_event`]).
//!
//! The JSON report contains only deterministic outcome fields — no
//! wall-clock, no thread counts — so CI's `event-smoke` job byte-diffs
//! `--threads 1` against `--threads 4`: every outcome is a pure
//! function of `(seed, config)`, never of the worker schedule.

use now_agreement::{run_ben_or_event, ByzPlan, CoinMode};
use now_bench::results_dir;
use now_core::{NowParams, NowSystem, WavePool};
use now_net::{DetRng, EventNetConfig, Ledger};
use now_sim::{BatchExec, BatchRandomChurn, BatchRun, BatchRunReport, MdTable};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

const SEED: u64 = 0xE7E7;
const STEPS: u64 = 40;
const WIDTH: usize = 6;

struct Args {
    threads: usize,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut threads = 1usize;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .ok_or("--threads takes a positive integer")?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out takes a file path")?));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { threads, out })
}

/// The network-model ladder every consumer runs through.
fn scenarios() -> Vec<(&'static str, EventNetConfig)> {
    vec![
        ("ideal", EventNetConfig::ideal()),
        (
            "latency_jitter",
            EventNetConfig::ideal().with_latency(3).with_jitter(4),
        ),
        (
            "lossy",
            EventNetConfig::ideal().with_latency(2).with_drop(0.2),
        ),
        (
            "partition_heal",
            EventNetConfig::ideal()
                .with_latency(2)
                .with_partition(2)
                .healing_at(STEPS / 2),
        ),
    ]
}

struct NowRow {
    name: &'static str,
    report: BatchRunReport,
    population: u64,
    messages: u64,
}

fn run_now(name: &'static str, net: EventNetConfig, pool: &WavePool) -> NowRow {
    let params = NowParams::for_capacity(1 << 10).expect("params");
    let mut sys = NowSystem::init_fast(params, 220, 0.10, SEED);
    let mut driver = BatchRandomChurn::balanced(WIDTH, 0.10);
    let report = BatchRun::new()
        .exec(BatchExec::Event(net))
        .in_pool(pool)
        .run(&mut sys, &mut driver, STEPS, SEED ^ 0x5EED);
    sys.check_consistency().expect("post-run consistency");
    NowRow {
        name,
        population: sys.population(),
        messages: sys.ledger().total().messages,
        report,
    }
}

struct BenOrRow {
    name: &'static str,
    decided: usize,
    all_decided: bool,
    unanimous: Option<u64>,
    phases: u64,
    messages: u64,
    dropped: u64,
    virtual_time: u64,
}

fn run_agreement(name: &'static str, net: EventNetConfig) -> BenOrRow {
    const N: usize = 8;
    const F: usize = 1;
    let byz: BTreeSet<usize> = [N - 1].into_iter().collect();
    let inputs: Vec<u64> = (0..N as u64).map(|p| p % 2).collect();
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(SEED ^ 0xBE50);
    let report = run_ben_or_event(
        N,
        &inputs,
        &byz,
        F,
        ByzPlan::Equivocate(0, 1),
        CoinMode::Common { seed: SEED },
        net,
        64,
        &mut ledger,
        &mut rng,
    );
    BenOrRow {
        name,
        decided: report.result.decisions.len(),
        all_decided: report.all_decided,
        unanimous: report.result.unanimous().copied(),
        phases: report.result.rounds,
        messages: report.result.messages,
        dropped: report.dropped,
        virtual_time: report.virtual_time,
    }
}

/// Deterministic JSON: stable key order, no wall-clock or thread
/// fields. Byte-identical across `--threads` values by construction.
fn to_json(now_rows: &[NowRow], benor_rows: &[BenOrRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"now\": [\n");
    for (i, r) in now_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"steps\": {}, \"joins\": {}, \"leaves\": {}, \
             \"rejected\": {}, \"sent\": {}, \"delivered\": {}, \"dropped\": {}, \
             \"waves\": {}, \"max_wave_width\": {}, \
             \"rounds_serial\": {}, \"rounds_parallel\": {}, \"wave_slack_rounds\": {}, \
             \"population\": {}, \"messages\": {}}}",
            r.name,
            r.report.steps,
            r.report.joins,
            r.report.leaves,
            r.report.rejected,
            r.report.sent,
            r.report.delivered,
            r.report.dropped,
            r.report.waves,
            r.report.max_wave_width,
            r.report.rounds_serial,
            r.report.rounds_parallel,
            r.report.wave_slack_rounds,
            r.population,
            r.messages,
        );
        s.push_str(if i + 1 < now_rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"ben_or\": [\n");
    for (i, r) in benor_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"decided\": {}, \"all_decided\": {}, \
             \"unanimous\": {}, \"phases\": {}, \"messages\": {}, \"dropped\": {}, \
             \"virtual_time\": {}}}",
            r.name,
            r.decided,
            r.all_decided,
            r.unanimous.map_or("null".into(), |v| v.to_string()),
            r.phases,
            r.messages,
            r.dropped,
            r.virtual_time,
        );
        s.push_str(if i + 1 < benor_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("x_event_runtime: {msg}");
            return ExitCode::from(2);
        }
    };

    let pool = WavePool::new(args.threads);
    let now_rows: Vec<NowRow> = scenarios()
        .into_iter()
        .map(|(name, net)| run_now(name, net, &pool))
        .collect();
    let benor_rows: Vec<BenOrRow> = scenarios()
        .into_iter()
        .map(|(name, net)| run_agreement(name, net))
        .collect();

    println!(
        "# X-EVENT-RUNTIME ({} workers; outputs are worker-count invariant)\n",
        args.threads
    );
    println!("## NOW on the event scheduler\n");
    let mut md = MdTable::new([
        "scenario",
        "steps",
        "joins",
        "leaves",
        "sent",
        "delivered",
        "dropped",
        "waves",
        "max_width",
        "rounds_par",
        "population",
        "messages",
    ]);
    for r in &now_rows {
        md.row([
            r.name.to_string(),
            r.report.steps.to_string(),
            r.report.joins.to_string(),
            r.report.leaves.to_string(),
            r.report.sent.to_string(),
            r.report.delivered.to_string(),
            r.report.dropped.to_string(),
            r.report.waves.to_string(),
            r.report.max_wave_width.to_string(),
            r.report.rounds_parallel.to_string(),
            r.population.to_string(),
            r.messages.to_string(),
        ]);
    }
    println!("{}", md.render());

    println!("## Ben-Or on the event scheduler\n");
    let mut md = MdTable::new([
        "scenario",
        "decided",
        "all_decided",
        "unanimous",
        "phases",
        "messages",
        "dropped",
        "virtual_time",
    ]);
    for r in &benor_rows {
        md.row([
            r.name.to_string(),
            r.decided.to_string(),
            r.all_decided.to_string(),
            r.unanimous.map_or("-".into(), |v| v.to_string()),
            r.phases.to_string(),
            r.messages.to_string(),
            r.dropped.to_string(),
            r.virtual_time.to_string(),
        ]);
    }
    println!("{}", md.render());

    let json = to_json(&now_rows, &benor_rows);
    let out_path = args
        .out
        .unwrap_or_else(|| results_dir().join("x_event_runtime.json"));
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("x_event_runtime: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}
