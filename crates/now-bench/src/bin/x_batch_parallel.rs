//! X-BATCH — the parallel-operations footnote.
//!
//! The paper proves its claims for one join/leave per time step and
//! notes (§2, footnote): *"the analysis can be generalized to several
//! parallel join and leave operations."* We sweep the batch width `w`
//! and measure:
//!
//! * per-operation message cost (should be flat — parallelism does not
//!   change traffic),
//! * round complexity per time step: serial sum vs parallel max (the
//!   speedup should approach the width for large batches, bounded by
//!   the slowest operation), and
//! * the invariants under batched churn (Theorem 3's conclusion should
//!   be width-insensitive at fixed τ and k).

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_sim::{run_batched, BatchRandomChurn, CsvTable, MdTable};

fn main() {
    println!("# X-BATCH: parallel join/leave batches (§2 footnote)\n");
    let capacity = 1u64 << 12;
    let k = 4usize;
    let total_ops = 480u64; // constant work; steps = total_ops / width
    let mut md = MdTable::new([
        "width",
        "steps",
        "ops",
        "msgs_per_op",
        "rounds_serial",
        "rounds_parallel",
        "speedup",
        "binding_violations",
    ]);
    let mut csv = CsvTable::new([
        "width",
        "steps",
        "ops",
        "msgs_per_op",
        "rounds_serial",
        "rounds_parallel",
        "speedup",
        "binding_violations",
    ]);

    for &width in &[1usize, 2, 4, 8, 16] {
        let params = NowParams::new(capacity, k, 1.5, 0.30, 0.05).unwrap();
        let n0 = 12 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 4200 + width as u64);
        sys.ledger_mut(); // ledger present; batch spans land under Batch
        let mut driver = BatchRandomChurn::balanced(width, 0.10);
        let steps = total_ops / width as u64;
        let report = run_batched(&mut sys, &mut driver, steps, 11 + width as u64);
        let ops = report.joins + report.leaves;
        let batch_stats = sys.ledger().stats(now_net::CostKind::Batch);
        let msgs_per_op = if ops == 0 {
            0.0
        } else {
            batch_stats.total_messages as f64 / ops as f64
        };
        let binding = report.binding_violations(now_core::SecurityMode::Plain);
        md.row([
            width.to_string(),
            steps.to_string(),
            ops.to_string(),
            format!("{msgs_per_op:.0}"),
            report.rounds_serial.to_string(),
            report.rounds_parallel.to_string(),
            format!("{:.2}", report.parallel_speedup()),
            binding.to_string(),
        ]);
        csv.row([
            width.to_string(),
            steps.to_string(),
            ops.to_string(),
            format!("{msgs_per_op:.3}"),
            report.rounds_serial.to_string(),
            report.rounds_parallel.to_string(),
            format!("{:.4}", report.parallel_speedup()),
            binding.to_string(),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("expectation: msgs_per_op stays flat across widths (parallelism saves time, not");
    println!("traffic); the round speedup grows with width but sub-linearly (the max over w");
    println!("iid operation costs grows, and leave-cascades make some ops much longer than");
    println!("the median); binding violations stay comparable to the width-1 baseline — the");
    println!("footnote's claim that the analysis survives batching.");
    csv.write_csv(&results_dir().join("x_batch_parallel.csv"))
        .unwrap();
    println!("wrote results/x_batch_parallel.csv");
}
