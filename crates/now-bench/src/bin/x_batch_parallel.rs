//! X-BATCH — the parallel-operations footnote, scheduled *and executed*.
//!
//! The paper proves its claims for one join/leave per time step and
//! notes (§2, footnote): *"the analysis can be generalized to several
//! parallel join and leave operations."* `NowSystem::step_batch` with
//! `ExecConfig::serial` realizes the generalization as a conflict-free
//! wave schedule over cluster footprints; `ExecConfig::threaded`
//! actually runs each wave's operations on worker threads. We sweep the batch width `w` and
//! measure:
//!
//! * per-operation message cost (should be flat — parallelism does not
//!   change traffic; message costs are schedule-invariant),
//! * round complexity per time step: serial sum vs the scheduled
//!   per-wave maxima, the wave counts, and the per-wave *slack*
//!   (Σ `rounds_total − rounds_max` — the serial rounds the schedule
//!   saves), and
//! * with `--threads N`: the **measured** wall-clock speedup of the
//!   threaded executor over its own 1-worker run, next to the
//!   *estimated* round-complexity speedup — schedule model vs hardware
//!   reality on the same batches.
//!
//! `--smoke` runs a reduced sweep for CI. The JSON report contains only
//! deterministic outcome fields (no wall-clock), so CI can diff it
//! three ways: two runs of the same seed must be byte-identical
//! (`batch-smoke`), `--threads 1` vs `--threads 4` must be
//! byte-identical (the cross-thread determinism gate), and `--threads N`
//! vs `--threads N --scoped` must be byte-identical (the pooled
//! executor against the legacy per-wave scoped spawner it replaced).

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_sim::{BatchExec, BatchRandomChurn, BatchRun, CsvTable, MdTable};
use std::fmt::Write as _;

struct Row {
    width: usize,
    steps: u64,
    ops: u64,
    msgs_per_op: f64,
    rounds_serial: u64,
    rounds_parallel: u64,
    waves: u64,
    max_wave_width: usize,
    wave_slack: u64,
    est_speedup: f64,
    binding_violations: usize,
    /// Wall-clock of this run, ms (threaded sweeps only; not in JSON).
    wall_ms: f64,
    /// wall(threads=1) / wall(threads=N) on identical batches
    /// (threaded sweeps only; not in JSON).
    meas_speedup: f64,
}

fn run_once(
    width: usize,
    total_ops: u64,
    clusters: usize,
    capacity: u64,
    exec: BatchExec,
) -> (now_sim::BatchRunReport, NowSystem, u64) {
    let params = NowParams::for_capacity(capacity).unwrap();
    let n0 = clusters * params.target_cluster_size();
    let mut sys = NowSystem::init_fast(params, n0, 0.10, 4200 + width as u64);
    let mut driver = BatchRandomChurn::balanced(width, 0.10);
    let steps = total_ops / width as u64;
    let report = BatchRun::new()
        .exec(exec)
        .run(&mut sys, &mut driver, steps, 11 + width as u64);
    sys.check_consistency().unwrap();
    (report, sys, steps)
}

fn sweep(
    widths: &[usize],
    total_ops: u64,
    clusters: usize,
    capacity: u64,
    threads: Option<usize>,
    scoped: bool,
    smoke: bool,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &width in widths {
        let exec = match (threads, scoped) {
            (None, _) => BatchExec::Scheduled,
            (Some(t), false) => BatchExec::Threaded(t),
            (Some(t), true) => BatchExec::ThreadedScoped(t),
        };
        let (report, sys, steps) = run_once(width, total_ops, clusters, capacity, exec);
        // Measured speedup: re-run the identical batches single-worker
        // and compare wall clocks (outcomes are bit-identical, so this
        // is the same work, minus the concurrency). Skipped under
        // --smoke: the CI gates byte-diff only the JSON, which excludes
        // wall-clock, so the baseline re-run would be discarded work.
        let meas_speedup = match threads {
            Some(t) if t > 1 && !smoke => {
                let (baseline, _, _) =
                    run_once(width, total_ops, clusters, capacity, BatchExec::Threaded(1));
                assert_eq!(
                    (baseline.joins, baseline.leaves, baseline.rounds_parallel),
                    (report.joins, report.leaves, report.rounds_parallel),
                    "cross-thread determinism violated in sweep"
                );
                baseline.wall_nanos as f64 / report.wall_nanos.max(1) as f64
            }
            _ => 1.0,
        };
        let ops = report.joins + report.leaves;
        let batch_stats = sys.ledger().stats(now_net::CostKind::Batch);
        let msgs_per_op = if ops == 0 {
            0.0
        } else {
            batch_stats.total_messages as f64 / ops as f64
        };
        rows.push(Row {
            width,
            steps,
            ops,
            msgs_per_op,
            rounds_serial: report.rounds_serial,
            rounds_parallel: report.rounds_parallel,
            waves: report.waves,
            max_wave_width: report.max_wave_width,
            wave_slack: report.wave_slack_rounds,
            est_speedup: report.parallel_speedup(),
            binding_violations: report.binding_violations(now_core::SecurityMode::Plain),
            wall_ms: report.wall_nanos as f64 / 1e6,
            meas_speedup,
        });
    }
    rows
}

fn to_json(rows: &[Row], smoke: bool, threaded: bool) -> String {
    // Deterministic outcome fields only: both CI gates byte-diff this
    // file, so wall-clock and thread count must stay out.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"x_batch_parallel\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"engine\": \"{}\",",
        if threaded { "threaded" } else { "scheduled" }
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"width\": {}, \"steps\": {}, \"ops\": {}, \
             \"msgs_per_op\": {:.3}, \"rounds_serial\": {}, \
             \"rounds_parallel\": {}, \"waves\": {}, \
             \"max_wave_width\": {}, \"wave_slack\": {}, \
             \"speedup\": {:.4}, \"binding_violations\": {}}}{comma}",
            r.width,
            r.steps,
            r.ops,
            r.msgs_per_op,
            r.rounds_serial,
            r.rounds_parallel,
            r.waves,
            r.max_wave_width,
            r.wave_slack,
            r.est_speedup,
            r.binding_violations,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_threads() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--threads").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--threads takes a positive integer")
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scoped = std::env::args().any(|a| a == "--scoped");
    let threads = parse_threads();
    match threads {
        Some(t) if scoped => println!(
            "# X-BATCH: parallel join/leave batches (§2 footnote), LEGACY scoped executor ({t} workers)\n"
        ),
        Some(t) => println!(
            "# X-BATCH: parallel join/leave batches (§2 footnote), pooled executor ({t} workers)\n"
        ),
        None => println!("# X-BATCH: parallel join/leave batches (§2 footnote)\n"),
    }
    // A capacity-16 parameterization keeps the overlay degree (5) well
    // below the cluster count, so batches contain genuinely disjoint
    // footprints; the smoke sweep shrinks everything for CI.
    let rows = if smoke {
        sweep(&[1, 4, 8], 60, 32, 16, threads, scoped, true)
    } else {
        sweep(&[1, 2, 4, 8, 16], 480, 64, 16, threads, scoped, false)
    };

    let mut headers = vec![
        "width",
        "steps",
        "ops",
        "msgs_per_op",
        "rounds_serial",
        "rounds_parallel",
        "waves",
        "max_wave_width",
        "wave_slack",
        "est_speedup",
        "binding_violations",
    ];
    if threads.is_some() {
        headers.push("wall_ms");
        headers.push("meas_speedup");
    }
    let mut md = MdTable::new(headers.clone());
    let mut csv = CsvTable::new(headers);
    for r in &rows {
        let mut cells = vec![
            r.width.to_string(),
            r.steps.to_string(),
            r.ops.to_string(),
            format!("{:.0}", r.msgs_per_op),
            r.rounds_serial.to_string(),
            r.rounds_parallel.to_string(),
            r.waves.to_string(),
            r.max_wave_width.to_string(),
            r.wave_slack.to_string(),
            format!("{:.2}", r.est_speedup),
            r.binding_violations.to_string(),
        ];
        if threads.is_some() {
            cells.push(format!("{:.2}", r.wall_ms));
            cells.push(format!("{:.2}", r.meas_speedup));
        }
        md.row(cells.clone());
        csv.row(cells);
    }

    println!("{}", md.render());
    println!("expectation: msgs_per_op stays flat across widths (message costs are");
    println!("schedule-invariant); waves grow sub-linearly in width — footprint conflicts");
    println!("serialize some operations, so the estimated speedup is the ratio of serial");
    println!("rounds to the per-wave maxima rather than the ideal ×width; wave_slack is the");
    println!("serial rounds the schedule saves. With --threads N the meas_speedup column");
    println!("reports the wall-clock ratio of the 1-worker run to the N-worker run of the");
    println!("*same* batches (outcomes bit-identical, asserted): the schedule's estimate is");
    println!("a round-complexity model, the measurement is what the hardware delivers —");
    println!("wide waves approach min(width, cores), narrow ones ≈ 1, and a single-CPU host");
    println!("(check nproc) pins every measurement to ≈ 1 by physics; under --smoke the");
    println!("baseline re-run is skipped and meas_speedup is a 1.00 placeholder. Binding");
    println!("violations per audited step stay comparable to the width-1 baseline (absolute");
    println!("counts scale with the step count) — the footnote's claim that the analysis");
    println!("survives batching. (At this toy capacity clusters hold ~8 nodes, so τ = 0.1");
    println!("trips thresholds often; that is the k-dependence of Lemma 1, not a scheduler");
    println!("artifact.)");
    csv.write_csv(&results_dir().join("x_batch_parallel.csv"))
        .unwrap();
    let json_path = results_dir().join("x_batch_parallel.json");
    std::fs::write(&json_path, to_json(&rows, smoke, threads.is_some())).unwrap();
    println!("wrote results/x_batch_parallel.csv and results/x_batch_parallel.json");
}
