//! X-BATCH — the parallel-operations footnote, scheduled.
//!
//! The paper proves its claims for one join/leave per time step and
//! notes (§2, footnote): *"the analysis can be generalized to several
//! parallel join and leave operations."* `step_parallel` realizes the
//! generalization as a conflict-free wave schedule over cluster
//! footprints. We sweep the batch width `w` and measure:
//!
//! * per-operation message cost (should be flat — parallelism does not
//!   change traffic; message costs are schedule-invariant),
//! * round complexity per time step: serial sum vs the scheduled
//!   per-wave maxima, plus the wave counts the schedule actually
//!   produced, and
//! * the invariants under batched churn (Theorem 3's conclusion should
//!   be width-insensitive at fixed τ and k).
//!
//! `--smoke` runs a reduced sweep for CI: small N, fixed seeds, and the
//! same JSON report — two runs of the same seed must produce
//! byte-identical output (the CI `batch-smoke` job diffs them).

use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_sim::{run_batched, BatchRandomChurn, CsvTable, MdTable};
use std::fmt::Write as _;

struct Row {
    width: usize,
    steps: u64,
    ops: u64,
    msgs_per_op: f64,
    rounds_serial: u64,
    rounds_parallel: u64,
    waves: u64,
    max_wave_width: usize,
    speedup: f64,
    binding_violations: usize,
}

fn sweep(widths: &[usize], total_ops: u64, clusters: usize, capacity: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &width in widths {
        let params = NowParams::for_capacity(capacity).unwrap();
        let n0 = clusters * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 4200 + width as u64);
        let mut driver = BatchRandomChurn::balanced(width, 0.10);
        let steps = total_ops / width as u64;
        let report = run_batched(&mut sys, &mut driver, steps, 11 + width as u64);
        let ops = report.joins + report.leaves;
        let batch_stats = sys.ledger().stats(now_net::CostKind::Batch);
        let msgs_per_op = if ops == 0 {
            0.0
        } else {
            batch_stats.total_messages as f64 / ops as f64
        };
        rows.push(Row {
            width,
            steps,
            ops,
            msgs_per_op,
            rounds_serial: report.rounds_serial,
            rounds_parallel: report.rounds_parallel,
            waves: report.waves,
            max_wave_width: report.max_wave_width,
            speedup: report.parallel_speedup(),
            binding_violations: report.binding_violations(now_core::SecurityMode::Plain),
        });
        sys.check_consistency().unwrap();
    }
    rows
}

fn to_json(rows: &[Row], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"x_batch_parallel\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"width\": {}, \"steps\": {}, \"ops\": {}, \
             \"msgs_per_op\": {:.3}, \"rounds_serial\": {}, \
             \"rounds_parallel\": {}, \"waves\": {}, \
             \"max_wave_width\": {}, \"speedup\": {:.4}, \
             \"binding_violations\": {}}}{comma}",
            r.width,
            r.steps,
            r.ops,
            r.msgs_per_op,
            r.rounds_serial,
            r.rounds_parallel,
            r.waves,
            r.max_wave_width,
            r.speedup,
            r.binding_violations,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# X-BATCH: parallel join/leave batches (§2 footnote)\n");
    // A capacity-16 parameterization keeps the overlay degree (5) well
    // below the cluster count, so batches contain genuinely disjoint
    // footprints; the smoke sweep shrinks everything for CI.
    let rows = if smoke {
        sweep(&[1, 4, 8], 60, 32, 16)
    } else {
        sweep(&[1, 2, 4, 8, 16], 480, 64, 16)
    };

    let headers = [
        "width",
        "steps",
        "ops",
        "msgs_per_op",
        "rounds_serial",
        "rounds_parallel",
        "waves",
        "max_wave_width",
        "speedup",
        "binding_violations",
    ];
    let mut md = MdTable::new(headers);
    let mut csv = CsvTable::new(headers);
    for r in &rows {
        md.row([
            r.width.to_string(),
            r.steps.to_string(),
            r.ops.to_string(),
            format!("{:.0}", r.msgs_per_op),
            r.rounds_serial.to_string(),
            r.rounds_parallel.to_string(),
            r.waves.to_string(),
            r.max_wave_width.to_string(),
            format!("{:.2}", r.speedup),
            r.binding_violations.to_string(),
        ]);
        csv.row([
            r.width.to_string(),
            r.steps.to_string(),
            r.ops.to_string(),
            format!("{:.3}", r.msgs_per_op),
            r.rounds_serial.to_string(),
            r.rounds_parallel.to_string(),
            r.waves.to_string(),
            r.max_wave_width.to_string(),
            format!("{:.4}", r.speedup),
            r.binding_violations.to_string(),
        ]);
    }

    println!("{}", md.render());
    println!("expectation: msgs_per_op stays flat across widths (message costs are");
    println!("schedule-invariant); waves grow sub-linearly in width — footprint conflicts");
    println!("serialize some operations, so the speedup is the ratio of serial rounds to the");
    println!("per-wave maxima rather than the ideal ×width; binding violations *per audited");
    println!("step* stay comparable to the width-1 baseline (absolute counts scale with the");
    println!("step count) — the footnote's claim that the analysis survives batching. (At");
    println!("this toy capacity clusters hold ~8 nodes, so τ = 0.1 trips thresholds often;");
    println!("that is the k-dependence of Lemma 1, not a scheduler artifact.)");
    csv.write_csv(&results_dir().join("x_batch_parallel.csv"))
        .unwrap();
    let json_path = results_dir().join("x_batch_parallel.json");
    std::fs::write(&json_path, to_json(&rows, smoke)).unwrap();
    println!("wrote results/x_batch_parallel.csv and results/x_batch_parallel.json");
}
