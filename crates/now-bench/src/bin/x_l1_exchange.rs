//! X-L1 — Lemma 1: a full exchange resets a cluster's composition.
//!
//! Claim: after a cluster exchanges all of its nodes,
//! `P(p_C > τ(1+ε)) ≤ N^{-γ}`, by a Chernoff bound — so the empirical
//! tail should shrink exponentially in the cluster size (i.e. in `k`).
//! We pollute a cluster to ~70% Byzantine, run one full exchange, and
//! tabulate the post-exchange distribution across many trials.

use now_bench::{build_system, results_dir};
use now_sim::{CsvTable, MdTable};

fn main() {
    println!("# X-L1: composition after full exchange (Lemma 1)\n");
    let tau = 0.20;
    let eps = 0.5; // tail threshold τ(1+ε) = 0.30
    let trials = 150;
    let mut md = MdTable::new([
        "k",
        "cluster",
        "mean_after",
        "max_after",
        "tail_P(p>τ(1+ε))",
        "chernoff_bound",
    ]);
    let mut csv = CsvTable::new([
        "k",
        "cluster_size",
        "mean_after",
        "max_after",
        "empirical_tail",
        "chernoff_bound",
    ]);

    for k in [2usize, 4, 6, 8] {
        let mut exceed = 0usize;
        let mut sum = 0.0;
        let mut max_after: f64 = 0.0;
        let mut cluster_size = 0usize;
        for t in 0..trials {
            let mut sys = build_system(1 << 12, k, 24, tau, 1000 + (k * trials + t) as u64);
            let victim = sys.cluster_ids()[0];
            cluster_size = sys.cluster(victim).unwrap().size();
            // Pollute the victim by registry surgery (swap byz in,
            // honest out, size-preserving).
            let byz_nodes = sys.byz_node_ids();
            for b in byz_nodes {
                if sys.cluster(victim).unwrap().byz_fraction() > 0.7 {
                    break;
                }
                if sys.node_cluster(b).unwrap() != victim {
                    if let Some(h) = sys
                        .cluster(victim)
                        .unwrap()
                        .member_vec()
                        .into_iter()
                        .find(|&m| sys.is_honest(m).unwrap())
                    {
                        let other = sys.node_cluster(b).unwrap();
                        sys.force_move(b, victim).unwrap();
                        sys.force_move(h, other).unwrap();
                    }
                }
            }
            sys.exchange_all(victim, false);
            let frac = sys.cluster(victim).unwrap().byz_fraction();
            sum += frac;
            max_after = max_after.max(frac);
            if frac > tau * (1.0 + eps) {
                exceed += 1;
            }
        }
        let tail = exceed as f64 / trials as f64;
        // Chernoff: P(X > (1+ε)τ|C|) ≤ exp(−ε²τ|C|/3).
        let bound = (-eps * eps * tau * cluster_size as f64 / 3.0).exp();
        md.row([
            k.to_string(),
            cluster_size.to_string(),
            format!("{:.3}", sum / trials as f64),
            format!("{max_after:.3}"),
            format!("{tail:.3}"),
            format!("{bound:.3}"),
        ]);
        csv.row([
            k.to_string(),
            cluster_size.to_string(),
            format!("{:.6}", sum / trials as f64),
            format!("{max_after:.6}"),
            format!("{tail:.6}"),
            format!("{bound:.6}"),
        ]);
    }

    println!("{}", md.render());
    println!("expectation: mean_after ≈ τ = {tau} plus a self-exchange residual of");
    println!("(|C|/n)·(p₀ − τ) — randCl picks C itself with probability |C|/n and the member");
    println!("is then retained; Lemma 1 idealizes this away and it vanishes as n grows.");
    println!("The tail probability decays with k (the Chernoff column is the paper's bound;");
    println!("empirical values sit below it).");
    csv.write_csv(&results_dir().join("x_l1_exchange.csv"))
        .unwrap();
    println!("wrote results/x_l1_exchange.csv");
}
