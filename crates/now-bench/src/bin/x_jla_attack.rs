//! X-JLA — the §3.3 join–leave attack sweep.
//!
//! Three-way comparison per security parameter `k`:
//! * the no-shuffle **baseline** vs the paper-model adversary (expected:
//!   captured — Byzantine mass only accumulates in the target);
//! * **NOW** vs the paper-model adversary (expected: never captured);
//! * **NOW** vs the *hardened* adversary that exploits transient 1/3
//!   crossings (beyond the paper's analysis — the sticky-threshold
//!   effect; capture times should grow rapidly with k).

use now_adversary::{Action, Adversary, JoinLeaveAttack, TargetedMalice};
use now_bench::results_dir;
use now_core::{NowParams, NowSystem};
use now_net::DetRng;
use now_sim::{baselines::no_shuffle_params, CsvTable, MdTable};

struct Outcome {
    captured_at: Option<u64>,
    peak: f64,
}

fn attack(params: NowParams, tau: f64, steps: u64, hardened: bool, seed: u64) -> Outcome {
    let n0 = 12 * params.target_cluster_size();
    let mut sys = NowSystem::init_fast(params, n0, tau, seed);
    let target = sys.cluster_ids()[0];
    if hardened {
        sys.set_malice(Box::new(TargetedMalice::new(target)));
    }
    let mut adv = JoinLeaveAttack::new(target, tau);
    let mut rng = DetRng::new(seed.wrapping_mul(7).wrapping_add(1));
    let mut peak = 0.0f64;
    for step in 0..steps {
        match adv.decide(&sys, &mut rng) {
            Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                    _ => sys.join(honest),
                };
            }
            Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            Action::Idle => {}
        }
        let frac = sys
            .cluster(adv.target)
            .map(|c| c.byz_fraction())
            .unwrap_or(0.0);
        peak = peak.max(frac);
        if frac >= 0.5 {
            return Outcome {
                captured_at: Some(step),
                peak,
            };
        }
    }
    Outcome {
        captured_at: None,
        peak,
    }
}

fn main() {
    println!("# X-JLA: join–leave attack resilience (§3.3)\n");
    let tau = 0.12;
    let steps = 1500u64;
    let mut md = MdTable::new(["k", "system", "adversary", "captured_at", "peak_frac"]);
    let mut csv = CsvTable::new(["k", "system", "adversary", "captured_at", "peak_frac"]);

    for k in [2usize, 3, 4] {
        let params = NowParams::new(1 << 12, k, 2.0, tau, 0.05).unwrap();
        let configs: [(&str, NowParams, bool); 3] = [
            ("baseline(no-shuffle)", no_shuffle_params(params), false),
            ("NOW", params, false),
            ("NOW", params, true),
        ];
        for (system, p, hardened) in configs {
            let adversary = if hardened { "hardened" } else { "paper-model" };
            let out = attack(p, tau, steps, hardened, 500 + k as u64);
            let captured = out
                .captured_at
                .map(|s| s.to_string())
                .unwrap_or_else(|| "never".into());
            md.row([
                k.to_string(),
                system.to_string(),
                adversary.to_string(),
                captured.clone(),
                format!("{:.3}", out.peak),
            ]);
            csv.row([
                k.to_string(),
                system.to_string(),
                adversary.to_string(),
                captured,
                format!("{:.6}", out.peak),
            ]);
        }
    }

    println!("{}", md.render());
    println!("expectation: the baseline is captured at every k (monotone accumulation);");
    println!("NOW vs the paper-model adversary is never captured. The hardened adversary");
    println!("captures NOW at every laptop-scale k: it exploits *intra-operation* transient");
    println!("1/3 crossings, whose frequency grows with the per-step shuffle volume (~|C|²");
    println!("compositions per leave cascade) — per-step audits never see them. This is a");
    println!("finding of the reproduction, beyond the paper's per-step analysis: the 1/3");
    println!("threshold is sticky, and suppressing intra-step excursions needs the full");
    println!("asymptotic margin, not just per-snapshot Chernoff tails (see EXPERIMENTS.md).");
    csv.write_csv(&results_dir().join("x_jla_attack.csv"))
        .unwrap();
    println!("wrote results/x_jla_attack.csv");
}
