//! X-CAMPAIGN — run a declarative attack campaign file.
//!
//! Usage: `x_campaign <file.campaign> [--threads N] [--out <path>]`
//!
//! Parses the campaign text format (`now-campaign`), runs every phase
//! on one system through the batched wave-scheduled execution path, and
//! emits:
//!
//! * a per-phase markdown table on stdout (steps, churn, wave stats,
//!   violations, population trajectory endpoints), and
//! * the deterministic per-phase JSON report to `--out` (default:
//!   `results/x_campaign_<name>.json`).
//!
//! The JSON contains only deterministic outcome fields, so CI's
//! `campaign-smoke` job byte-diffs `--threads 1` against `--threads 4`
//! for every file in `scenarios/` — the campaign engine inherits the
//! threaded wave executor's bit-determinism guarantee.
//!
//! Malformed files are reported as typed errors (line number + reason)
//! with exit code 2 — never a panic.

use now_bench::results_dir;
use now_campaign::Campaign;
use now_core::NowError;
use now_sim::MdTable;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    file: PathBuf,
    threads: usize,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut threads = 1usize;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads takes a positive integer")?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out takes a file path")?));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if file.replace(PathBuf::from(path)).is_some() {
                    return Err("exactly one campaign file expected".into());
                }
            }
        }
    }
    Ok(Args {
        file: file.ok_or("usage: x_campaign <file.campaign> [--threads N] [--out <path>]")?,
        threads,
        out,
    })
}

fn run(args: &Args) -> Result<(), NowError> {
    let text = std::fs::read_to_string(&args.file).map_err(|e| NowError::CampaignReport {
        reason: format!("cannot read {}: {e}", args.file.display()),
    })?;
    let campaign = Campaign::parse(&text)?;
    let (report, sys) = campaign.run(args.threads)?;
    sys.check_consistency()
        .map_err(|e| NowError::CampaignReport {
            reason: format!("post-run consistency check failed: {e}"),
        })?;

    println!(
        "# X-CAMPAIGN `{}` ({} phases, {} workers)\n",
        report.campaign,
        report.phases.len(),
        args.threads
    );
    let mut md = MdTable::new([
        "phase",
        "style",
        "steps",
        "fired",
        "joins",
        "leaves",
        "waves",
        "max_width",
        "wave_slack",
        "messages",
        "pop start→end",
        "peak_byz",
        "binding_viol",
    ]);
    for p in &report.phases {
        md.row([
            p.name.clone(),
            p.style.clone(),
            p.steps.to_string(),
            p.trigger_fired.to_string(),
            p.joins.to_string(),
            p.leaves.to_string(),
            p.waves.to_string(),
            p.max_wave_width.to_string(),
            p.wave_slack_rounds.to_string(),
            p.messages.to_string(),
            format!("{}→{}", p.pop_start, p.pop_end),
            format!("{:.3}", p.peak_byz_fraction),
            p.binding_violations.to_string(),
        ]);
    }
    println!("{}", md.render());
    println!(
        "totals: {} steps, {} messages, {} binding violations, final population {}",
        report.total_steps(),
        report.total_messages(),
        report.total_binding_violations(),
        sys.population()
    );

    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| results_dir().join(format!("x_campaign_{}.json", report.campaign)));
    std::fs::write(&out_path, report.to_json()).map_err(|e| NowError::CampaignReport {
        reason: format!("cannot write {}: {e}", out_path.display()),
    })?;
    println!("wrote {}", out_path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("x_campaign: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("x_campaign: {e}");
            ExitCode::from(2)
        }
    }
}
