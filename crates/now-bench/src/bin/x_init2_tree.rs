//! X-INIT2 — the o(n²) initialization open problem (§6).
//!
//! *"Another objective is to devise a procedure for the initialization
//! phase of NOW whose communication cost is o(n²_t0) (as opposed to
//! O(n³_t0))."*
//!
//! Part A sweeps the bootstrap size and compares the flooding
//! discovery's identity-units (`O(n·e)`) against the redundant-tree
//! candidate of `now_core::init_tree` (`O(n·polylog)`), fitting the
//! power-law exponent of each.
//!
//! Part B charts the candidate's *completeness* — the probability that
//! per-id majority voting survives Byzantine subtree suppression — as a
//! function of the tree redundancy `t` and the corruption rate τ. This
//! trade-off is exactly why the problem is open: the cheap scheme's
//! guarantee is probabilistic where flooding's is absolute.

use now_bench::{results_dir, slope};
use now_core::init::discover;
use now_core::init_tree::tree_discover;
use now_graph::gen;
use now_net::{DetRng, Ledger};
use now_sim::{CsvTable, MdTable};
use std::collections::BTreeSet;

fn bootstrap(n: usize, seed: u64) -> now_graph::Graph {
    let mut rng = DetRng::new(seed);
    // Density ~8·ln(n)/n keeps the honest subgraph connected whp while
    // staying sparse enough that flooding's n·e term is visibly
    // super-linear.
    let p = (8.0 * (n as f64).ln() / n as f64).min(0.5);
    gen::erdos_renyi(n, p, &mut rng)
}

fn main() {
    println!("# X-INIT2: sub-quadratic initialization candidate (§6 open problem)\n");

    // ---- Part A: cost scaling ----
    println!("## A. discovery cost scaling (honest run)\n");
    let mut md = MdTable::new(["n", "edges", "flood_units", "tree_units(t=5)", "ratio"]);
    let mut csv = CsvTable::new(["n", "edges", "flood_units", "tree_units", "ratio"]);
    let sizes = [64usize, 128, 256, 512, 1024];
    let mut ns = Vec::new();
    let mut flood_costs = Vec::new();
    let mut tree_costs = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let g = bootstrap(n, 100 + i as u64);
        let none = BTreeSet::new();
        let mut lf = Ledger::new();
        let flood = discover(&g, &none, &mut lf);
        assert!(flood.complete);
        let mut lt = Ledger::new();
        let roots: Vec<usize> = (0..5).collect();
        let mut tree_rng = DetRng::new(500 + i as u64);
        let tree = tree_discover(&g, &none, &roots, &mut lt, &mut tree_rng);
        assert!(tree.complete);
        ns.push(n as f64);
        flood_costs.push(flood.message_units as f64);
        tree_costs.push(tree.message_units as f64);
        let ratio = flood.message_units as f64 / tree.message_units as f64;
        md.row([
            n.to_string(),
            g.edge_count().to_string(),
            flood.message_units.to_string(),
            tree.message_units.to_string(),
            format!("{ratio:.1}"),
        ]);
        csv.row([
            n.to_string(),
            g.edge_count().to_string(),
            flood.message_units.to_string(),
            tree.message_units.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    let xs: Vec<f64> = ns.iter().map(|&n| n.ln()).collect();
    let flood_exp = slope(
        &xs,
        &flood_costs.iter().map(|&c| c.ln()).collect::<Vec<_>>(),
    );
    let tree_exp = slope(&xs, &tree_costs.iter().map(|&c| c.ln()).collect::<Vec<_>>());
    println!("{}", md.render());
    println!("fitted exponents: flooding n^{flood_exp:.2}, trees n^{tree_exp:.2}");
    println!("expectation: flooding ≈ n^2 (n·e with e = Θ(n·log n) gives exponent ≥ 2);");
    println!("trees ≈ n^1 plus log factors — the o(n²) candidate.\n");
    csv.write_csv(&results_dir().join("x_init2_cost.csv"))
        .unwrap();

    // ---- Part B: completeness vs redundancy ----
    println!("## B. completeness under suppression (n = 256)\n");
    let mut md_b = MdTable::new(["tau", "trees", "complete_runs/20", "mean_accepted"]);
    let mut csv_b = CsvTable::new(["tau", "trees", "complete_runs", "mean_accepted"]);
    let n = 256usize;
    for &tau in &[0.10f64, 0.20, 0.30] {
        for &t in &[1usize, 3, 5, 9, 15] {
            let mut complete = 0u32;
            let mut accepted_sum = 0usize;
            for run in 0..20u64 {
                let g = bootstrap(n, 900 + run);
                let mut rng = DetRng::new(7_000 + run);
                let byz_count = (tau * n as f64) as usize;
                let byz: BTreeSet<usize> =
                    now_graph::sample::sample_distinct(n, byz_count, &mut rng)
                        .into_iter()
                        .collect();
                let roots: Vec<usize> = now_graph::sample::sample_distinct(n, t, &mut rng);
                let mut ledger = Ledger::new();
                let out = tree_discover(&g, &byz, &roots, &mut ledger, &mut rng);
                if out.complete {
                    complete += 1;
                }
                accepted_sum += out.accepted.len();
            }
            md_b.row([
                format!("{tau:.2}"),
                t.to_string(),
                complete.to_string(),
                format!("{:.1}", accepted_sum as f64 / 20.0),
            ]);
            csv_b.row([
                format!("{tau:.3}"),
                t.to_string(),
                complete.to_string(),
                format!("{:.3}", accepted_sum as f64 / 20.0),
            ]);
        }
    }
    println!("{}", md_b.render());
    println!("expectation: completeness rises steeply with the tree count (per-node loss");
    println!("needs a Byzantine majority among its t path-sets) and falls with τ: at");
    println!("τ = 0.1 the complete-run rate climbs from ~0/20 at t = 1 to a majority of");
    println!("runs by t ≈ 9-15, while at τ ≥ 0.2 even 15 trees rarely deliver everyone.");
    println!("That is why the scheme is a *candidate*: absolute completeness against the");
    println!("full-information adversary still needs flooding (or a routing-around");
    println!("scheme; the open problem stands). Where completeness does hold, Part A's");
    println!("n^1 cost applies — a different point on the cost/certainty frontier.");
    csv_b
        .write_csv(&results_dir().join("x_init2_completeness.csv"))
        .unwrap();
    println!("wrote results/x_init2_cost.csv, results/x_init2_completeness.csv");
}
