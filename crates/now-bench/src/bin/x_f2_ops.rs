//! X-F2 — Figure 2 (maintenance operations).
//!
//! Claim: join/leave/split/merge each cost `polylog(N)` messages and
//! `O(log⁴N)` rounds. We sweep the capacity `N`, hold the *number of
//! clusters* fixed (so only the `logN` scale varies), measure mean costs
//! per operation kind, and fit the polylog exponent
//! `cost ≈ c·(log₂N)^p`.

use now_bench::{polylog_exponent, results_dir, standard_params};
use now_core::NowSystem;
use now_net::CostKind;
use now_sim::{CsvTable, MdTable};

fn main() {
    println!("# X-F2: maintenance operation complexity (Figure 2)\n");
    let capacities = [1u64 << 10, 1 << 12, 1 << 14, 1 << 16];
    let kinds = [
        CostKind::Join,
        CostKind::Leave,
        CostKind::Exchange,
        CostKind::RandCl,
    ];
    let mut md = MdTable::new([
        "N",
        "logN",
        "cluster",
        "join_msgs",
        "join_rounds",
        "leave_msgs",
        "exchange_msgs",
        "randcl_msgs",
    ]);
    let mut csv = CsvTable::new([
        "capacity",
        "log_n",
        "cluster_size",
        "join_msgs",
        "join_rounds",
        "leave_msgs",
        "exchange_msgs",
        "randcl_msgs",
    ]);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];

    for (i, &cap) in capacities.iter().enumerate() {
        let params = standard_params(cap, 2);
        let n0 = 12 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, 0.10, 200 + i as u64);
        // Warm up, then measure a fixed op mix.
        for _ in 0..3 {
            sys.join(true);
        }
        sys.ledger_mut().clear_records();
        let baseline: Vec<_> = kinds.iter().map(|&k| sys.ledger().stats(k)).collect();
        for step in 0..30 {
            if step % 2 == 0 {
                sys.join(step % 10 == 0);
            } else {
                let node = sys.node_ids()[step % sys.population() as usize];
                let _ = sys.leave(node);
            }
        }
        let mut row = vec![
            cap.to_string(),
            format!("{:.0}", params.log_n()),
            params.target_cluster_size().to_string(),
        ];
        for (j, &kind) in kinds.iter().enumerate() {
            let after = sys.ledger().stats(kind);
            let count = after.count - baseline[j].count;
            let msgs = after.total_messages - baseline[j].total_messages;
            let mean = if count > 0 {
                msgs as f64 / count as f64
            } else {
                0.0
            };
            series[j].push(mean);
            row.push(format!("{mean:.0}"));
            if kind == CostKind::Join {
                let rounds = after.total_rounds - baseline[j].total_rounds;
                let mean_rounds = if count > 0 {
                    rounds as f64 / count as f64
                } else {
                    0.0
                };
                row.push(format!("{mean_rounds:.0}"));
            }
        }
        md.row(row.clone());
        csv.row(row);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("fitted polylog exponents (cost ≈ c·log^p N):");
    for (j, &kind) in kinds.iter().enumerate() {
        let p = polylog_exponent(&capacities, &series[j]);
        println!("  {:<9} p ≈ {:.2}", kind.name(), p);
    }
    println!("\nexpectation: exponents stay bounded (polylog), join/leave well below linear-in-N growth;");
    println!("paper bounds: randCl O(log⁵N), exchange O(log⁶N), rounds O(log⁴N).");
    csv.write_csv(&results_dir().join("x_f2_ops.csv")).unwrap();
    println!("wrote results/x_f2_ops.csv");
}
