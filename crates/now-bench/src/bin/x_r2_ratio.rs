//! X-R2 — Remark 2: generalized corruption ratios.
//!
//! Claim: for an adversary controlling at most `1/r − ε` of the nodes
//! (`r ≥ 2`), every cluster keeps its Byzantine fraction at most `1/r`.
//! We sweep `r ∈ {3, 4, 5}` (the `r = 2` case additionally needs the
//! cryptographic quorum of Remark 1 — demonstrated separately by the
//! Dolev–Strong substrate, which tolerates any `f`; the system-level
//! simulation keeps the paper's information-theoretic `τ < 1/3` regime).

use now_adversary::RandomChurn;
use now_bench::{results_dir, standard_params};
use now_core::NowSystem;
use now_sim::{run, CsvTable, MdTable, RunConfig};

fn main() {
    println!("# X-R2: generalized ratio bound (Remark 2)\n");
    let steps = 1000u64;
    let k = 8usize;
    let mut md = MdTable::new([
        "r",
        "tau=1/r-ε",
        "bound 1/r",
        "peak_frac",
        "steps_over_bound",
        "over_rate",
        "holds_95",
    ]);
    let mut csv = CsvTable::new([
        "r",
        "tau",
        "bound",
        "peak_frac",
        "steps_over_bound",
        "over_rate",
        "holds_95",
    ]);

    for r in [3u32, 4, 5] {
        let bound = 1.0 / r as f64;
        let tau = bound - 0.10;
        let params = standard_params(1 << 12, k);
        let n0 = 10 * params.target_cluster_size();
        let mut sys = NowSystem::init_fast(params, n0, tau, 900 + r as u64);
        let mut churn = RandomChurn::balanced(tau);
        let report = run(
            &mut sys,
            &mut churn,
            RunConfig {
                steps,
                audit_every: 1,
                seed: 43,
            },
        );
        let over_bound = report
            .worst_byz_fraction
            .points()
            .iter()
            .filter(|&&(_, v)| v > bound)
            .count();
        let over_rate = over_bound as f64 / steps as f64;
        md.row([
            r.to_string(),
            format!("{tau:.3}"),
            format!("{bound:.3}"),
            format!("{:.3}", report.peak_byz_fraction),
            over_bound.to_string(),
            format!("{over_rate:.4}"),
            (over_rate <= 0.05).to_string(),
        ]);
        csv.row([
            r.to_string(),
            format!("{tau:.6}"),
            format!("{bound:.6}"),
            format!("{:.6}", report.peak_byz_fraction),
            over_bound.to_string(),
            format!("{over_rate:.6}"),
            (over_rate <= 0.05).to_string(),
        ]);
        sys.check_consistency().unwrap();
    }

    println!("{}", md.render());
    println!("expectation: the exceedance rate falls monotonically in r (larger absolute");
    println!("margin ε relative to the cluster-size fluctuation scale ~1/sqrt(k·logN)), and");
    println!("holds_95 (≤ 5% of steps over the bound) passes for r ≥ 4. Remark 2 is whp and");
    println!("asymptotic: r = 3 puts the bound at 1/3 itself, the protocol's thinnest");
    println!("margin, and needs cluster sizes beyond laptop scale for strict containment");
    println!("(cross-check the k-sweep in X-T3: violations fall exponentially in k).");
    csv.write_csv(&results_dir().join("x_r2_ratio.csv"))
        .unwrap();
    println!("wrote results/x_r2_ratio.csv");
}
