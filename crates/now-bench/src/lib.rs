//! Shared helpers for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one row-group of
//! `EXPERIMENTS.md` (see `DESIGN.md` §5 for the experiment index):
//! it prints a markdown table to stdout and writes a CSV next to it
//! under `results/`. Criterion benches in `benches/` measure the same
//! primitives' wall-clock behavior.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

use now_core::{NowParams, NowSystem};
use std::path::PathBuf;

/// Directory experiment CSVs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    // INVARIANT: bench-harness setup — failing to create the
    // results dir should abort the experiment loudly.
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Standard parameters used across experiments: band constant 1.5,
/// slack ε = 0.05, τ-bound 0.30 (the per-run corruption rate is chosen
/// by each experiment's churn driver).
pub fn standard_params(capacity: u64, k: usize) -> NowParams {
    // INVARIANT: constants validated by NowParams' own tests.
    NowParams::new(capacity, k, 1.5, 0.30, 0.05).expect("standard parameters are valid")
}

/// Builds a system with `clusters`×(target size) nodes at corruption
/// rate `tau`.
pub fn build_system(capacity: u64, k: usize, clusters: usize, tau: f64, seed: u64) -> NowSystem {
    let params = standard_params(capacity, k);
    let n0 = clusters * params.target_cluster_size();
    NowSystem::init_fast(params, n0, tau, seed)
}

/// Least-squares slope of `y` against `x` (both logged by the caller if
/// a power-law exponent is wanted). Returns 0 for fewer than 2 points.
pub fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    // INVARIANT: `n = min(xs.len(), ys.len())`, so both prefix
    // slices are in bounds.
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    // INVARIANT: as above — `n` bounds both inputs.
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        num += (xs[i] - mx) * (ys[i] - my);
        den += (xs[i] - mx) * (xs[i] - mx);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Fits the exponent `p` in `cost ≈ c · (log₂ N)^p` from capacity/cost
/// sample pairs — the instrument for every "polylog(N)" claim.
pub fn polylog_exponent(capacities: &[u64], costs: &[f64]) -> f64 {
    let xs: Vec<f64> = capacities.iter().map(|&c| (c as f64).log2().ln()).collect();
    let ys: Vec<f64> = costs.iter().map(|&c| c.max(1.0).ln()).collect();
    slope(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_line_is_exact() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&xs, &ys) - 2.0).abs() < 1e-12);
        assert_eq!(slope(&[1.0], &[2.0]), 0.0);
        assert_eq!(slope(&[1.0, 1.0], &[1.0, 2.0]), 0.0, "degenerate x");
    }

    #[test]
    fn polylog_exponent_recovers_power() {
        // cost = (log2 N)^3 exactly.
        let caps = [1u64 << 8, 1 << 10, 1 << 12, 1 << 16];
        let costs: Vec<f64> = caps.iter().map(|&c| (c as f64).log2().powi(3)).collect();
        let p = polylog_exponent(&caps, &costs);
        assert!((p - 3.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn build_system_shapes() {
        let sys = build_system(1 << 10, 2, 5, 0.1, 1);
        assert_eq!(sys.cluster_count(), 5);
        assert_eq!(sys.population(), 100);
    }
}
