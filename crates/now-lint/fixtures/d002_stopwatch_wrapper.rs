//! D002 mixed: routing through the sanctioned `now_trace::stopwatch`
//! wrapper is clean (no raw wall-clock token reaches this file), but a
//! raw `Instant::now` beside it still flags — the wrapper is the only
//! way out of deterministic library code.

pub fn sanctioned() -> u64 {
    let sw = now_trace::stopwatch();
    sw.elapsed_nanos()
}

pub fn raw() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
