//! D002 positive: wall-clock reads in deterministic code. Time must
//! derive from the step counter; wall measurement belongs in benches,
//! x_* bins, or an allowlisted wall_nanos site.

use std::time::Instant;

pub fn measure() -> u64 {
    let start = Instant::now();
    let t = std::time::SystemTime::now();
    let _ = t;
    start.elapsed().as_nanos() as u64
}
