//! D001 positive: hash collections in production code. HashMap and
//! HashSet iterate in per-process RandomState order — one traversal
//! leaking into a report breaks byte-identical determinism gates.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Index {
    by_name: HashMap<String, u32>,
}

pub fn dedup(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect();
    seen.len()
}
