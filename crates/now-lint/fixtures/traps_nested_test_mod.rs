//! Scoping traps: production code before and after a nested test
//! module stays bound by the rules; the test internals are exempt.

use std::collections::HashMap;

pub mod inner {
    #[cfg(test)]
    mod tests {
        use std::collections::HashMap;
        use std::collections::HashSet;

        #[test]
        fn uses_both() {
            let m: HashMap<u32, u32> = HashMap::new();
            let s: HashSet<u32> = HashSet::new();
            let _ = (m, s);
        }
    }

    pub fn after_the_test_mod() -> usize {
        let s = std::collections::HashSet::<u32>::new();
        s.len()
    }
}
