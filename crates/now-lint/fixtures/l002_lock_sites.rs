//! L002 fixture: unsanctioned and nested Mutex acquisitions.

use std::sync::Mutex;

pub fn rogue(m: &Mutex<u32>) -> u32 {
    // INVARIANT: fixture justification (P001 stays quiet; L002 fires).
    *m.lock().unwrap()
}

pub struct WaveShards;

impl WaveShards {
    // Same type name as the sanctioned registry facade, wrong file:
    // the site check is (path, scope), so this still flags.
    pub fn double(&self, a: &Mutex<u32>, b: &Mutex<u32>) {
        let _x = a.lock();
        let _y = b.lock();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    pub fn test_scoped_lock_is_exempt(m: &Mutex<u32>) {
        let _ = m.lock();
    }
}
