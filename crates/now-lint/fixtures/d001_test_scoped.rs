//! D001 negative: hash collections behind test gates are fine — test
//! assertions never feed deterministic reports.

pub fn prod() -> u32 {
    41
}

#[cfg(test)]
use std::collections::HashSet;

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_collections_allowed_here() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        let s: super::HashSet<u32> = Default::default();
        assert_eq!(super::prod() + 1, 42);
        let _ = (m, s);
    }
}
