//! D005 fixture: ambient draws vs canonically derived streams.

pub struct Carrier {
    rng: u32,
}

pub fn ambient_draw(x: &mut Carrier) -> u32 {
    x.rng.gen_range(0..4)
}

pub fn derived_locally() -> u32 {
    let mut r = DetRng::for_op(1, 2, 3);
    r.gen_range(0..9)
}

fn kernel(rng: &mut DetRng) -> u32 {
    rng.gen_range(0..9)
}

pub fn seeded_driver() -> u32 {
    let mut r = DetRng::new(7);
    kernel(&mut r)
}

fn tainted_kernel(rng: &mut DetRng) -> u32 {
    rng.gen_range(0..9)
}

pub fn tainted_driver(x: &mut Carrier) -> u32 {
    tainted_kernel(&mut x.rng)
}

pub fn boundary_kernel(rng: &mut DetRng) -> u32 {
    rng.gen_range(0..9)
}

#[cfg(test)]
mod tests {
    pub fn test_scoped_draw_is_exempt(x: &mut super::Carrier) -> u32 {
        x.rng.gen_range(0..4)
    }
}
