//! Tokenizer traps: every rule trigger below is inert — it sits inside
//! a string, raw string, byte string, comment, char literal, or is a
//! lifetime. A naive grep flags this file; the tokenizer must not.

pub fn traps<'a>(input: &'a str) -> String {
    // line comment: HashMap::new(), thread_rng(), Instant::now()
    /* block comment: std::thread::spawn(|| ()) /* nested: SystemTime */ */
    let plain = "HashMap::new() and thread_rng() and unsafe { spawn( }";
    let raw = r#"step_parallel " run_batched and Instant::now()"#;
    let deep = r##"spawn(" r#"OsRng"# still one raw string"##;
    let ch = 'u';
    let escaped = '\'';
    let byte = b"SystemTime::now()";
    let byte_raw = br#"rand::random::<u64>()"#;
    format!("{plain}{raw}{deep}{ch}{escaped}{byte:?}{byte_raw:?}{input}")
}
