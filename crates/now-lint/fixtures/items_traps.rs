//! Item-parser traps: nested impls in mods, trait methods, shadowed
//! names across modules, cross-module calls, cfg(test)-scoped items.

pub mod outer {
    pub struct Gadget;

    impl Gadget {
        pub fn build() -> Gadget {
            Gadget
        }
        fn helper(&self) {}
    }

    pub trait Widget {
        fn require(&self);
        fn provide(&self) {
            self.require();
        }
    }

    impl Widget for Gadget {
        fn require(&self) {}
    }

    pub mod inner {
        pub fn shadowed() -> u32 {
            1
        }
    }

    pub fn shadowed() -> u32 {
        2
    }
}

pub fn caller() -> u32 {
    outer::shadowed() + outer::inner::shadowed()
}

#[cfg(test)]
mod tests {
    pub fn invisible() {}
}
