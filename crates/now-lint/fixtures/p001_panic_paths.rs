//! P001 fixture: panic-capable sites with and without justification.

pub fn flags() {
    let v: Vec<u32> = Vec::new();
    let _a = v.first().unwrap();
    let _b = v.first().expect("reason");
    let _c = v[0];
    let _d = v[1 + 2];
    let _e = &v[1..2];
    panic!("boom");
}

pub fn justified(v: &[u32], i: usize) -> u32 {
    // INVARIANT: fixture justification — callers pass non-empty slices.
    let _a = v.first().unwrap();
    let _b = v[i]; // plain single-path index: exempt by design
    let _c = &v[..]; // full-range slice cannot panic
    match i {
        0 => v[i],
        _ => {
            // INVARIANT: fixture justification inside the arm's block.
            unreachable!()
        }
    }
}

#[cfg(test)]
mod tests {
    pub fn test_scoped_is_exempt() {
        let v: Vec<u32> = Vec::new();
        let _ = v.first().unwrap();
        let _ = v[0];
    }
}
