//! D004 positive: ambient entropy. Every random draw must come from a
//! seeded DetRng substream — OS entropy anywhere (tests included) makes
//! a run unreplayable.

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    let _ = &mut rng;
    x
}

pub fn more_entropy() {
    let _ = rand::rngs::OsRng;
    let _ = SmallRng::from_entropy();
}
