//! `#[cfg(not(test))]` compiles into production binaries — mentioning
//! `test` under a `not(…)` must NOT exempt the item.

#[cfg(not(test))]
use std::collections::HashMap;

#[cfg(not(test))]
pub fn prod_only() -> u32 {
    let m: HashMap<u32, u32> = Default::default();
    m.len() as u32
}
