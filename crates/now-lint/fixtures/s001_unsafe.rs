//! S001: every `unsafe` block/impl must be preceded by a `// SAFETY:`
//! comment. One violation below; the two documented sites are clean.

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: fixture stand-in — the caller guarantees `p` is valid
    // for reads for the duration of this call.
    unsafe { *p }
}

pub struct Wrapper(*const u32);

// SAFETY: fixture stand-in — the pointer is never dereferenced off the
// owning thread; Send only moves the opaque handle.
#[allow(unsafe_code)]
unsafe impl Send for Wrapper {}
