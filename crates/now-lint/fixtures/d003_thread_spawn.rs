//! D003 positive: thread spawning outside the WavePool machinery. All
//! workers must come from the pool so spawn accounting and the
//! cross-thread determinism gates keep holding.

pub fn rogue() -> i32 {
    let h = std::thread::spawn(|| 1 + 1);
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    h.join().unwrap()
}
