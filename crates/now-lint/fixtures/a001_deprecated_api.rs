//! A001 positive (in test/bench/bin/example targets): the deprecated
//! batch entry points collapsed by the ExecConfig redesign. Lib crates
//! deny(deprecated); this rule closes the warn-only gap elsewhere.

fn drive(sys: &mut NowSystem, joins: &[bool], leaves: &[u64], pool: &WavePool) {
    sys.step_parallel(joins, leaves);
    sys.step_parallel_pooled(joins, leaves, pool);
    let report = run_batched_until(sys, 10);
    let _ = report;
}
