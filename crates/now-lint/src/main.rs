//! The `now-lint` binary: the CI determinism gate.
//!
//! ```text
//! now-lint --workspace            # lint the whole tree under lint.toml
//! now-lint path/to/file.rs …      # lint specific files (same rules)
//! now-lint --write-api-locks      # regenerate crates/<name>/API.lock files
//!     --root <dir>                # workspace root (default: ascend from cwd)
//!     --config <file>             # allowlist (default: <root>/lint.toml)
//!     --json                      # canonical JSON findings on stdout
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or config error.
//! Findings print as `file:line rule-id message`, one per line; with
//! `--json`, as a canonical sorted `{"findings":[…],"count":N}`
//! document (exit codes unchanged).

#![forbid(unsafe_code)] // SAFETY-comment police carry no unsafe themselves
#![deny(deprecated)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use now_lint::semantic::UnitFile;
use now_lint::{
    classify, config, lint_source, load_config, render_json, run_workspace, semantic,
    write_api_locks, Finding,
};

fn usage() -> &'static str {
    "usage: now-lint --workspace [--root DIR] [--config FILE] [--json]\n       \
     now-lint FILE.rs [FILE.rs …] [--json]\n       \
     now-lint --write-api-locks [--root DIR] [--config FILE]"
}

/// Ascends from `start` to the first directory holding a `lint.toml`
/// (the workspace root marker this tool itself requires).
fn find_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|dir| dir.join("lint.toml").is_file())
        .map(Path::to_path_buf)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("now-lint: {msg}");
    ExitCode::from(2)
}

fn report(findings: &[Finding], json: bool) -> ExitCode {
    if json {
        print!("{}", render_json(findings));
    } else {
        for f in findings {
            println!("{}", f.render());
        }
    }
    if findings.is_empty() {
        eprintln!("now-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("now-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut write_locks = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--write-api-locks" => write_locks = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return fail("--root needs a directory argument"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return fail("--config needs a file argument"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown flag `{flag}`\n{}", usage()));
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    if !workspace && !write_locks && files.is_empty() {
        return fail(usage());
    }
    if (workspace || write_locks) && !files.is_empty() {
        return fail("--workspace/--write-api-locks and explicit files are mutually exclusive");
    }

    if workspace || write_locks {
        let root =
            match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
                Some(r) => r,
                None => return fail("no lint.toml found here or above; pass --root"),
            };
        let cfg = match config_path {
            Some(p) => {
                let text = match std::fs::read_to_string(&p) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("reading {}: {e}", p.display())),
                };
                match config::parse(&text) {
                    Ok(c) => c,
                    Err(e) => return fail(&e),
                }
            }
            None => match load_config(&root) {
                Ok(c) => c,
                Err(e) => return fail(&e),
            },
        };
        if write_locks {
            return match write_api_locks(&root, &cfg) {
                Ok(written) => {
                    for path in &written {
                        eprintln!("now-lint: wrote {path}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            };
        }
        return report(&run_workspace(&root, &cfg), json);
    }

    // Explicit-file mode: no allowlist, raw rule output — used by the
    // CI seeded-violation check and for quick local runs on one file.
    // Each file is analyzed as its own unit, so the semantic rules
    // (P001/L002/D005) fire here too; API001 needs --workspace.
    let mut findings = Vec::new();
    for file in &files {
        let rel = file.to_string_lossy().replace('\\', "/");
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => return fail(&format!("reading {rel}: {e}")),
        };
        let class = classify(&rel);
        findings.extend(lint_source(&rel, class, &src));
        let unit = UnitFile::parse(&rel, class, &src);
        findings.extend(semantic::analyze_unit(std::slice::from_ref(&unit)));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    report(&findings, json)
}
