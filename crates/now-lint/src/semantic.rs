//! The semantic rule families over the item graph (see [`crate::items`]).
//!
//! | rule | forbids | where it binds |
//! |------|---------|----------------|
//! | P001 | panic-capable sites (`.unwrap()` / `.expect(` / `panic!`-family / *computed* slice indexing) without a `// INVARIANT:` justification in the statement head | Prod-class non-test code |
//! | L002 | `.lock()` outside the sanctioned shard sites, and any single fn acquiring ≥ 2 Mutex guards | non-test code everywhere |
//! | D005 | RNG draws on streams that do not descend from a canonical derivation (`DetRng::for_op` / seeded constructor / labeled fork) via the call graph | non-test code everywhere |
//!
//! **P001** mirrors S001's SAFETY walk-back: from the panic-capable
//! token, walk back through its statement head to the nearest comment
//! group; any comment containing `INVARIANT:` justifies every
//! panic-capable site in that statement. *Computed* indexing means the
//! bracket content carries arithmetic, a literal offset, a range, or a
//! `&`-keyed map lookup — the shapes that hold an off-by-one. A plain
//! single-path index (`v[i]`, `slab[idx.pos]`) is exempt: bounded-loop
//! iteration and generation-checked slab access are this codebase's
//! documented deliberate-panic idioms, and flagging them would bury the
//! real findings in noise.
//!
//! **L002** encodes the workspace locking contract directly (the rule
//! *is* the contract, so the sites are named here, not in lint.toml):
//! every `Mutex` acquisition lives in `registry.rs`'s `WaveShards` /
//! `FootprintHandle` facades or the `wave_exec.rs` slot fill
//! (`claim_and_plan`), each of which takes exactly one guard at a time.
//! A fn taking two guards is a nested-acquisition deadlock candidate
//! and is flagged wherever it lives, sanctioned files included.
//!
//! **D005** runs on the call graph: the *sanctioned* set starts at fns
//! that derive a stream canonically (`DetRng::for_op`, `DetRng::new`,
//! `.fork(…)`, `SeedableRng` constructors), plus methods of types whose
//! constructor derives or receives an RNG parameter (the stream was
//! canonically seeded into the field at construction), plus
//! RNG-parameterized fns with no intra-unit callers (crate boundary:
//! the caller's crate is analyzed at its own level). Sanctioning then
//! propagates along call edges into RNG-parameterized callees. Any fn
//! that draws and is never reached by that propagation holds an
//! *ambient* stream — exactly the leak that would silently break
//! pooled ≡ scoped ≡ serial bit-equality.

use crate::items::{build_graph, parse_items, Item, UnitGraph};
use crate::rules::{FileClass, Finding};
use crate::tokenizer::{TokKind, Token};

/// One file of an analysis unit, already tokenized, scope-marked, and
/// item-parsed.
pub struct UnitFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    pub class: FileClass,
    pub tokens: Vec<Token>,
    pub items: Vec<Item>,
}

impl UnitFile {
    /// Tokenizes + scope-marks + item-parses one source text.
    pub fn parse(path: &str, class: FileClass, src: &str) -> UnitFile {
        let mut tokens = crate::tokenizer::tokenize(src);
        crate::scope::mark_test_scopes(&mut tokens);
        let items = parse_items(&tokens);
        UnitFile {
            path: path.to_string(),
            class,
            tokens,
            items,
        }
    }
}

/// Runs every semantic rule over one analysis unit (a crate's `src/`
/// tree, or a single standalone bin/test/bench/example file). Findings
/// come back unsorted; the driver merges and sorts.
pub fn analyze_unit(files: &[UnitFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        p001_panic_audit(file, &mut out);
    }
    let graph_files: Vec<(String, &[Token], &[Item])> = files
        .iter()
        .map(|f| (f.path.clone(), f.tokens.as_slice(), f.items.as_slice()))
        .collect();
    let graph = build_graph(&graph_files);
    let class_of = |path: &str| -> FileClass {
        files
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.class)
            .unwrap_or(FileClass::Prod)
    };
    l002_lock_discipline(&graph, &class_of, &mut out);
    d005_rng_streams(&graph, &class_of, &mut out);
    out
}

// ---------------------------------------------------------------------
// P001 — panic-path audit.
// ---------------------------------------------------------------------

/// Panic-family macros: `name!(…)` panics unconditionally when reached.
const P001_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// How far the INVARIANT walk-back looks, in tokens (same bound as
/// S001's SAFETY walk-back).
const P001_LOOKBACK: usize = 64;

/// From the panic-capable token at `i`, walks back through the
/// statement head to the nearest comment group; true if any comment in
/// the group contains `INVARIANT:`. A `;`, `{` or `}` before a comment
/// means the enclosing statement started without one.
fn has_invariant_comment(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    let mut steps = 0usize;
    let mut seen_comment = false;
    while j > 0 && steps < P001_LOOKBACK {
        j -= 1;
        steps += 1;
        match tokens[j].kind {
            TokKind::Comment => {
                seen_comment = true;
                if tokens[j].text.contains("INVARIANT:") {
                    return true;
                }
            }
            _ if seen_comment => return false,
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return false,
            _ => {}
        }
    }
    false
}

fn p001_push(out: &mut Vec<Finding>, path: &str, line: u32, what: &str) {
    out.push(Finding {
        path: path.to_string(),
        line,
        rule: "P001",
        message: format!(
            "{what} on a driving path without a `// INVARIANT:` justification in the \
             statement head — document why it cannot fire, or return a typed NowError"
        ),
    });
}

fn p001_panic_audit(file: &UnitFile, out: &mut Vec<Finding>) {
    if file.class != FileClass::Prod {
        return;
    }
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        match &tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                let prev_dot = prev_code(tokens, i).is_some_and(|p| p.is_punct('.'));
                let next_paren = next_code(tokens, i).is_some_and(|n| n.is_punct('('));
                if (name == "unwrap" || name == "expect") && prev_dot && next_paren {
                    if !has_invariant_comment(tokens, i) {
                        p001_push(out, &file.path, tok.line, &format!(".{name}()"));
                    }
                } else if P001_MACROS.contains(&name)
                    && next_code(tokens, i).is_some_and(|n| n.is_punct('!'))
                    && !has_invariant_comment(tokens, i)
                {
                    p001_push(out, &file.path, tok.line, &format!("{name}!"));
                }
            }
            TokKind::Punct('[')
                if is_computed_index(tokens, i) && !has_invariant_comment(tokens, i) =>
            {
                p001_push(out, &file.path, tok.line, "computed slice indexing");
            }
            _ => {}
        }
    }
}

/// True when `[` at `i` opens a *computed* index expression: postfix
/// position (previous code token is an identifier, `]` or `)`) and the
/// bracket content carries arithmetic, a numeric literal, a range, or a
/// `&`-keyed map lookup. The bare full-range `[..]` cannot panic and is
/// exempt.
fn is_computed_index(tokens: &[Token], i: usize) -> bool {
    let postfix = matches!(
        prev_code(tokens, i).map(|t| &t.kind),
        Some(TokKind::Ident) | Some(TokKind::Punct(']')) | Some(TokKind::Punct(')'))
    );
    if !postfix {
        return false;
    }
    // Scan the bracket content (depth 1 = directly inside our `[ ]`).
    let mut depth = 1usize;
    let mut j = i + 1;
    let mut computed = false;
    let mut nonrange_tokens = 0usize;
    let mut prev_was_dot = false;
    let mut first = true;
    while j < tokens.len() && depth > 0 {
        let tok = &tokens[j];
        j += 1;
        match &tok.kind {
            TokKind::Comment => continue,
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                continue;
            }
            TokKind::Punct('.') => {
                if prev_was_dot {
                    computed = true; // `..` range
                    prev_was_dot = false;
                    first = false;
                    continue;
                }
                prev_was_dot = true;
                first = false;
                continue;
            }
            TokKind::Punct(c) if "+-*/%".contains(*c) => {
                computed = true;
                nonrange_tokens += 1;
            }
            TokKind::Punct('&') if first => {
                computed = true; // `m[&key]` map lookup
                nonrange_tokens += 1;
            }
            TokKind::Num => {
                computed = true;
                nonrange_tokens += 1;
            }
            _ => nonrange_tokens += 1,
        }
        prev_was_dot = false;
        first = false;
    }
    // `[..]` alone: two dots, nothing else — never panics.
    computed && nonrange_tokens > 0
}

// ---------------------------------------------------------------------
// L002 — lock discipline.
// ---------------------------------------------------------------------

/// The sanctioned single-guard lock sites: `(file suffix, impl type or
/// fn name)`. Everything else holding a `MutexGuard` is a finding.
const L002_SANCTIONED: &[(&str, &str)] = &[
    ("crates/now-core/src/registry.rs", "WaveShards"),
    ("crates/now-core/src/registry.rs", "FootprintHandle"),
    ("crates/now-core/src/wave_exec.rs", "claim_and_plan"),
];

fn l002_lock_discipline(
    graph: &UnitGraph,
    class_of: &dyn Fn(&str) -> FileClass,
    out: &mut Vec<Finding>,
) {
    for f in &graph.fns {
        if f.facts.lock_calls == 0 || f.in_test || class_of(&f.path) == FileClass::TestOnly {
            continue;
        }
        if f.facts.lock_calls >= 2 {
            out.push(Finding {
                path: f.path.clone(),
                // INVARIANT: `lock_lines` records one line per counted
                // lock call, so indices 0 and 1 exist when the count
                // is ≥ 2.
                line: f.facts.lock_lines[1],
                rule: "L002",
                message: format!(
                    "fn `{}` acquires {} Mutex guards (first at line {}): nested acquisition \
                     risks deadlock — hold at most one guard per fn, in canonical order",
                    f.name, f.facts.lock_calls, f.facts.lock_lines[0]
                ),
            });
        }
        let sanctioned = L002_SANCTIONED.iter().any(|(file, scope)| {
            f.path.ends_with(file) && (f.name == *scope || f.type_name.as_deref() == Some(*scope))
        });
        if !sanctioned {
            out.push(Finding {
                path: f.path.clone(),
                // INVARIANT: `lock_calls >= 1` here, so the first
                // recorded lock line exists.
                line: f.facts.lock_lines[0],
                rule: "L002",
                message: format!(
                    "fn `{}` calls .lock() outside the sanctioned shard sites \
                     (registry.rs WaveShards/FootprintHandle, wave_exec.rs claim_and_plan): \
                     route shared-state mutation through the wave facades",
                    f.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D005 — RNG-stream discipline.
// ---------------------------------------------------------------------

fn d005_rng_streams(
    graph: &UnitGraph,
    class_of: &dyn Fn(&str) -> FileClass,
    out: &mut Vec<Finding>,
) {
    let n = graph.fns.len();
    // Types whose construction canonically seeds a stream: any fn of
    // the type derives or receives an RNG parameter.
    let mut sanctioned_types: Vec<&str> = Vec::new();
    for f in &graph.fns {
        if let Some(ty) = f.type_name.as_deref() {
            if (f.facts.derives || f.facts.rng_param) && !sanctioned_types.contains(&ty) {
                sanctioned_types.push(ty);
            }
        }
    }
    let callers: Vec<Vec<usize>> = (0..n).map(|i| graph.callers_of(i)).collect();
    let mut sanctioned = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        let type_ok = f
            .type_name
            .as_deref()
            .is_some_and(|ty| sanctioned_types.contains(&ty));
        let boundary = f.facts.rng_param && callers[i].is_empty();
        if f.facts.derives || type_ok || boundary {
            sanctioned[i] = true;
            queue.push(i);
        }
    }
    // Propagate along call edges into RNG-parameterized callees: a
    // sanctioned caller hands its derived stream down.
    while let Some(i) = queue.pop() {
        for &callee in &graph.edges[i] {
            if !sanctioned[callee] && graph.fns[callee].facts.rng_param {
                sanctioned[callee] = true;
                queue.push(callee);
            }
        }
    }
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.facts.draws || sanctioned[i] || f.in_test {
            continue;
        }
        if class_of(&f.path) == FileClass::TestOnly {
            continue;
        }
        let via = if f.facts.rng_param {
            "receives an RNG parameter, but no intra-unit call path back to a sanctioned \
             derivation site exists"
        } else {
            "draws on an ambient stream (no derivation, no RNG parameter, and no \
             canonically-seeded constructor on its type)"
        };
        out.push(Finding {
            path: f.path.clone(),
            line: f.facts.draw_line,
            rule: "D005",
            message: format!(
                "fn `{}` draws from an RNG stream that does not descend from \
                 DetRng::for_op or a seeded constructor: it {via} — derive the stream \
                 canonically so parallel plan kernels stay replayable",
                f.name
            ),
        });
    }
}

fn prev_code(tokens: &[Token], i: usize) -> Option<&Token> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if tokens[j].kind != TokKind::Comment {
            return Some(&tokens[j]);
        }
    }
    None
}

fn next_code(tokens: &[Token], i: usize) -> Option<&Token> {
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].kind != TokKind::Comment {
            return Some(&tokens[j]);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(class: FileClass, src: &str) -> Vec<(String, u32)> {
        let file = UnitFile::parse("mem.rs", class, src);
        analyze_unit(&[file])
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    fn rules(class: FileClass, src: &str) -> Vec<String> {
        analyze(class, src).into_iter().map(|(r, _)| r).collect()
    }

    #[test]
    fn p001_flags_unwrap_without_invariant() {
        assert_eq!(rules(FileClass::Prod, "fn f() { x.unwrap(); }"), ["P001"]);
        assert_eq!(
            rules(FileClass::Prod, "fn f() { x.expect(\"reason\"); }"),
            ["P001"]
        );
        assert!(rules(
            FileClass::Prod,
            "fn f() {\n// INVARIANT: x was checked non-empty above.\nx.unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn p001_one_invariant_covers_the_statement() {
        let src = "fn f() {\n// INVARIANT: both live, see wave contract.\n\
                   let v = a.unwrap() + b.expect(\"x\"); }";
        assert!(rules(FileClass::Prod, src).is_empty());
    }

    #[test]
    fn p001_statement_boundary_cuts_the_walkback() {
        let src = "fn f() {\n// INVARIANT: covers only the first.\nlet a = x.unwrap();\n\
                   let b = y.unwrap(); }";
        assert_eq!(rules(FileClass::Prod, src), ["P001"]);
    }

    #[test]
    fn p001_flags_panic_macros() {
        assert_eq!(
            rules(FileClass::Prod, "fn f() { panic!(\"boom\"); }"),
            ["P001"]
        );
        assert_eq!(
            rules(
                FileClass::Prod,
                "fn f() { match x { _ => unreachable!() } }"
            ),
            ["P001"]
        );
        // The walk-back stops at `{` like S001's, so inside a match arm
        // the justification sits at the arm, not above the `match`.
        assert!(rules(
            FileClass::Prod,
            "fn f() { match x { _ =>\n// INVARIANT: enum is exhaustive without this arm.\n\
             unreachable!() } }"
        )
        .is_empty());
    }

    #[test]
    fn p001_computed_indexing_only() {
        // Plain loop/slab indices are the documented deliberate-panic
        // idiom — exempt.
        assert!(rules(FileClass::Prod, "fn f() { let x = v[i]; }").is_empty());
        assert!(rules(FileClass::Prod, "fn f() { let x = slab[idx.pos]; }").is_empty());
        // Arithmetic, literal, range, and map-key shapes are flagged.
        assert_eq!(
            rules(FileClass::Prod, "fn f() { let x = v[i + 1]; }"),
            ["P001"]
        );
        assert_eq!(rules(FileClass::Prod, "fn f() { let x = v[0]; }"), ["P001"]);
        assert_eq!(
            rules(FileClass::Prod, "fn f() { let s = &v[1..n]; }"),
            ["P001"]
        );
        assert_eq!(
            rules(FileClass::Prod, "fn f() { let x = m[&key]; }"),
            ["P001"]
        );
        // The bare full-range slice cannot panic.
        assert!(rules(FileClass::Prod, "fn f() { let s = &v[..]; }").is_empty());
        // Array literals and types are not postfix indexing.
        assert!(rules(
            FileClass::Prod,
            "fn f() { let a = [1, 2]; let b: [u8; 4] = x; }"
        )
        .is_empty());
    }

    #[test]
    fn p001_binds_only_in_prod_nontest() {
        assert!(rules(FileClass::TestOnly, "fn f() { x.unwrap(); }").is_empty());
        assert!(rules(FileClass::Bin, "fn f() { x.unwrap(); }").is_empty());
        let gated = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(rules(FileClass::Prod, gated).is_empty());
    }

    #[test]
    fn l002_flags_locks_outside_sanctioned_sites() {
        assert_eq!(
            rules(
                FileClass::Prod,
                "fn f() { let g = m.lock().unwrap(); g.push(1); }"
            ),
            // Both the P001 on the unwrap (per-file pass, runs first)
            // and the lock-discipline finding from the graph pass.
            ["P001", "L002"]
        );
    }

    #[test]
    fn l002_flags_double_acquisition_even_in_sanctioned_scope() {
        let src = "impl WaveShards { fn f(&self) {\n\
                   // INVARIANT: test double-lock shape.\n\
                   let a = x.lock(); let b = y.lock(); } }";
        let file = UnitFile::parse("crates/now-core/src/registry.rs", FileClass::Prod, src);
        let findings = analyze_unit(&[file]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "L002");
        assert!(findings[0].message.contains("2 Mutex guards"));
    }

    #[test]
    fn l002_sanctioned_single_guards_pass() {
        let src = "impl WaveShards { fn f(&self) {\n\
                   // INVARIANT: store poisoning re-raises a worker panic.\n\
                   let a = self.store.lock().expect(\"poisoned\"); } }";
        let file = UnitFile::parse("crates/now-core/src/registry.rs", FileClass::Prod, src);
        assert!(analyze_unit(&[file]).is_empty());
    }

    #[test]
    fn d005_ambient_draw_is_flagged() {
        assert_eq!(
            rules(
                FileClass::Prod,
                "fn f() { let x = AMBIENT.gen_range(0..4); }"
            ),
            ["D005"]
        );
    }

    #[test]
    fn d005_derivation_and_param_paths_pass() {
        // Deriving locally is sanctioned.
        assert!(rules(
            FileClass::Prod,
            "fn f() { let mut r = DetRng::for_op(1, 2, 3); r.gen_range(0..4); }"
        )
        .is_empty());
        // A parameterized kernel called from a deriving fn is sanctioned
        // through the call edge.
        let src = "fn kernel(rng: &mut DetRng) { rng.gen_range(0..4); }\n\
                   fn driver() { let mut r = DetRng::new(7); kernel(&mut r); }";
        assert!(rules(FileClass::Prod, src).is_empty());
        // A parameterized kernel with NO intra-unit caller is a crate
        // boundary: the caller's crate carries the obligation.
        assert!(rules(
            FileClass::Prod,
            "pub fn kernel(rng: &mut DetRng) { rng.gen_range(0..4); }"
        )
        .is_empty());
    }

    #[test]
    fn d005_kernel_reached_only_from_unsanctioned_caller_is_flagged() {
        let src = "fn kernel(rng: &mut DetRng) { rng.gen_range(0..4); }\n\
                   fn driver() { kernel(ambient()); }";
        assert_eq!(rules(FileClass::Prod, src), ["D005"]);
    }

    #[test]
    fn d005_field_stream_sanctioned_via_constructor() {
        let src = "impl Net { fn new(seed: u64) -> Net { Net { rng: DetRng::new(seed) } }\n\
                   fn jitter(&mut self) -> u64 { self.rng.gen_range(0..9) } }";
        assert!(rules(FileClass::Prod, src).is_empty());
        // Without any deriving constructor, the field stream is ambient.
        let bad = "impl Net { fn jitter(&mut self) -> u64 { self.rng.gen_range(0..9) } }";
        assert_eq!(rules(FileClass::Prod, bad), ["D005"]);
    }
}
