//! `lint.toml`: the committed allowlist, every entry with a reason.
//!
//! The file is deliberately tiny TOML — two array-of-table shapes and
//! `key = "string"` pairs — parsed by hand (this environment has no
//! registry access, so no `toml` crate). Anything outside that subset
//! is a hard error: an allowlist that silently mis-parses is worse than
//! none.
//!
//! ```toml
//! [[exclude]]
//! path = "vendor/"
//! reason = "vendored external crates; not our code"
//!
//! [[allow]]
//! rule = "D002"
//! path = "crates/now-core/src/batch.rs"
//! reason = "wall_nanos measurement site; never feeds deterministic state"
//! ```
//!
//! * `[[exclude]]` skips whole path prefixes before analysis.
//! * `[[allow]]` suppresses one rule for one path (exact file or `/`-
//!   terminated directory prefix).
//! * `reason` is **mandatory and non-empty** on every entry — the
//!   allowlist is documentation, not an escape hatch.
//! * Entries that suppress nothing in a run are reported as `L001`
//!   findings so the list can only shrink, never rot.

use crate::rules::RULE_IDS;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// Line of the `[[allow]]` header, for L001 reports.
    pub line: u32,
}

/// One `[[exclude]]` entry.
#[derive(Debug, Clone)]
pub struct ExcludeEntry {
    pub path: String,
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
    pub excludes: Vec<ExcludeEntry>,
}

impl Config {
    /// True if `rel_path` is excluded from analysis.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.excludes
            .iter()
            .any(|e| path_matches(&e.path, rel_path))
    }

    /// Index of the allow entry covering (`rule`, `rel_path`), if any.
    pub fn allow_index(&self, rule: &str, rel_path: &str) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.rule == rule && path_matches(&a.path, rel_path))
    }
}

/// An entry path matches exactly, or as a directory prefix when it ends
/// with `/`.
fn path_matches(entry: &str, rel_path: &str) -> bool {
    if let Some(dir) = entry.strip_suffix('/') {
        rel_path
            .strip_prefix(dir)
            .is_some_and(|rest| rest.starts_with('/'))
    } else {
        entry == rel_path
    }
}

#[derive(PartialEq)]
enum Section {
    None,
    Allow,
    Exclude,
}

struct PendingEntry {
    section_line: u32,
    rule: Option<String>,
    path: Option<String>,
    reason: Option<String>,
}

fn err(line: u32, msg: impl Into<String>) -> String {
    format!("lint.toml:{line} {}", msg.into())
}

/// Strips a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            // INVARIANT: `idx` is a char_indices boundary of this
            // same string.
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Parses a `key = "value"` line.
fn parse_kv(line: &str, lineno: u32) -> Result<(String, String), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| err(lineno, format!("expected `key = \"value\"`, got `{line}`")))?;
    let key = key.trim().to_string();
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| {
            err(
                lineno,
                format!("value for `{key}` must be a double-quoted string"),
            )
        })?;
    if inner.contains('"') {
        return Err(err(
            lineno,
            format!("value for `{key}` contains an unescaped quote"),
        ));
    }
    Ok((key, inner.to_string()))
}

/// Parses the allowlist. Errors carry `lint.toml:<line>` locations.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    let mut pending: Option<PendingEntry> = None;

    let flush = |section: &Section,
                 pending: &mut Option<PendingEntry>,
                 cfg: &mut Config|
     -> Result<(), String> {
        let Some(entry) = pending.take() else {
            return Ok(());
        };
        let line = entry.section_line;
        let reason = entry
            .reason
            .ok_or_else(|| err(line, "entry is missing its mandatory `reason`"))?;
        if reason.trim().is_empty() {
            return Err(err(line, "`reason` must not be empty"));
        }
        let path = entry
            .path
            .ok_or_else(|| err(line, "entry is missing `path`"))?;
        match section {
            Section::Allow => {
                let rule = entry
                    .rule
                    .ok_or_else(|| err(line, "[[allow]] entry is missing `rule`"))?;
                if !RULE_IDS.contains(&rule.as_str()) {
                    return Err(err(
                        line,
                        format!("unknown rule id `{rule}` (known: {})", RULE_IDS.join(", ")),
                    ));
                }
                cfg.allows.push(AllowEntry {
                    rule,
                    path,
                    reason,
                    line,
                });
            }
            Section::Exclude => {
                if entry.rule.is_some() {
                    return Err(err(line, "[[exclude]] entries take no `rule`"));
                }
                cfg.excludes.push(ExcludeEntry { path, reason });
            }
            // INVARIANT: a pending entry is only created after a
            // section header set `section` to Allow or Exclude.
            Section::None => unreachable!("pending entry outside a section"),
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "[[allow]]" | "[[exclude]]" => {
                flush(&section, &mut pending, &mut cfg)?;
                section = if line == "[[allow]]" {
                    Section::Allow
                } else {
                    Section::Exclude
                };
                pending = Some(PendingEntry {
                    section_line: lineno,
                    rule: None,
                    path: None,
                    reason: None,
                });
            }
            _ if line.starts_with('[') => {
                return Err(err(lineno, format!("unknown section `{line}`")));
            }
            _ => {
                let entry = pending
                    .as_mut()
                    .ok_or_else(|| err(lineno, "key outside any [[allow]]/[[exclude]] entry"))?;
                let (key, value) = parse_kv(line, lineno)?;
                let slot = match key.as_str() {
                    "rule" => &mut entry.rule,
                    "path" => &mut entry.path,
                    "reason" => &mut entry.reason,
                    other => {
                        return Err(err(lineno, format!("unknown key `{other}`")));
                    }
                };
                if slot.is_some() {
                    return Err(err(lineno, format!("duplicate key `{key}`")));
                }
                *slot = Some(value);
            }
        }
    }
    flush(&section, &mut pending, &mut cfg)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# header comment
[[exclude]]
path = "vendor/"
reason = "vendored external crates"

[[allow]]
rule = "D002"
path = "crates/now-core/src/batch.rs" # trailing note
reason = "wall_nanos site"
"#;

    #[test]
    fn parses_the_documented_shape() {
        let cfg = parse(GOOD).unwrap();
        assert_eq!(cfg.excludes.len(), 1);
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!cfg.is_excluded("crates/now-core/src/batch.rs"));
        assert!(cfg
            .allow_index("D002", "crates/now-core/src/batch.rs")
            .is_some());
        assert!(cfg
            .allow_index("D001", "crates/now-core/src/batch.rs")
            .is_none());
        assert!(cfg
            .allow_index("D002", "crates/now-core/src/other.rs")
            .is_none());
    }

    #[test]
    fn reason_is_mandatory_and_nonempty() {
        let missing = "[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\n";
        assert!(parse(missing).unwrap_err().contains("reason"));
        let empty = "[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\nreason = \"  \"\n";
        assert!(parse(empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn unknown_rules_keys_and_sections_are_errors() {
        assert!(
            parse("[[allow]]\nrule = \"Z999\"\npath = \"x\"\nreason = \"r\"\n")
                .unwrap_err()
                .contains("unknown rule id")
        );
        assert!(parse("[[allow]]\nbogus = \"v\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse("[general]\n")
            .unwrap_err()
            .contains("unknown section"));
        assert!(parse("rule = \"D001\"\n")
            .unwrap_err()
            .contains("outside any"));
    }

    #[test]
    fn directory_prefixes_require_the_trailing_slash_semantics() {
        let cfg =
            parse("[[exclude]]\npath = \"crates/now-lint/fixtures/\"\nreason = \"r\"\n").unwrap();
        assert!(cfg.is_excluded("crates/now-lint/fixtures/a.rs"));
        assert!(!cfg.is_excluded("crates/now-lint/fixtures.rs"));
        assert!(!cfg.is_excluded("crates/now-lint/src/lib.rs"));
    }

    #[test]
    fn exclude_rejects_rule_key() {
        let text = "[[exclude]]\nrule = \"D001\"\npath = \"x/\"\nreason = \"r\"\n";
        assert!(parse(text).unwrap_err().contains("no `rule`"));
    }

    #[test]
    fn hash_inside_quoted_value_is_not_a_comment() {
        let cfg = parse("[[exclude]]\npath = \"weird#dir/\"\nreason = \"has # in it\"\n").unwrap();
        assert_eq!(cfg.excludes[0].reason, "has # in it");
        assert!(cfg.is_excluded("weird#dir/f.rs"));
    }
}
