//! Marks tokens that live inside test-gated items.
//!
//! The determinism rules only bind *non-test* code: a `HashSet` inside
//! `#[cfg(test)] mod tests { … }` can never leak iteration order into a
//! campaign report. This pass walks the token stream once and flags
//! every token covered by a test-gating attribute:
//!
//! * `#[test]` (the bare attribute),
//! * `#[cfg(test)]` and any `cfg(…)` that *mentions* `test` without a
//!   `not`, e.g. `#[cfg(any(test, feature = "x"))]`;
//! * `#[cfg(not(test))]` is deliberately **not** gating — that item
//!   compiles into production binaries.
//!
//! The gated item is the attribute's target: scan past any further
//! attributes and doc comments, then consume either up to a `;` at
//! nesting depth zero (e.g. `#[cfg(test)] use …;`) or one balanced
//! `{ … }` block (modules, fns, impls). Nested test modules inside an
//! already-gated region are simply re-marked — marking is idempotent.

use crate::tokenizer::{TokKind, Token};

/// Returns the index one past the attribute's closing `]`, plus whether
/// the attribute gates test-only code. `i` points at the `#`.
fn scan_attribute(tokens: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    // Inner attributes (`#![…]`) configure the enclosing scope; we skip
    // them without gating (a file-wide `#![cfg(test)]` does not occur
    // in this workspace and whole-file gating is the classifier's job).
    let inner = tokens.get(j).is_some_and(|t| t.is_punct('!'));
    if inner {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return (i + 1, false); // a lone `#` (raw string edge); move on
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokKind::Ident => idents.push(&tokens[j].text),
            _ => {}
        }
        j += 1;
    }
    if inner {
        return (j, false);
    }
    let has = |name: &str| idents.contains(&name);
    // INVARIANT: `idents[0]` is guarded by the `len() == 1` check.
    let gating =
        (idents.len() == 1 && idents[0] == "test") || (has("cfg") && has("test") && !has("not"));
    (j, gating)
}

/// Marks `in_test` over the item that starts at token `i` (first token
/// after the gating attribute and its trailing attributes/comments).
/// Returns the index one past the item.
fn mark_item(tokens: &mut [Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        tokens[i].in_test = true;
        match tokens[i].kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 && tokens[i].kind == TokKind::Punct('}') {
                    return i + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// The pass: flags every token belonging to a test-gated item.
pub fn mark_test_scopes(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            let (mut j, gating) = scan_attribute(tokens, i);
            if gating {
                // Consume any further attributes / comments between the
                // gate and its item (`#[cfg(test)] #[allow(…)] mod t`).
                loop {
                    while tokens.get(j).is_some_and(|t| t.kind == TokKind::Comment) {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|t| t.is_punct('#')) {
                        let (next, _) = scan_attribute(tokens, j);
                        j = next;
                    } else {
                        break;
                    }
                }
                // Mark the attribute span itself, then the item.
                for t in tokens.iter_mut().take(j).skip(i) {
                    t.in_test = true;
                }
                i = mark_item(tokens, j);
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    /// Names of identifier tokens that are NOT test-scoped.
    fn prod_idents(src: &str) -> Vec<String> {
        let mut toks = tokenize(src);
        mark_test_scopes(&mut toks);
        toks.into_iter()
            .filter(|t| t.kind == TokKind::Ident && !t.in_test)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn cfg_test_module_is_gated() {
        let src =
            "use a::B;\n#[cfg(test)]\nmod tests { use std::collections::HashMap; }\nfn f() {}";
        let prod = prod_idents(src);
        assert!(prod.contains(&"B".to_string()));
        assert!(prod.contains(&"f".to_string()));
        assert!(!prod.contains(&"HashMap".to_string()));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)] use std::collections::HashSet;\nfn g() { real(); }";
        let prod = prod_idents(src);
        assert!(!prod.contains(&"HashSet".to_string()));
        assert!(prod.contains(&"real".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let src = "#[cfg(not(test))] use std::collections::HashMap;";
        assert!(prod_idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn cfg_any_including_test_is_gated() {
        let src = "#[cfg(any(test, feature = \"slow\"))] fn h() { HashMap::new(); }";
        assert!(!prod_idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn bare_test_attribute_gates_the_fn() {
        let src = "#[test]\nfn t() { HashSet::new(); }\nfn u() { HashMap::new(); }";
        let prod = prod_idents(src);
        assert!(!prod.contains(&"HashSet".to_string()));
        assert!(prod.contains(&"HashMap".to_string()));
    }

    #[test]
    fn stacked_attributes_between_gate_and_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\n// a doc-ish comment\nmod t { spawn(); }";
        assert!(!prod_idents(src).contains(&"spawn".to_string()));
    }

    #[test]
    fn code_after_a_gated_module_is_production_again() {
        let src = "#[cfg(test)] mod t { a(); }\nfn later() { HashMap::new(); }";
        assert!(prod_idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn braces_inside_strings_do_not_unbalance_the_item() {
        let src = "#[cfg(test)] mod t { let s = \"}\"; inner(); }\nfn out() { tail(); }";
        let prod = prod_idents(src);
        assert!(!prod.contains(&"inner".to_string()));
        assert!(prod.contains(&"tail".to_string()));
    }

    #[test]
    fn non_gating_attributes_are_transparent() {
        let src = "#[derive(Debug)] struct S { m: HashMap<u32, u32> }";
        assert!(prod_idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn inner_attribute_does_not_gate() {
        let src = "#![allow(dead_code)]\nfn f() { HashMap::new(); }";
        assert!(prod_idents(src).contains(&"HashMap".to_string()));
    }
}
