//! The rule set: what this workspace's determinism contract forbids.
//!
//! Everything the reproduction claims — pooled ≡ scoped ≡ serial
//! execution, byte-identical campaign reports across thread counts,
//! replayable `EventNet` runs — rests on one invariant: *no
//! nondeterminism source ever enters a deterministic code path*. Each
//! rule below names one way that invariant has been (or could be)
//! broken, and the engine flags it at lint time instead of leaving it
//! to be bisected out of a million-node campaign:
//!
//! | rule | forbids | where it binds |
//! |------|---------|----------------|
//! | D001 | `HashMap` / `HashSet` (iteration-order nondeterminism) | all non-test code |
//! | D002 | `Instant::now` / `SystemTime` (wall clock) | non-test lib code; benches and `x_*` bins are exempt; the one sanctioned library site is `now_trace::stopwatch` (`crates/now-trace/src/profile.rs`, allowlisted) |
//! | D003 | thread spawning outside the `WavePool` machinery | all non-test code |
//! | D004 | ambient entropy (`thread_rng`, `rand::random`, `OsRng`, …) | everywhere, tests included |
//! | S001 | `unsafe` without a preceding `// SAFETY:` comment | everywhere |
//! | A001 | deprecated batch-API identifiers (`step_parallel*`, `run_batched*`) | tests / benches / bins / examples, where `#[deny(deprecated)]` cannot reach |

use crate::tokenizer::{TokKind, Token};

/// Where a file sits in the workspace; decides which rules bind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src`, root `src/`): the deterministic
    /// core. Every rule binds.
    Prod,
    /// Integration tests (`tests/`, `crates/*/tests`): deterministic
    /// rules still matter (seeded RNG only!) but test-only structures
    /// and timing are fine.
    TestOnly,
    /// Criterion benches (`crates/*/benches`): wall-clock measurement
    /// is their job.
    Bench,
    /// Experiment binaries (`crates/*/src/bin`, the `x_*` tools): emit
    /// byte-diffed JSON, so determinism rules bind, but they are the
    /// allow-listed wall-clock measurement sites.
    Bin,
    /// `examples/`: treated like binaries.
    Example,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The canonical `file:line rule message` report line.
    pub fn render(&self) -> String {
        format!("{}:{} {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// All rule ids the allowlist may reference (L001 is emitted by the
/// driver for stale allowlist entries and cannot itself be allowed).
pub const RULE_IDS: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "S001", "A001", "P001", "L002", "API001",
];

/// Hash-based collections whose iteration order is randomized per
/// process (`RandomState`) — poison for byte-identical reports.
const D001_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Ambient-entropy entry points. `DetRng` substreams are the only
/// approved randomness source, in tests included: a test drawing OS
/// entropy is a test that cannot be replayed.
const D004_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Deprecated batch-API prefixes (the PR 6 collapse left these as
/// `#[deprecated]` delegates; lib crates carry `#![deny(deprecated)]`,
/// this rule extends the ban to non-lib targets where rustc only
/// warns).
const A001_PREFIXES: &[&str] = &["step_parallel", "run_batched"];

/// How many tokens S001 walks back looking for the `// SAFETY:` group
/// before giving up (bounds pathological files; a real safety comment
/// sits within a handful of attribute/statement tokens of its
/// `unsafe`).
const S001_LOOKBACK: usize = 64;

fn next_noncomment(tokens: &[Token], mut i: usize) -> Option<&Token> {
    loop {
        i += 1;
        match tokens.get(i) {
            Some(t) if t.kind == TokKind::Comment => continue,
            other => return other,
        }
    }
}

fn prev_noncomment(tokens: &[Token], i: usize) -> Option<&Token> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if tokens[j].kind != TokKind::Comment {
            return Some(&tokens[j]);
        }
    }
    None
}

/// S001: walk back from the `unsafe` token, through its statement head
/// and any attributes, to the nearest comment group; pass if any
/// comment in the group says `SAFETY:`. A `;`, `{` or `}` before any
/// comment means the previous statement ended without one.
fn has_safety_comment(tokens: &[Token], unsafe_idx: usize) -> bool {
    let mut j = unsafe_idx;
    let mut steps = 0usize;
    let mut seen_comment = false;
    while j > 0 && steps < S001_LOOKBACK {
        j -= 1;
        steps += 1;
        match tokens[j].kind {
            TokKind::Comment => {
                seen_comment = true;
                if tokens[j].text.contains("SAFETY:") {
                    return true;
                }
            }
            // Once inside a comment group, a non-comment token ends it.
            _ if seen_comment => return false,
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return false,
            _ => {}
        }
    }
    false
}

/// Runs every rule over one file's marked token stream.
pub fn lint_tokens(path: &str, class: FileClass, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        let test_code = tok.in_test || class == FileClass::TestOnly;

        // D001 — hash collections in deterministic code.
        if !test_code && D001_TYPES.contains(&name) {
            push(
                tok.line,
                "D001",
                format!(
                    "{name} iterates in RandomState order; use BTreeMap/BTreeSet (or a sorted \
                     Vec) so every traversal is canonical"
                ),
            );
        }

        // D002 — wall clock in deterministic code. Benches and x_* bins
        // measure time by design; library code must route advisory
        // measurement through `now_trace::stopwatch`, whose home
        // (crates/now-trace/src/profile.rs) is the one allowlisted site.
        if !test_code && class != FileClass::Bench && class != FileClass::Bin {
            let instant_now = name == "Instant"
                && next_noncomment(tokens, i).is_some_and(|t| t.is_punct(':'))
                && tokens
                    .iter()
                    .skip(i + 1)
                    .filter(|t| t.kind != TokKind::Comment)
                    .nth(2)
                    .is_some_and(|t| t.is_ident("now"));
            if instant_now {
                push(
                    tok.line,
                    "D002",
                    "Instant::now reads the wall clock; deterministic paths must derive time \
                     from the step counter — advisory measurement goes through \
                     now_trace::stopwatch (the one allowlisted site), benches, or x_* bins"
                        .to_string(),
                );
            }
            if name == "SystemTime" {
                push(
                    tok.line,
                    "D002",
                    "SystemTime reads the wall clock; deterministic paths must not observe \
                     real time"
                        .to_string(),
                );
            }
        }

        // D003 — thread spawning outside the WavePool machinery.
        if !test_code
            && name == "spawn"
            && next_noncomment(tokens, i).is_some_and(|t| t.is_punct('('))
        {
            push(
                tok.line,
                "D003",
                "thread spawning outside WavePool: all workers must come from the pool so \
                 spawn accounting and cross-thread determinism gates hold"
                    .to_string(),
            );
        }

        // D004 — ambient entropy. Binds everywhere, tests included.
        if D004_IDENTS.contains(&name) {
            push(
                tok.line,
                "D004",
                format!("{name} draws OS entropy; all randomness must come from seeded DetRng substreams"),
            );
        }
        if name == "random"
            && prev_noncomment(tokens, i).is_some_and(|t| t.is_punct(':'))
            && i >= 2
            && tokens
                .iter()
                .take(i)
                .filter(|t| t.kind != TokKind::Comment)
                .rev()
                .nth(2)
                .is_some_and(|t| t.is_ident("rand"))
        {
            push(
                tok.line,
                "D004",
                "rand::random draws from the thread-local OS-seeded RNG; use a DetRng substream"
                    .to_string(),
            );
        }

        // S001 — unsafe without a SAFETY comment. Binds everywhere:
        // an unexplained unsafe in a test is still an unexplained
        // soundness obligation.
        if name == "unsafe" && !has_safety_comment(tokens, i) {
            push(
                tok.line,
                "S001",
                "unsafe without a preceding `// SAFETY:` comment documenting why the \
                 invariants hold"
                    .to_string(),
            );
        }

        // A001 — deprecated batch APIs in non-lib targets (lib crates
        // already carry #![deny(deprecated)]; rustc only warns here).
        if matches!(
            class,
            FileClass::TestOnly | FileClass::Bench | FileClass::Bin | FileClass::Example
        ) && A001_PREFIXES.iter().any(|p| name.starts_with(p))
        {
            push(
                tok.line,
                "A001",
                format!(
                    "{name} is a deprecated batch entry point; use NowSystem::step_batch / \
                     now_sim::BatchRun / Scenario::run_batch"
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::mark_test_scopes;
    use crate::tokenizer::tokenize;

    fn lint(class: FileClass, src: &str) -> Vec<Finding> {
        let mut toks = tokenize(src);
        mark_test_scopes(&mut toks);
        lint_tokens("mem.rs", class, &toks)
    }

    fn rules(class: FileClass, src: &str) -> Vec<&'static str> {
        lint(class, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d002_requires_the_now_call() {
        // A stored Instant value (e.g. a field type) is not the read.
        assert!(rules(FileClass::Prod, "struct T { t: Instant }").is_empty());
        assert_eq!(rules(FileClass::Prod, "let t = Instant::now();"), ["D002"]);
        // Comments between the path segments don't hide the call.
        assert_eq!(
            rules(FileClass::Prod, "let t = Instant::/*x*/now();"),
            ["D002"]
        );
    }

    #[test]
    fn d002_exempts_benches_and_bins() {
        let src = "let t = Instant::now();";
        assert!(rules(FileClass::Bench, src).is_empty());
        assert!(rules(FileClass::Bin, src).is_empty());
        assert_eq!(rules(FileClass::Example, src), ["D002"]);
    }

    #[test]
    fn d003_needs_a_call_site() {
        assert_eq!(rules(FileClass::Prod, "scope.spawn(|| work());"), ["D003"]);
        assert_eq!(rules(FileClass::Prod, "std::thread::spawn(f);"), ["D003"]);
        // The word in other positions (e.g. a field or fn name being
        // defined without call syntax) is not a spawn call.
        assert!(rules(FileClass::Prod, "let spawn = 3; use_it(spawn);").is_empty());
    }

    #[test]
    fn d004_binds_in_tests_too() {
        assert_eq!(
            rules(FileClass::TestOnly, "let r = thread_rng();"),
            ["D004"]
        );
        assert_eq!(
            rules(FileClass::Prod, "let x = rand::random::<u64>();"),
            ["D004"]
        );
        // `random` as a plain name (no rand:: path) is fine.
        assert!(rules(FileClass::Prod, "let random = 4; f(random);").is_empty());
    }

    #[test]
    fn s001_accepts_comment_groups_and_attributes() {
        let ok = "// SAFETY: the pointees outlive the call.\n\
                  // (second line of the group)\n\
                  #[allow(unsafe_code)]\n\
                  let x = unsafe { *p };";
        assert!(rules(FileClass::Prod, ok).is_empty());
        let missing = "let y = 1;\nlet x = unsafe { *p };";
        assert_eq!(rules(FileClass::Prod, missing), ["S001"]);
        // A comment group whose text lacks the marker does not count.
        let wrong = "// this is fine, trust me\nlet x = unsafe { *p };";
        assert_eq!(rules(FileClass::Prod, wrong), ["S001"]);
    }

    #[test]
    fn s001_statement_boundary_cuts_the_search() {
        // The SAFETY comment belongs to the *previous* statement; the
        // second unsafe crossed a `;` before reaching any comment.
        let src = "// SAFETY: covered.\nlet a = unsafe { f() };\nlet b = unsafe { g() };";
        assert_eq!(rules(FileClass::Prod, src), ["S001"]);
    }

    #[test]
    fn a001_prefix_match_in_nonlib_targets_only() {
        let src = "sys.step_parallel_pooled(&joins, &leaves, &pool); run_batched_until(x);";
        assert_eq!(rules(FileClass::TestOnly, src), ["A001", "A001"]);
        assert_eq!(rules(FileClass::Bin, src), ["A001", "A001"]);
        // Lib code holds the deprecated definitions; deny(deprecated)
        // polices it there.
        assert!(rules(FileClass::Prod, src).is_empty());
    }

    #[test]
    fn test_scoped_code_is_exempt_from_determinism_rules() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap;\n\
                   fn t() { scope.spawn(|| {}); let i = Instant::now(); } }";
        assert!(rules(FileClass::Prod, src).is_empty());
    }

    #[test]
    fn d001_fires_outside_test_scope() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        assert_eq!(rules(FileClass::Prod, src), ["D001", "D001"]);
    }
}
