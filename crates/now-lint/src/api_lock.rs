//! API001 — per-crate public-surface locks.
//!
//! Every crate under `crates/` commits a canonical `API.lock`: one
//! sorted line per lexically-`pub` item (plus trait-impl lines, which
//! change a type's capabilities without any `pub` keyword). The lock is
//! the reviewable semver surface: changing what a crate exports without
//! touching its `API.lock` fails CI, so a public-surface change is
//! always a *visible, intentional* diff — regenerate with
//! `now-lint --write-api-locks`, then review the lock hunk like code.
//!
//! Lines are derived from the [`crate::items`] tree, so the same
//! approximations apply: visibility is lexical (a `pub fn` inside a
//! private `mod` still gets a line — the lock overstates rather than
//! understates the surface), and module paths come from file layout
//! plus inline `mod` nesting. `#[cfg(test)]`-scoped items are skipped.

use std::path::Path;

use crate::items::{Item, ItemKind, Vis};
use crate::rules::Finding;
use crate::semantic::UnitFile;

/// The committed lock's first line: makes the file self-describing and
/// versions the line grammar (bump if the format ever changes).
pub const LOCK_HEADER: &str =
    "# API.lock v1 — canonical public surface; regenerate with: now-lint --write-api-locks";

/// Renders the canonical lock text for one crate unit (sorted, deduped,
/// trailing newline). Byte-stable: depends only on the parsed source.
pub fn render_surface(files: &[UnitFile]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for file in files {
        let base = module_path_of(&file.path);
        let mut path = base.clone();
        walk(&file.items, &mut path, &mut lines);
    }
    lines.sort();
    lines.dedup();
    let mut out = String::with_capacity(lines.len() * 32 + LOCK_HEADER.len() + 1);
    out.push_str(LOCK_HEADER);
    out.push('\n');
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Compares a crate's rendered surface against its committed lock.
/// `lock_rel` is the workspace-relative lock path used in findings.
pub fn check_lock(lock_path: &Path, lock_rel: &str, rendered: &str) -> Option<Finding> {
    let committed = match std::fs::read_to_string(lock_path) {
        Ok(text) => text,
        Err(_) => {
            return Some(Finding {
                path: lock_rel.to_string(),
                line: 0,
                rule: "API001",
                message: "missing API.lock for this crate — run `now-lint --write-api-locks` \
                          and commit the result"
                    .to_string(),
            });
        }
    };
    if committed == rendered {
        return None;
    }
    let old: Vec<&str> = committed.lines().collect();
    let new: Vec<&str> = rendered.lines().collect();
    let added = new.iter().filter(|l| !old.contains(*l)).count();
    let removed = old.iter().filter(|l| !new.contains(*l)).count();
    Some(Finding {
        path: lock_rel.to_string(),
        line: 0,
        rule: "API001",
        message: format!(
            "public surface drifted from the committed lock (+{added} line(s), \
             -{removed} line(s)) — run `now-lint --write-api-locks`, then review the \
             lock diff as an intentional API change"
        ),
    })
}

/// Maps a source file's workspace-relative path to its module path
/// segments: `crates/x/src/lib.rs` → `[]`, `…/src/net/link.rs` →
/// `["net", "link"]`, `…/src/net/mod.rs` → `["net"]`.
fn module_path_of(rel_path: &str) -> Vec<String> {
    let after_src = match rel_path.rfind("/src/") {
        // INVARIANT: `i` is the byte index of "/src/", so `i + 5`
        // lands exactly one past it — at most `len`, a valid bound.
        Some(i) => &rel_path[i + 5..],
        None => rel_path, // standalone unit (test/bench file): flat
    };
    let stem = after_src.strip_suffix(".rs").unwrap_or(after_src);
    let mut segs: Vec<String> = stem.split('/').map(str::to_string).collect();
    if let Some(last) = segs.last() {
        if last == "lib" || last == "main" || last == "mod" {
            segs.pop();
        }
    }
    // A standalone file (`tests/foo.rs` grouped as its own unit) keeps
    // only its stem; crate files keep the full src-relative path.
    segs
}

fn join(path: &[String], name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{}::{}", path.join("::"), name)
    }
}

fn walk(items: &[Item], path: &mut Vec<String>, out: &mut Vec<String>) {
    for item in items {
        if item.in_test {
            continue;
        }
        match item.kind {
            ItemKind::Mod => {
                if item.vis == Vis::Pub {
                    out.push(format!("mod {}", join(path, &item.name)));
                }
                if !item.children.is_empty() {
                    path.push(item.name.clone());
                    walk(&item.children, path, out);
                    path.pop();
                }
            }
            ItemKind::Impl => {
                if let Some(tr) = &item.trait_name {
                    // Trait impls extend a type's public capabilities
                    // without a `pub` keyword of their own.
                    out.push(format!("impl {} for {}", tr, join(path, &item.name)));
                } else {
                    for child in &item.children {
                        if child.in_test || child.vis != Vis::Pub {
                            continue;
                        }
                        out.push(format!(
                            "{} {}::{}",
                            child.kind.label(),
                            join(path, &item.name),
                            child.name
                        ));
                    }
                }
            }
            ItemKind::Trait => {
                if item.vis == Vis::Pub {
                    out.push(format!("trait {}", join(path, &item.name)));
                    // Every item of a pub trait is part of the surface,
                    // whatever its (nonexistent) visibility qualifier.
                    for child in &item.children {
                        if !child.in_test {
                            out.push(format!(
                                "{} {}::{}",
                                child.kind.label(),
                                join(path, &item.name),
                                child.name
                            ));
                        }
                    }
                }
            }
            ItemKind::Use => {
                if item.vis == Vis::Pub {
                    out.push(format!("use {}", join(path, &item.name)));
                }
            }
            ItemKind::MacroDef | ItemKind::ForeignMod => {
                // macro_rules! exports via #[macro_export], not `pub`;
                // foreign blocks surface through their pub wrappers.
            }
            _ => {
                if item.vis == Vis::Pub {
                    out.push(format!("{} {}", item.kind.label(), join(path, &item.name)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileClass;

    fn surface(path: &str, src: &str) -> Vec<String> {
        let file = UnitFile::parse(path, FileClass::Prod, src);
        render_surface(std::slice::from_ref(&file))
            .lines()
            .skip(1) // header
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn lock_lines_cover_the_item_kinds() {
        let src = "pub struct S;\npub enum E { A }\npub fn f() {}\n\
                   pub const C: u32 = 1;\npub type T = u8;\npub use other::Thing;\n\
                   struct Hidden;\npub(crate) fn internal() {}";
        assert_eq!(
            surface("crates/x/src/lib.rs", src),
            [
                "const C",
                "enum E",
                "fn f",
                "struct S",
                "type T",
                "use other::Thing",
            ]
        );
    }

    #[test]
    fn module_paths_come_from_layout_and_inline_mods() {
        let src = "pub mod inner { pub fn g() {} fn private() {} }";
        assert_eq!(
            surface("crates/x/src/net/link.rs", src),
            ["fn net::link::inner::g", "mod net::link::inner"]
        );
        assert_eq!(
            surface("crates/x/src/net/mod.rs", "pub fn h() {}"),
            ["fn net::h"]
        );
    }

    #[test]
    fn impls_surface_methods_and_trait_lines() {
        let src = "pub struct S;\nimpl S { pub fn m(&self) {} fn hidden(&self) {} }\n\
                   impl Default for S { fn default() -> S { S } }";
        assert_eq!(
            surface("crates/x/src/lib.rs", src),
            ["fn S::m", "impl Default for S", "struct S"]
        );
    }

    #[test]
    fn pub_traits_surface_every_method() {
        let src = "pub trait Tr { fn a(&self); fn b(&self) {} }\ntrait Internal { fn c(&self); }";
        assert_eq!(
            surface("crates/x/src/lib.rs", src),
            ["fn Tr::a", "fn Tr::b", "trait Tr"]
        );
    }

    #[test]
    fn test_scoped_items_are_invisible() {
        let src = "pub fn live() {}\n#[cfg(test)]\npub mod tests { pub fn helper() {} }";
        assert_eq!(surface("crates/x/src/lib.rs", src), ["fn live"]);
    }

    #[test]
    fn rendering_is_byte_stable_and_deduped() {
        let file = UnitFile::parse(
            "crates/x/src/lib.rs",
            FileClass::Prod,
            "pub fn a() {}\npub fn b() {}",
        );
        let once = render_surface(std::slice::from_ref(&file));
        let twice = render_surface(std::slice::from_ref(&file));
        assert_eq!(once, twice);
        assert!(once.starts_with(LOCK_HEADER));
        assert!(once.ends_with('\n'));
    }
}
