//! # now-lint — workspace determinism-and-safety static analysis
//!
//! Everything this reproduction claims rests on one invariant: **no
//! nondeterminism source ever enters a deterministic code path**.
//! Runtime proptests and CI byte-diff gates catch a violation *after*
//! it has produced divergent bytes; this crate catches it at lint time,
//! before a stray `HashMap` iteration or `thread_rng()` call has to be
//! bisected out of a million-node campaign.
//!
//! The pipeline per file: [`tokenizer`] (comment/string/raw-string
//! aware, no `syn` — this environment is offline), [`scope`] (marks
//! `#[cfg(test)]` / `#[test]` items so determinism rules bind only to
//! production code), [`rules`] (D001–D004, S001, A001), then the
//! committed [`config`] allowlist (`lint.toml`, every entry with a
//! mandatory reason; stale entries are themselves findings).
//!
//! Run it locally with:
//!
//! ```text
//! cargo run -p now-lint --release -- --workspace
//! ```

#![forbid(unsafe_code)] // a linter that polices unsafe must not need any
#![deny(deprecated)]

pub mod config;
pub mod rules;
pub mod scope;
pub mod tokenizer;

pub use config::Config;
pub use rules::{FileClass, Finding};

use std::fs;
use std::path::{Path, PathBuf};

/// Classifies a workspace-relative path (forward slashes) into the
/// file class that decides which rules bind. See [`FileClass`].
pub fn classify(rel_path: &str) -> FileClass {
    if rel_path.starts_with("tests/") || rel_path.contains("/tests/") {
        FileClass::TestOnly
    } else if rel_path.contains("/benches/") {
        FileClass::Bench
    } else if rel_path.contains("/src/bin/") {
        FileClass::Bin
    } else if rel_path.starts_with("examples/") || rel_path.contains("/examples/") {
        FileClass::Example
    } else {
        FileClass::Prod
    }
}

/// Lints one file's source text under the given class. The returned
/// findings are **pre-allowlist**: the caller applies [`Config`].
pub fn lint_source(rel_path: &str, class: FileClass, src: &str) -> Vec<Finding> {
    let mut tokens = tokenizer::tokenize(src);
    scope::mark_test_scopes(&mut tokens);
    rules::lint_tokens(rel_path, class, &tokens)
}

/// Recursively collects `.rs` files under `root`, skipping VCS and
/// build-output directories outright (`vendor/` and the fixture corpus
/// are excluded via `lint.toml`, where the exclusion carries a reason).
/// Paths come back sorted so reports are byte-stable.
pub fn discover_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == ".git" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lints every discovered `.rs` file under `root` and applies the
/// allowlist. Returns surviving findings (sorted by path, line, rule),
/// including one `L001` finding per allowlist entry that suppressed
/// nothing — the list can only shrink, never rot. IO errors on
/// individual files are findings too, not silent skips.
pub fn run_workspace(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut allow_used = vec![false; cfg.allows.len()];

    for path in discover_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.is_excluded(&rel) {
            continue;
        }
        let src = match fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                findings.push(Finding {
                    path: rel.clone(),
                    line: 0,
                    rule: "L001",
                    message: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        for finding in lint_source(&rel, classify(&rel), &src) {
            match cfg.allow_index(finding.rule, &rel) {
                Some(idx) => allow_used[idx] = true,
                None => findings.push(finding),
            }
        }
    }

    for (idx, used) in allow_used.iter().enumerate() {
        if !used {
            let entry = &cfg.allows[idx];
            findings.push(Finding {
                path: "lint.toml".to_string(),
                line: entry.line,
                rule: "L001",
                message: format!(
                    "stale allowlist entry: rule {} no longer fires for `{}` — delete it",
                    entry.rule, entry.path
                ),
            });
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// Loads `lint.toml` from `root`. A missing file is an empty config
/// (deny-by-default stays in force); a malformed one is an error.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    config::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        assert_eq!(classify("crates/now-core/src/batch.rs"), FileClass::Prod);
        assert_eq!(classify("src/lib.rs"), FileClass::Prod);
        assert_eq!(classify("tests/event_runtime.rs"), FileClass::TestOnly);
        assert_eq!(classify("crates/now-net/tests/t.rs"), FileClass::TestOnly);
        assert_eq!(
            classify("crates/now-bench/benches/bench_ops.rs"),
            FileClass::Bench
        );
        assert_eq!(
            classify("crates/now-bench/src/bin/x_flat_core.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("examples/batch_churn.rs"), FileClass::Example);
    }

    /// The real gate, enforced by `cargo test` as well as CI: the
    /// workspace tree must be clean under its committed allowlist.
    #[test]
    fn workspace_is_clean_under_the_committed_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives at <root>/crates/now-lint")
            .to_path_buf();
        let cfg = load_config(&root).expect("lint.toml parses");
        assert!(
            !cfg.allows.is_empty(),
            "committed lint.toml should carry the documented allow entries"
        );
        let findings = run_workspace(&root, &cfg);
        let rendered: Vec<String> = findings.iter().map(Finding::render).collect();
        assert!(
            findings.is_empty(),
            "workspace must be lint-clean:\n{}",
            rendered.join("\n")
        );
    }
}
