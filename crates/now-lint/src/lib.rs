//! # now-lint — workspace determinism-and-safety static analysis
//!
//! Everything this reproduction claims rests on one invariant: **no
//! nondeterminism source ever enters a deterministic code path**.
//! Runtime proptests and CI byte-diff gates catch a violation *after*
//! it has produced divergent bytes; this crate catches it at lint time,
//! before a stray `HashMap` iteration or `thread_rng()` call has to be
//! bisected out of a million-node campaign.
//!
//! The pipeline per file: [`tokenizer`] (comment/string/raw-string
//! aware, no `syn` — this environment is offline), [`scope`] (marks
//! `#[cfg(test)]` / `#[test]` items so determinism rules bind only to
//! production code), [`rules`] (D001–D004, S001, A001), then the
//! committed [`config`] allowlist (`lint.toml`, every entry with a
//! mandatory reason; stale entries are themselves findings).
//!
//! On top of the token rules sits the **semantic layer**: [`items`]
//! parses each token stream into an item tree, files are grouped into
//! *analysis units* (one per crate `src/` tree; each standalone
//! test/bench/bin/example file is its own unit), and [`semantic`] runs
//! the graph rules — P001 panic audit, L002 lock discipline, D005
//! RNG-stream discipline — over each unit's call graph. [`api_lock`]
//! renders every crate unit's public surface into a canonical
//! `API.lock` and reports drift against the committed copy (API001).
//!
//! Run it locally with:
//!
//! ```text
//! cargo run -p now-lint --release -- --workspace
//! ```

#![forbid(unsafe_code)] // a linter that polices unsafe must not need any
#![deny(deprecated)]

pub mod api_lock;
pub mod config;
pub mod items;
pub mod rules;
pub mod scope;
pub mod semantic;
pub mod tokenizer;

pub use config::Config;
pub use rules::{FileClass, Finding};

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use semantic::UnitFile;

/// Classifies a workspace-relative path (forward slashes) into the
/// file class that decides which rules bind. See [`FileClass`].
pub fn classify(rel_path: &str) -> FileClass {
    if rel_path.starts_with("tests/") || rel_path.contains("/tests/") {
        FileClass::TestOnly
    } else if rel_path.contains("/benches/") {
        FileClass::Bench
    } else if rel_path.contains("/src/bin/") {
        FileClass::Bin
    } else if rel_path.starts_with("examples/") || rel_path.contains("/examples/") {
        FileClass::Example
    } else {
        FileClass::Prod
    }
}

/// Lints one file's source text under the given class. The returned
/// findings are **pre-allowlist**: the caller applies [`Config`].
pub fn lint_source(rel_path: &str, class: FileClass, src: &str) -> Vec<Finding> {
    let mut tokens = tokenizer::tokenize(src);
    scope::mark_test_scopes(&mut tokens);
    rules::lint_tokens(rel_path, class, &tokens)
}

/// Recursively collects `.rs` files under `root`, skipping VCS and
/// build-output directories outright (`vendor/` and the fixture corpus
/// are excluded via `lint.toml`, where the exclusion carries a reason).
/// Paths come back sorted so reports are byte-stable.
pub fn discover_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == ".git" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// The analysis-unit key of a workspace-relative path: `crate:<name>`
/// for files in a crate's `src/` tree (bins excluded — each is its own
/// process with its own call graph), `root` for the facade package's
/// `src/`, and `file:<rel>` for every standalone test/bench/bin/example
/// file.
pub fn unit_key(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            if tail.starts_with("src/") && !tail.starts_with("src/bin/") {
                return format!("crate:{name}");
            }
        }
    }
    if rel.starts_with("src/") {
        return "root".to_string();
    }
    format!("file:{rel}")
}

/// Lints every discovered `.rs` file under `root` and applies the
/// allowlist. Token rules run per file; the semantic rules (P001, L002,
/// D005) run per analysis unit over its call graph; API001 compares
/// each crate unit's rendered public surface against the committed
/// `crates/<name>/API.lock`. Returns surviving findings (sorted by
/// path, line, rule), including one `L001` finding per allowlist entry
/// that suppressed nothing and per orphan `API.lock` (a lock with no
/// live crate) — the lists can only shrink, never rot. IO errors on
/// individual files are findings too, not silent skips.
pub fn run_workspace(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut allow_used = vec![false; cfg.allows.len()];
    let mut units: BTreeMap<String, Vec<UnitFile>> = BTreeMap::new();

    for path in discover_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.is_excluded(&rel) {
            continue;
        }
        let src = match fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                findings.push(Finding {
                    path: rel.clone(),
                    line: 0,
                    rule: "L001",
                    message: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        let class = classify(&rel);
        for finding in lint_source(&rel, class, &src) {
            match cfg.allow_index(finding.rule, &rel) {
                Some(idx) => allow_used[idx] = true,
                None => findings.push(finding),
            }
        }
        units
            .entry(unit_key(&rel))
            .or_default()
            .push(UnitFile::parse(&rel, class, &src));
    }

    for (key, files) in &units {
        for finding in semantic::analyze_unit(files) {
            match cfg.allow_index(finding.rule, &finding.path) {
                Some(idx) => allow_used[idx] = true,
                None => findings.push(finding),
            }
        }
        if let Some(name) = key.strip_prefix("crate:") {
            let lock_rel = format!("crates/{name}/API.lock");
            let rendered = api_lock::render_surface(files);
            if let Some(finding) = api_lock::check_lock(&root.join(&lock_rel), &lock_rel, &rendered)
            {
                match cfg.allow_index(finding.rule, &finding.path) {
                    Some(idx) => allow_used[idx] = true,
                    None => findings.push(finding),
                }
            }
        }
    }

    // Orphan locks: an API.lock whose crate no longer contributes any
    // sources is dead weight and, worse, a stale claim about a surface.
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            if !dir.join("API.lock").is_file() {
                continue;
            }
            let name = dir.file_name().unwrap_or_default().to_string_lossy();
            if !units.contains_key(&format!("crate:{name}")) {
                findings.push(Finding {
                    path: format!("crates/{name}/API.lock"),
                    line: 0,
                    rule: "L001",
                    message: "orphan API.lock: this crate has no linted sources — delete the \
                              lock with the crate"
                        .to_string(),
                });
            }
        }
    }

    for (idx, used) in allow_used.iter().enumerate() {
        if !used {
            let entry = &cfg.allows[idx];
            findings.push(Finding {
                path: "lint.toml".to_string(),
                line: entry.line,
                rule: "L001",
                message: format!(
                    "stale allowlist entry: rule {} no longer fires for `{}` — delete it",
                    entry.rule, entry.path
                ),
            });
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// Renders every crate unit's canonical `API.lock` and writes the files
/// under `root`. Returns the workspace-relative paths written (sorted).
/// Used by `now-lint --write-api-locks`; the output is byte-stable, so
/// a second run writes identical bytes.
pub fn write_api_locks(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut units: BTreeMap<String, Vec<UnitFile>> = BTreeMap::new();
    for path in discover_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.is_excluded(&rel) {
            continue;
        }
        let key = unit_key(&rel);
        if !key.starts_with("crate:") {
            continue;
        }
        let src =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        units
            .entry(key)
            .or_default()
            .push(UnitFile::parse(&rel, classify(&rel), &src));
    }
    let mut written = Vec::new();
    for (key, files) in &units {
        let name = key.strip_prefix("crate:").unwrap_or(key);
        let lock_rel = format!("crates/{name}/API.lock");
        let rendered = api_lock::render_surface(files);
        fs::write(root.join(&lock_rel), rendered)
            .map_err(|e| format!("writing {lock_rel}: {e}"))?;
        written.push(lock_rel);
    }
    Ok(written)
}

/// Renders findings as a canonical JSON document (sorted input order is
/// preserved): `{"findings":[{"path","line","rule","message"},…]}`.
/// Hand-rolled — this crate is zero-dependency by design.
pub fn render_json(findings: &[Finding]) -> String {
    fn escape(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":\"");
        escape(&f.path, &mut out);
        out.push_str(&format!(
            "\",\"line\":{},\"rule\":\"{}\",\"message\":\"",
            f.line, f.rule
        ));
        escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str(&format!("],\"count\":{}}}\n", findings.len()));
    out
}

/// Loads `lint.toml` from `root`. A missing file is an empty config
/// (deny-by-default stays in force); a malformed one is an error.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    config::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        assert_eq!(classify("crates/now-core/src/batch.rs"), FileClass::Prod);
        assert_eq!(classify("src/lib.rs"), FileClass::Prod);
        assert_eq!(classify("tests/event_runtime.rs"), FileClass::TestOnly);
        assert_eq!(classify("crates/now-net/tests/t.rs"), FileClass::TestOnly);
        assert_eq!(
            classify("crates/now-bench/benches/bench_ops.rs"),
            FileClass::Bench
        );
        assert_eq!(
            classify("crates/now-bench/src/bin/x_flat_core.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("examples/batch_churn.rs"), FileClass::Example);
    }

    /// The real gate, enforced by `cargo test` as well as CI: the
    /// workspace tree must be clean under its committed allowlist.
    #[test]
    fn workspace_is_clean_under_the_committed_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives at <root>/crates/now-lint")
            .to_path_buf();
        let cfg = load_config(&root).expect("lint.toml parses");
        assert!(
            !cfg.allows.is_empty(),
            "committed lint.toml should carry the documented allow entries"
        );
        let findings = run_workspace(&root, &cfg);
        let rendered: Vec<String> = findings.iter().map(Finding::render).collect();
        assert!(
            findings.is_empty(),
            "workspace must be lint-clean:\n{}",
            rendered.join("\n")
        );
    }

    /// L001 covers the semantic layer too: an allow for a semantic rule
    /// that suppresses nothing is stale, and an `API.lock` whose crate
    /// has no linted sources is an orphan.
    #[test]
    fn stale_semantic_allow_and_orphan_lock_fire_l001() {
        let root = std::env::temp_dir().join(format!("now-lint-l001-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/ghost")).unwrap();
        fs::write(root.join("crates/ghost/API.lock"), "# stale\n").unwrap();
        fs::create_dir_all(root.join("crates/live/src")).unwrap();
        fs::write(root.join("crates/live/src/lib.rs"), "pub fn ok() {}\n").unwrap();
        let cfg = config::parse(
            "[[allow]]\nrule = \"P001\"\npath = \"nope.rs\"\nreason = \"never fires\"\n",
        )
        .unwrap();
        // Baseline the live crate's lock so only the planted rot remains.
        write_api_locks(&root, &cfg).unwrap();
        let findings = run_workspace(&root, &cfg);
        let got: Vec<(&str, &str)> = findings.iter().map(|f| (f.path.as_str(), f.rule)).collect();
        assert_eq!(
            got,
            vec![("crates/ghost/API.lock", "L001"), ("lint.toml", "L001")],
            "findings: {:?}",
            findings
        );
        let _ = fs::remove_dir_all(&root);
    }
}
