//! The semantic layer: an item tree and an intra-unit call graph.
//!
//! PR 8's rules are token-local — they can say *this line holds a
//! `HashMap`*, but not *which function* it sits in, or who calls that
//! function. The rules that matter next (panic-path audit, lock-order
//! discipline, RNG-stream descent, public-surface locks) are properties
//! of *items*, so this module parses each file's token stream into a
//! tree of items (mod / fn / impl / trait / … with token spans and
//! visibility) and links the files of one **analysis unit** (a crate's
//! `src/` tree, or one standalone bin/test/example file) into a call
//! graph.
//!
//! Honesty about the approximations (also in the README):
//!
//! * **Name resolution is by identifier, intra-unit.** A call `f(…)` or
//!   `.f(…)` gets an edge to *every* function named `f` in the unit —
//!   shadowed and same-named methods are conflated (conservative for
//!   reachability-style rules). Cross-crate edges do not exist; rules
//!   treat parameter-receiving functions with no intra-unit callers as
//!   crate boundaries.
//! * **Function bodies are opaque spans.** Items nested *inside* a fn
//!   body (local fns, local impls) are not re-parsed; their calls are
//!   attributed to the enclosing fn.
//! * **Type association is lexical.** A method belongs to the
//!   `impl`/`trait` block's self-type *name*; two types with one name
//!   in one unit are conflated.

use crate::tokenizer::{TokKind, Token};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Impl,
    Trait,
    Struct,
    Enum,
    Union,
    Const,
    Static,
    TypeAlias,
    Use,
    MacroDef,
    ExternCrate,
    /// `extern "C" { … }` foreign block (opaque).
    ForeignMod,
}

impl ItemKind {
    /// Stable lowercase label used in `API.lock` lines and reports.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Impl => "impl",
            ItemKind::Trait => "trait",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Use => "use",
            ItemKind::MacroDef => "macro",
            ItemKind::ExternCrate => "extern-crate",
            ItemKind::ForeignMod => "extern-block",
        }
    }
}

/// Item visibility, as written (lexical — a `pub` item inside a private
/// module is still recorded `Pub`; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub`: part of the crate's public surface.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`: crate-internal.
    PubScoped,
    /// No visibility qualifier.
    Private,
}

/// One parsed item with its token span.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name; for `Impl` the *self-type* name; for `Use` the
    /// normalized path text (`a::b::{C, D}`).
    pub name: String,
    /// For trait impls (`impl Tr for Ty`), the trait path's last
    /// segment.
    pub trait_name: Option<String>,
    pub vis: Vis,
    /// 1-based line of the item's first token (after attributes).
    pub line: u32,
    /// Index of the item's first token (attributes included).
    pub tok_start: usize,
    /// Index of the `{` opening the body, for items that have one.
    pub body_start: Option<usize>,
    /// Index one past the item's last token (`;` or closing `}`).
    pub tok_end: usize,
    /// Children of `Mod` / `Trait` / `Impl` bodies. `Fn` bodies are
    /// opaque (no nested item parsing).
    pub children: Vec<Item>,
    /// True when the item's first token is test-scoped (set by
    /// [`crate::scope::mark_test_scopes`] before parsing).
    pub in_test: bool,
}

/// Parses a marked token stream into a top-level item list. Never
/// fails: unrecognized tokens are skipped (error recovery — the lint
/// runs on code rustc already accepts, so recovery paths are dusty
/// corners, not the common case).
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser { tokens };
    p.items(0, tokens.len())
}

struct Parser<'t> {
    tokens: &'t [Token],
}

/// Keywords that can qualify a `fn` (`pub const unsafe extern "C" fn`).
const FN_QUALIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];

impl<'t> Parser<'t> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Skips comments from `i`; returns the next code-token index.
    fn skip_comments(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.tokens[i].kind == TokKind::Comment {
            i += 1;
        }
        i
    }

    /// Skips one `#[…]` / `#![…]` attribute; `i` points at `#`.
    /// Returns the index one past the closing `]`.
    fn skip_attribute(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !self.tok(j).is_some_and(|t| t.is_punct('[')) {
            return i + 1;
        }
        let mut depth = 0usize;
        while j < end {
            match self.tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skips a balanced `<…>` generic-argument list; `i` points at `<`.
    /// Angle brackets never nest through braces in item signatures, so
    /// plain counting is exact there.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.tokens[j].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Scans from `i` to the end of an item that terminates at a `;` at
    /// bracket-depth zero **or** at one balanced `{…}` block. Returns
    /// `(body_start, one_past_end)`.
    fn scan_to_body_or_semi(&self, mut i: usize, end: usize) -> (Option<usize>, usize) {
        let mut depth = 0usize;
        while i < end {
            match self.tokens[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
                TokKind::Punct('{') if depth == 0 => {
                    let close = self.skip_braces(i, end);
                    return (Some(i), close);
                }
                TokKind::Punct(';') if depth == 0 => return (None, i + 1),
                _ => {}
            }
            i += 1;
        }
        (None, i)
    }

    /// Skips one balanced `{…}` block; `i` points at `{`. Returns the
    /// index one past the matching `}`.
    fn skip_braces(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.tokens[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Parses the item list in `[start, end)` (exclusive of any
    /// enclosing braces).
    fn items(&mut self, start: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            i = self.skip_comments(i, end);
            if i >= end {
                break;
            }
            if self.tokens[i].is_punct('#') {
                let after = self.skip_attribute(i, end);
                // Attributes precede their item; remember where this
                // run began so the span covers them.
                let item_start = i;
                i = after;
                i = self.skip_comments(i, end);
                while i < end && self.tokens[i].is_punct('#') {
                    i = self.skip_attribute(i, end);
                    i = self.skip_comments(i, end);
                }
                if let Some((item, next)) = self.item(i, end, item_start) {
                    out.push(item);
                    i = next;
                }
                continue;
            }
            if let Some((item, next)) = self.item(i, end, i) {
                out.push(item);
                i = next;
            } else {
                i += 1; // recovery: not an item head, move on
            }
        }
        out
    }

    /// Attempts to parse one item whose (post-attribute) head starts at
    /// `i`. Returns the item and the index one past it.
    fn item(&mut self, i: usize, end: usize, tok_start: usize) -> Option<(Item, usize)> {
        let mut j = i;
        // Visibility.
        let mut vis = Vis::Private;
        if self.tok(j).is_some_and(|t| t.is_ident("pub")) {
            vis = Vis::Pub;
            j += 1;
            j = self.skip_comments(j, end);
            if self.tok(j).is_some_and(|t| t.is_punct('(')) {
                vis = Vis::PubScoped;
                let mut depth = 0usize;
                while j < end {
                    match self.tokens[j].kind {
                        TokKind::Punct('(') => depth += 1,
                        TokKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j = self.skip_comments(j, end);
            }
        }

        // Fn qualifiers (`const unsafe extern "C" fn` …). A `const`
        // followed by anything but `fn` is a const *item*, handled
        // below, so only treat qualifiers as such when a `fn` follows.
        let mut k = j;
        let mut saw_qualifier = false;
        loop {
            k = self.skip_comments(k, end);
            let Some(t) = self.tok(k) else { break };
            if t.kind == TokKind::Ident && FN_QUALIFIERS.contains(&t.text.as_str()) {
                k += 1;
                // `extern "C"` carries an ABI string.
                let k2 = self.skip_comments(k, end);
                if self.tok(k2).is_some_and(|t| t.kind == TokKind::Str) {
                    k = k2 + 1;
                }
                saw_qualifier = true;
            } else {
                break;
            }
        }
        k = self.skip_comments(k, end);
        if saw_qualifier {
            if self.tok(k).is_some_and(|t| t.is_ident("fn")) {
                j = k; // consume qualifiers; `fn` parse below
            } else if self
                .tok(self.skip_comments(j, end))
                .is_some_and(|t| t.is_ident("extern"))
            {
                // `extern crate name;` or `extern "C" { … }`.
                return self.extern_item(self.skip_comments(j, end), end, tok_start, vis);
            }
            // else: plain `const NAME: …` / `unsafe impl` — fall through
            // with `j` untouched.
        }
        if self.tok(j).is_some_and(|t| t.is_ident("unsafe")) {
            // `unsafe impl` / `unsafe trait`.
            let k = self.skip_comments(j + 1, end);
            if self
                .tok(k)
                .is_some_and(|t| t.is_ident("impl") || t.is_ident("trait"))
            {
                j = k;
            }
        }

        let head = self.tok(j)?;
        if head.kind != TokKind::Ident {
            return None;
        }
        let line = head.line;
        let in_test = head.in_test;
        match head.text.as_str() {
            "fn" => self.named_item(j, end, tok_start, vis, ItemKind::Fn, line, in_test),
            "mod" => {
                let (mut item, next) =
                    self.named_item(j, end, tok_start, vis, ItemKind::Mod, line, in_test)?;
                if let Some(body) = item.body_start {
                    item.children = self.items(body + 1, item.tok_end.saturating_sub(1));
                }
                Some((item, next))
            }
            "trait" => {
                let (mut item, next) =
                    self.named_item(j, end, tok_start, vis, ItemKind::Trait, line, in_test)?;
                if let Some(body) = item.body_start {
                    item.children = self.items(body + 1, item.tok_end.saturating_sub(1));
                }
                Some((item, next))
            }
            "struct" => self.named_item(j, end, tok_start, vis, ItemKind::Struct, line, in_test),
            "enum" => self.named_item(j, end, tok_start, vis, ItemKind::Enum, line, in_test),
            "union" => self.named_item(j, end, tok_start, vis, ItemKind::Union, line, in_test),
            "const" => self.named_item(j, end, tok_start, vis, ItemKind::Const, line, in_test),
            "static" => self.named_item(j, end, tok_start, vis, ItemKind::Static, line, in_test),
            "type" => self.named_item(j, end, tok_start, vis, ItemKind::TypeAlias, line, in_test),
            "use" => self.use_item(j, end, tok_start, vis, line, in_test),
            "impl" => self.impl_item(j, end, tok_start, vis, line, in_test),
            "macro_rules" => {
                // `macro_rules! name { … }`
                let mut k = self.skip_comments(j + 1, end);
                if self.tok(k).is_some_and(|t| t.is_punct('!')) {
                    k = self.skip_comments(k + 1, end);
                }
                let name = match self.tok(k) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => String::new(),
                };
                let (body_start, tok_end) = self.scan_to_body_or_semi(k, end);
                Some((
                    Item {
                        kind: ItemKind::MacroDef,
                        name,
                        trait_name: None,
                        vis,
                        line,
                        tok_start,
                        body_start,
                        tok_end,
                        children: Vec::new(),
                        in_test,
                    },
                    tok_end,
                ))
            }
            "extern" => self.extern_item(j, end, tok_start, vis),
            _ => None,
        }
    }

    /// `kind NAME … (; | {…})` — the shared shape of most items. `j`
    /// points at the keyword.
    #[allow(clippy::too_many_arguments)] // internal plumbing, one call shape
    fn named_item(
        &mut self,
        j: usize,
        end: usize,
        tok_start: usize,
        vis: Vis,
        kind: ItemKind,
        line: u32,
        in_test: bool,
    ) -> Option<(Item, usize)> {
        let mut k = self.skip_comments(j + 1, end);
        let name = match self.tok(k) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            // `static` has a `mut` qualifier slot.
            _ => String::new(),
        };
        let name = if name == "mut" && kind == ItemKind::Static {
            k = self.skip_comments(k + 1, end);
            match self.tok(k) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => String::new(),
            }
        } else {
            name
        };
        if name.is_empty() {
            return None;
        }
        let (body_start, tok_end) = self.scan_to_body_or_semi(k + 1, end);
        Some((
            Item {
                kind,
                name,
                trait_name: None,
                vis,
                line,
                tok_start,
                body_start,
                tok_end,
                children: Vec::new(),
                in_test,
            },
            tok_end,
        ))
    }

    /// `use path::to::{Thing, Other};` — the name is the normalized
    /// path text (idents, `::`, `{`, `}`, `,`, `*`, `as` joined with
    /// single spaces only where needed), so `API.lock` lines are
    /// whitespace-insensitive.
    fn use_item(
        &mut self,
        j: usize,
        end: usize,
        tok_start: usize,
        vis: Vis,
        line: u32,
        in_test: bool,
    ) -> Option<(Item, usize)> {
        let mut k = j + 1;
        let mut text = String::new();
        let mut prev_ident = false;
        while k < end {
            match &self.tokens[k].kind {
                TokKind::Punct(';') => {
                    k += 1;
                    break;
                }
                TokKind::Ident => {
                    if prev_ident {
                        text.push(' ');
                    }
                    text.push_str(&self.tokens[k].text);
                    prev_ident = true;
                }
                TokKind::Punct(c) => {
                    text.push(*c);
                    prev_ident = false;
                }
                _ => {}
            }
            k += 1;
        }
        Some((
            Item {
                kind: ItemKind::Use,
                name: text,
                trait_name: None,
                vis,
                line,
                tok_start,
                body_start: None,
                tok_end: k,
                children: Vec::new(),
                in_test,
            },
            k,
        ))
    }

    /// `impl[<…>] Path [for Path] [where …] { … }`. The item name is
    /// the **self type**'s last path segment; for trait impls the trait
    /// path's last segment lands in `trait_name`.
    fn impl_item(
        &mut self,
        j: usize,
        end: usize,
        tok_start: usize,
        vis: Vis,
        line: u32,
        in_test: bool,
    ) -> Option<(Item, usize)> {
        let mut k = self.skip_comments(j + 1, end);
        if self.tok(k).is_some_and(|t| t.is_punct('<')) {
            k = self.skip_angles(k, end);
        }
        // First path: trait name for `impl Tr for Ty`, self type else.
        let (first, after_first) = self.type_path(k, end);
        k = self.skip_comments(after_first, end);
        let (self_ty, trait_name) = if self.tok(k).is_some_and(|t| t.is_ident("for")) {
            let (second, after_second) = self.type_path(self.skip_comments(k + 1, end), end);
            k = after_second;
            (second, Some(first))
        } else {
            (first, None)
        };
        // Skip `where …` to the body.
        let (body_start, tok_end) = self.scan_to_body_or_semi(k, end);
        let children = match body_start {
            Some(body) => self.items(body + 1, tok_end.saturating_sub(1)),
            None => Vec::new(),
        };
        Some((
            Item {
                kind: ItemKind::Impl,
                name: self_ty,
                trait_name,
                vis,
                line,
                tok_start,
                body_start,
                tok_end,
                children,
                in_test,
            },
            tok_end,
        ))
    }

    /// Reads a type path (`a::b::C<…>`, `&mut T`, `[T; N]`, `dyn Tr`),
    /// returning its **last plain segment name** and the index after
    /// it. Reference/slice/pointer sigils and `dyn` are skipped; the
    /// name that matters for association is the head type's identifier.
    fn type_path(&self, mut i: usize, end: usize) -> (String, usize) {
        let mut last = String::new();
        loop {
            i = self.skip_comments(i, end);
            let Some(t) = self.tok(i) else { break };
            match &t.kind {
                TokKind::Punct('&') | TokKind::Punct('*') | TokKind::Punct('(') => i += 1,
                TokKind::Lifetime => i += 1,
                TokKind::Ident if t.text == "mut" || t.text == "dyn" || t.text == "const" => i += 1,
                TokKind::Ident if t.text == "for" || t.text == "where" => break,
                TokKind::Ident => {
                    last = t.text.clone();
                    i += 1;
                    // `::` continues the path; `<…>` is its own world.
                    loop {
                        let after = self.skip_comments(i, end);
                        if self.tok(after).is_some_and(|t| t.is_punct('<')) {
                            i = self.skip_angles(after, end);
                            continue;
                        }
                        if self.tok(after).is_some_and(|t| t.is_punct(':'))
                            && self.tok(after + 1).is_some_and(|t| t.is_punct(':'))
                        {
                            let seg = self.skip_comments(after + 2, end);
                            if let Some(t) = self.tok(seg) {
                                if t.kind == TokKind::Ident {
                                    last = t.text.clone();
                                    i = seg + 1;
                                    continue;
                                }
                            }
                        }
                        break;
                    }
                    break;
                }
                _ => break,
            }
        }
        (last, i)
    }

    /// `extern crate name;` or `extern "C" { … }`.
    fn extern_item(
        &mut self,
        j: usize,
        end: usize,
        tok_start: usize,
        vis: Vis,
    ) -> Option<(Item, usize)> {
        let line = self.tok(j)?.line;
        let in_test = self.tok(j)?.in_test;
        let mut k = self.skip_comments(j + 1, end);
        if self.tok(k).is_some_and(|t| t.is_ident("crate")) {
            k = self.skip_comments(k + 1, end);
            let name = match self.tok(k) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => String::new(),
            };
            let (_, tok_end) = self.scan_to_body_or_semi(k, end);
            return Some((
                Item {
                    kind: ItemKind::ExternCrate,
                    name,
                    trait_name: None,
                    vis,
                    line,
                    tok_start,
                    body_start: None,
                    tok_end,
                    children: Vec::new(),
                    in_test,
                },
                tok_end,
            ));
        }
        if self.tok(k).is_some_and(|t| t.kind == TokKind::Str) {
            k = self.skip_comments(k + 1, end);
        }
        let (body_start, tok_end) = self.scan_to_body_or_semi(k, end);
        Some((
            Item {
                kind: ItemKind::ForeignMod,
                name: String::new(),
                trait_name: None,
                vis,
                line,
                tok_start,
                body_start,
                tok_end,
                children: Vec::new(),
                in_test,
            },
            tok_end,
        ))
    }
}

// ---------------------------------------------------------------------
// The call graph over one analysis unit.
// ---------------------------------------------------------------------

/// Per-function facts the semantic rules consume, gathered in one body
/// scan.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Number of `.lock()` / `.try_lock()` call sites in the body.
    pub lock_calls: u32,
    /// Lines of those call sites (first occurrence order).
    pub lock_lines: Vec<u32>,
    /// The body draws from an RNG (`.gen_range(` / `.next_u64(` / …).
    pub draws: bool,
    /// Line of the first draw call.
    pub draw_line: u32,
    /// The body derives a stream canonically (`DetRng::for_op`,
    /// `DetRng::new`, `.fork(`, `from_seed`, `seed_from_u64`).
    pub derives: bool,
    /// The signature carries an RNG-typed parameter (`DetRng`,
    /// `RngCore`, an `Rng` bound, …).
    pub rng_param: bool,
}

/// One function node in the unit graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub name: String,
    /// Self-type of the enclosing `impl`/`trait` block, if any.
    pub type_name: Option<String>,
    pub vis: Vis,
    pub in_test: bool,
    pub facts: FnFacts,
    /// Names this function's body calls (`f(…)` and `.f(…)` alike),
    /// deduplicated, in first-seen order.
    pub calls: Vec<String>,
}

/// The intra-unit call graph: function nodes plus name-resolved edges.
#[derive(Debug, Default)]
pub struct UnitGraph {
    pub fns: Vec<FnNode>,
    /// `edges[i]` = indices of functions that `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
}

impl UnitGraph {
    /// Indices of the intra-unit callers of `callee`.
    pub fn callers_of(&self, callee: usize) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.edges[i].contains(&callee))
            .collect()
    }
}

/// RNG draw methods: calling one of these on any receiver marks the
/// enclosing fn as *drawing* from a stream.
const DRAW_METHODS: &[&str] = &[
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Canonical stream-derivation markers (see `now_net::DetRng`): a
/// `DetRng::for_op` / `DetRng::new` construction, a labeled `.fork(`,
/// or the `SeedableRng` constructors.
const DERIVE_CONSTRUCTORS: &[&str] = &["for_op", "new", "from_seed", "seed_from_u64"];

/// Builds the call graph for one analysis unit from its parsed files.
/// `files` pairs each workspace-relative path with its tokens and item
/// tree.
pub fn build_graph(files: &[(String, &[Token], &[Item])]) -> UnitGraph {
    let mut graph = UnitGraph::default();
    for (path, tokens, items) in files {
        collect_fns(path, tokens, items, None, &mut graph.fns);
    }
    // Name → node indices, for resolution.
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    for f in &graph.fns {
        let mut out = Vec::new();
        for call in &f.calls {
            if let Some(targets) = by_name.get(call.as_str()) {
                for &t in targets {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        graph.edges.push(out);
    }
    graph
}

fn collect_fns(
    path: &str,
    tokens: &[Token],
    items: &[Item],
    enclosing_type: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        match item.kind {
            ItemKind::Fn => {
                let sig_start = item.tok_start;
                let (body_start, body_end) = match item.body_start {
                    Some(b) => (b, item.tok_end),
                    None => (item.tok_end, item.tok_end), // trait decl: no body
                };
                let facts = scan_fn_facts(tokens, sig_start, body_start, body_end);
                let calls = scan_calls(tokens, body_start, body_end);
                out.push(FnNode {
                    path: path.to_string(),
                    line: item.line,
                    name: item.name.clone(),
                    type_name: enclosing_type.map(str::to_string),
                    vis: item.vis,
                    in_test: item.in_test,
                    facts,
                    calls,
                });
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_fns(path, tokens, &item.children, Some(&item.name), out);
            }
            ItemKind::Mod => {
                collect_fns(path, tokens, &item.children, None, out);
            }
            _ => {}
        }
    }
}

/// Scans one fn's signature (`[sig_start, body_start)`) and body
/// (`[body_start, body_end)`) for the facts the rules need.
fn scan_fn_facts(
    tokens: &[Token],
    sig_start: usize,
    body_start: usize,
    body_end: usize,
) -> FnFacts {
    let mut facts = FnFacts::default();
    for t in tokens
        .iter()
        .take(body_start.min(tokens.len()))
        .skip(sig_start)
    {
        if t.kind == TokKind::Ident
            && (t.text == "DetRng" || t.text == "RngCore" || t.text == "Rng")
        {
            facts.rng_param = true;
        }
    }
    let mut i = body_start;
    while i < body_end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            let prev_dot = prev_code(tokens, i).is_some_and(|p| p.is_punct('.'));
            let next_paren = next_code(tokens, i, body_end).is_some_and(|n| n.is_punct('('));
            if prev_dot && next_paren {
                if name == "lock" || name == "try_lock" {
                    facts.lock_calls += 1;
                    facts.lock_lines.push(t.line);
                }
                if DRAW_METHODS.contains(&name) && !facts.draws {
                    facts.draws = true;
                    facts.draw_line = t.line;
                }
                if name == "fork" {
                    facts.derives = true;
                }
            }
            // `DetRng :: new` / `DetRng :: for_op` / `:: from_seed` …
            if name == "DetRng" {
                if let Some(seg) = path_segment_after(tokens, i, body_end) {
                    if DERIVE_CONSTRUCTORS.contains(&seg) {
                        facts.derives = true;
                    }
                }
            }
            if (name == "from_seed" || name == "seed_from_u64") && next_paren {
                facts.derives = true;
            }
        }
        i += 1;
    }
    facts
}

/// For `Path :: seg`, returns `seg`'s text when `i` names `Path`.
fn path_segment_after(tokens: &[Token], i: usize, end: usize) -> Option<&str> {
    let mut j = i + 1;
    let mut colons = 0;
    while j < end.min(tokens.len()) {
        match &tokens[j].kind {
            TokKind::Comment => {}
            TokKind::Punct(':') if colons < 2 => colons += 1,
            TokKind::Ident if colons == 2 => return Some(&tokens[j].text),
            _ => return None,
        }
        j += 1;
    }
    None
}

fn prev_code(tokens: &[Token], i: usize) -> Option<&Token> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if tokens[j].kind != TokKind::Comment {
            return Some(&tokens[j]);
        }
    }
    None
}

fn next_code(tokens: &[Token], i: usize, end: usize) -> Option<&Token> {
    let mut j = i + 1;
    while j < end.min(tokens.len()) {
        if tokens[j].kind != TokKind::Comment {
            return Some(&tokens[j]);
        }
        j += 1;
    }
    None
}

/// Extracts called names from a body span: `name(` direct calls and
/// `.name(` method calls. Macro invocations (`name!`), definitions
/// (`fn name`), and struct literals don't match the shape.
fn scan_calls(tokens: &[Token], body_start: usize, body_end: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = body_start;
    while i < body_end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == TokKind::Ident {
            let next_is_paren = next_code(tokens, i, body_end).is_some_and(|n| n.is_punct('('));
            let prev = prev_code(tokens, i);
            let prev_is_fn_kw = prev.is_some_and(|p| p.is_ident("fn"));
            if next_is_paren && !prev_is_fn_kw && !out.contains(&t.text) {
                out.push(t.text.clone());
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::mark_test_scopes;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> Vec<Item> {
        let mut toks = tokenize(src);
        mark_test_scopes(&mut toks);
        parse_items(&toks)
    }

    fn flat_names(items: &[Item]) -> Vec<(ItemKind, String)> {
        let mut out = Vec::new();
        fn rec(items: &[Item], out: &mut Vec<(ItemKind, String)>) {
            for i in items {
                out.push((i.kind, i.name.clone()));
                rec(&i.children, out);
            }
        }
        rec(items, &mut out);
        out
    }

    #[test]
    fn parses_the_basic_item_kinds() {
        let src = "pub fn a() {}\nmod m { fn b() {} }\nstruct S;\npub enum E { X }\n\
                   const C: u32 = 1;\nstatic D: u32 = 2;\ntype T = u32;\nuse x::y;";
        let names = flat_names(&parse(src));
        assert_eq!(
            names,
            vec![
                (ItemKind::Fn, "a".to_string()),
                (ItemKind::Mod, "m".to_string()),
                (ItemKind::Fn, "b".to_string()),
                (ItemKind::Struct, "S".to_string()),
                (ItemKind::Enum, "E".to_string()),
                (ItemKind::Const, "C".to_string()),
                (ItemKind::Static, "D".to_string()),
                (ItemKind::TypeAlias, "T".to_string()),
                (ItemKind::Use, "x::y".to_string()),
            ]
        );
    }

    #[test]
    fn impl_blocks_carry_self_type_and_trait() {
        let items =
            parse("impl<'a> Foo<'a> { fn m(&self) {} }\nimpl Bar for Foo<'_> { fn n() {} }");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "Foo");
        assert_eq!(items[0].trait_name, None);
        assert_eq!(items[0].children[0].name, "m");
        assert_eq!(items[1].name, "Foo");
        assert_eq!(items[1].trait_name.as_deref(), Some("Bar"));
    }

    #[test]
    fn qualified_fns_and_unsafe_impls_parse() {
        let items = parse(
            "pub const fn c() -> u32 { 1 }\npub unsafe fn u() {}\n\
             pub async fn a() {}\npub extern \"C\" fn e() {}\nunsafe impl Send for S {}",
        );
        let names = flat_names(&items);
        assert_eq!(names[0], (ItemKind::Fn, "c".to_string()));
        assert_eq!(names[1], (ItemKind::Fn, "u".to_string()));
        assert_eq!(names[2], (ItemKind::Fn, "a".to_string()));
        assert_eq!(names[3], (ItemKind::Fn, "e".to_string()));
        assert_eq!(names[4], (ItemKind::Impl, "S".to_string()));
        assert_eq!(items[4].trait_name.as_deref(), Some("Send"));
    }

    #[test]
    fn visibility_is_recorded_lexically() {
        let items = parse("pub fn a() {}\npub(crate) fn b() {}\nfn c() {}");
        assert_eq!(items[0].vis, Vis::Pub);
        assert_eq!(items[1].vis, Vis::PubScoped);
        assert_eq!(items[2].vis, Vis::Private);
    }

    #[test]
    fn fn_bodies_are_opaque_spans_with_correct_extent() {
        let items = parse("fn a() { if x { y(); } }\nfn b() {}");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[1].name, "b");
    }

    #[test]
    fn trait_bodies_expose_method_declarations() {
        let items = parse("pub trait T { fn decl(&self); fn with_default(&self) {} }");
        assert_eq!(items[0].kind, ItemKind::Trait);
        let kids = flat_names(&items[0].children);
        assert_eq!(
            kids,
            vec![
                (ItemKind::Fn, "decl".to_string()),
                (ItemKind::Fn, "with_default".to_string()),
            ]
        );
    }

    #[test]
    fn test_scope_marks_reach_items() {
        let items = parse("#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}");
        assert!(items[0].in_test);
        assert!(items[0].children[0].in_test);
        assert!(!items[1].in_test);
    }

    #[test]
    fn use_groups_normalize_whitespace() {
        let a = parse("pub use a::b::{C, D};");
        let b = parse("pub  use a :: b :: { C , D } ;");
        assert_eq!(a[0].name, b[0].name);
    }

    #[test]
    fn generic_fn_signatures_find_their_bodies() {
        let items = parse("fn g<T: Iterator<Item = u8>>(x: T) -> Vec<u8> where T: Clone { x() }");
        assert_eq!(items[0].name, "g");
        assert!(items[0].body_start.is_some());
    }

    #[test]
    fn call_graph_links_direct_and_method_calls() {
        let src = "fn a() { b(); }\nfn b() { self.c(); }\nimpl T { fn c(&self) {} }";
        let mut toks = tokenize(src);
        mark_test_scopes(&mut toks);
        let items = parse_items(&toks);
        let graph = build_graph(&[("f.rs".to_string(), &toks[..], &items[..])]);
        assert_eq!(graph.fns.len(), 3);
        let idx = |n: &str| graph.fns.iter().position(|f| f.name == n).unwrap();
        assert!(graph.edges[idx("a")].contains(&idx("b")));
        assert!(graph.edges[idx("b")].contains(&idx("c")));
        assert_eq!(graph.fns[idx("c")].type_name.as_deref(), Some("T"));
    }

    #[test]
    fn fn_facts_see_locks_draws_and_derivations() {
        let src = "fn f(rng: &mut DetRng) { let g = m.lock().unwrap(); rng.gen_range(0..4); }\n\
                   fn d() { let r = DetRng::for_op(1, 2, 3); }\n\
                   fn k() { let r = parent.fork(\"label\"); }";
        let mut toks = tokenize(src);
        mark_test_scopes(&mut toks);
        let items = parse_items(&toks);
        let graph = build_graph(&[("f.rs".to_string(), &toks[..], &items[..])]);
        let by = |n: &str| &graph.fns[graph.fns.iter().position(|f| f.name == n).unwrap()];
        assert_eq!(by("f").facts.lock_calls, 1);
        assert!(by("f").facts.draws);
        assert!(by("f").facts.rng_param);
        assert!(!by("f").facts.derives);
        assert!(by("d").facts.derives);
        assert!(by("k").facts.derives);
    }
}
